//! The command-line face of the reproduction, mirroring the original EPFL
//! package's interface (§IV-B): read a flattened combinational network
//! (Verilog or BLIF), build the BBDD with the file's variable order,
//! optionally sift, and emit a Verilog description of the built BBDD plus
//! its log information.
//!
//! ```text
//! bbdd-cli [--sift] [--blif] [--dot] [--stats] <input-file> [output-file]
//! bbdd-cli --bench <table1-name> [output-file]      # use a generated benchmark
//! ```

use logicnet::build::build_network;
use logicnet::{blif, verilog, Network};
use std::process::ExitCode;
use synthkit::bbdd_rewrite::bbdd_to_network;

struct Options {
    sift: bool,
    blif_in: bool,
    dot: bool,
    stats: bool,
    bench: Option<String>,
    input: Option<String>,
    output: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bbdd-cli [--sift] [--blif] [--dot] [--stats] <input-file> [output-file]\n\
         \x20      bbdd-cli [--sift] --bench <name> [output-file]\n\
         \n\
         Reads a flattened combinational network (structural Verilog by default,\n\
         BLIF with --blif), builds its BBDD with the file variable order, sifts\n\
         when asked, and writes the rewritten Verilog netlist (stdout or file).\n\
         --dot emits Graphviz instead of Verilog; --bench uses a Table-I\n\
         benchmark generator instead of a file."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        sift: false,
        blif_in: false,
        dot: false,
        stats: false,
        bench: None,
        input: None,
        output: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sift" => opts.sift = true,
            "--blif" => opts.blif_in = true,
            "--dot" => opts.dot = true,
            "--stats" => opts.stats = true,
            "--bench" => match args.next() {
                Some(n) => opts.bench = Some(n),
                None => return Err(usage()),
            },
            "--help" | "-h" => return Err(usage()),
            _ if opts.input.is_none() => opts.input = Some(arg),
            _ if opts.output.is_none() => opts.output = Some(arg),
            _ => return Err(usage()),
        }
    }
    if opts.bench.is_none() && opts.input.is_none() {
        return Err(usage());
    }
    // With --bench the single positional argument is the output file.
    if opts.bench.is_some() && opts.output.is_none() {
        opts.output = opts.input.take();
    }
    Ok(opts)
}

fn load(opts: &Options) -> Result<Network, String> {
    if let Some(name) = &opts.bench {
        return benchgen::mcnc::generate(name)
            .ok_or_else(|| format!("unknown benchmark {name} (see Table I names)"));
    }
    let file = opts.input.as_deref().expect("checked in parse_args");
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    if opts.blif_in || file.ends_with(".blif") {
        blif::parse_blif(&text).map_err(|e| e.to_string())
    } else {
        verilog::parse_verilog(&text).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let net = match load(&opts) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[bbdd] {}: {} inputs, {} outputs, {} gates",
        net.name(),
        net.num_inputs(),
        net.num_outputs(),
        net.num_gates()
    );

    let mut mgr = bbdd::Bbdd::new(net.num_inputs());
    let t0 = std::time::Instant::now();
    // The builder returns owned handles: the outputs are registered GC
    // roots from here on, so collection and sifting need no root lists.
    let roots = build_network(&mut mgr, &net);
    mgr.gc();
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[bbdd] built: {} nodes in {build_s:.3}s (file variable order)",
        mgr.shared_node_count_fns(&roots)
    );

    if opts.sift {
        let t1 = std::time::Instant::now();
        mgr.sift();
        eprintln!(
            "[bbdd] sifted: {} nodes in {:.3}s; order {:?}",
            mgr.shared_node_count_fns(&roots),
            t1.elapsed().as_secs_f64(),
            mgr.order()
        );
    }
    if opts.stats {
        let s = mgr.stats();
        eprintln!(
            "[bbdd] stats: {} apply calls, {} ite calls, {} nodes created, {} GCs ({} freed), {} swaps, peak {}",
            s.apply_calls, s.ite_calls, s.nodes_created, s.gc_runs, s.nodes_freed, s.swaps,
            s.peak_live_nodes
        );
        let profile = mgr.level_profile_fns(&roots);
        eprintln!("[bbdd] level profile (bottom→top): {profile:?}");
    }

    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect();
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let text = if opts.dot {
        let names: Vec<&str> = out_names.iter().map(String::as_str).collect();
        mgr.to_dot_fns(&roots, &names)
    } else {
        let rewritten = bbdd_to_network(&mgr, &roots, &in_names, &out_names);
        verilog::write_verilog(&rewritten)
    };
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[bbdd] wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

//! The command-line face of the reproduction, mirroring the original EPFL
//! package's interface (§IV-B): read a flattened combinational network
//! (Verilog or BLIF), build the decision diagram with the file's variable
//! order, optionally sift, and emit a Verilog description of the built
//! diagram plus its log information.
//!
//! The manager is selected **at runtime** and the whole pipeline runs once
//! through the unified `ddcore::api` traits — there is one driver, not one
//! per backend:
//!
//! ```text
//! bbdd-cli [--backend B] [--threads N] [--sift] [--blif] [--dot] [--stats] <input> [output]
//! bbdd-cli --bench <table1-name> [output-file]      # use a generated benchmark
//! bbdd-cli serve [--sessions N] [--bench NAME]... [--listen ADDR] [files...]
//! bbdd-cli count [--schedule S] [--slice K] [--static-order H] <file.cnf>
//! ```
//!
//! where `B` is one of `bbdd` (default), `robdd`, `par-bbdd`, `par-robdd`.
//! The `serve` subcommand publishes the given networks as an immutable
//! snapshot and answers newline-delimited JSON requests (stdio batch or
//! TCP), one MVCC session per worker — see `bbdd_suite::serve`. The
//! `count` subcommand is the DIMACS front door: it reads a CNF file and
//! prints its exact model count (whole or sliced into cofactor
//! sub-problems) as one JSON line — see the `cnf` crate.

use bbdd::prelude::*;
use bbdd_suite::serve::{
    json_string, run_batch, serve_metrics, serve_tcp, ServeConfig, ServeOutcome,
};
use cnf::{CnfOrder, CountError, Schedule};
use ddcore::dvo::DvoPolicy;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::obs::MetricsSnapshot;
use ddcore::session::SessionBackend;
use logicnet::build::{build_network, try_build_network};
use logicnet::publish::{input_union, publish_networks_on};
use logicnet::{apply_static_order, blif, verilog, Network, StaticOrder};
use robdd::prelude::*;
use std::process::ExitCode;
use synthkit::rewrite::DiagramRewrite;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Bbdd,
    Robdd,
    ParBbdd,
    ParRobdd,
}

struct Options {
    backend: Backend,
    threads: Option<usize>,
    sift: bool,
    blif_in: bool,
    dot: bool,
    stats: bool,
    /// Print the full metrics registry (every section) after the run.
    metrics: bool,
    /// Write the metrics registry as JSON to this file.
    metrics_json: Option<String>,
    /// Record a structured trace and write Chrome trace_event JSON here.
    trace: Option<String>,
    /// Collect per-op latency histograms and print the profile report.
    profile: bool,
    /// Wall-clock budget for build + sift, in milliseconds.
    time_limit_ms: Option<u64>,
    /// Node-creation budget for build + sift.
    node_limit: Option<u64>,
    /// Pre-build static ordering heuristic.
    static_order: StaticOrder,
    /// Dynamic-reordering policy installed before the build.
    dvo: Option<DvoPolicy>,
    bench: Option<String>,
    input: Option<String>,
    output: Option<String>,
}

impl Options {
    /// One [`OpBudget`] spanning the whole request (build, then sift),
    /// or `None` when no limit flag was given — the un-governed pipeline
    /// stays byte-identical in that case.
    fn budget(&self) -> Option<OpBudget> {
        if self.time_limit_ms.is_none() && self.node_limit.is_none() {
            return None;
        }
        let mut b = OpBudget::unlimited();
        if let Some(ms) = self.time_limit_ms {
            b = b.with_deadline_in(std::time::Duration::from_millis(ms));
        }
        if let Some(n) = self.node_limit {
            b = b.with_node_limit(n);
        }
        Some(b)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bbdd-cli [--backend B] [--threads N] [--sift] [--blif] [--dot] [--stats]\n\
         \x20               [--static-order H] [--dvo S[:P]] [--time-limit MS] [--node-limit N]\n\
         \x20               <input-file> [output-file]\n\
         \x20      bbdd-cli [options] --bench <name> [output-file]\n\
         \x20      bbdd-cli serve --help       # the JSON request/response front door\n\
         \x20      bbdd-cli count --help       # exact model counting of DIMACS CNF\n\
         \n\
         Reads a flattened combinational network (structural Verilog by default,\n\
         BLIF with --blif), builds its decision diagram with the file variable\n\
         order, sifts when asked, and writes the rewritten Verilog netlist\n\
         (stdout or file). --dot emits Graphviz instead of Verilog; --bench uses\n\
         a Table-I benchmark generator instead of a file.\n\
         \n\
         --backend B      manager backend: bbdd (default), robdd, par-bbdd, par-robdd\n\
         --threads N      worker threads for the par-* backends (default: BBDD_THREADS or 4)\n\
         --static-order H pre-build structural ordering: none (default, file order),\n\
         \x20                fanin (output-cone DFS) or force (hypergraph placement)\n\
         --dvo S[:P]      install a dynamic-reordering policy before building.\n\
         \x20                S: full | window | windowN | pair;  P: never | threshN |\n\
         \x20                growth | growthF | nodesN (default growth2, e.g.\n\
         \x20                --dvo pair:growth2, --dvo window3:nodes10000)\n\
         --time-limit MS  wall-clock budget in milliseconds for build + sift; on\n\
         \x20                expiry, print partial stats and exit with status 3\n\
         --node-limit N   node-creation budget for build + sift; same abort behavior\n\
         --metrics        print the full metrics registry (cache/table/GC/roots/\n\
         \x20                dvo/govern sections) after the run\n\
         --metrics-json F write the metrics registry as JSON to file F\n\
         --trace F        record a structured event trace and write Chrome\n\
         \x20                trace_event JSON to F (open in Perfetto / about:tracing)\n\
         --profile        collect per-operation latency histograms and print the\n\
         \x20                profile report (log2 buckets + per-tag cache hit rates)"
    );
    ExitCode::from(2)
}

/// Exit status for a run stopped by its resource budget (distinct from
/// usage errors, 2, and I/O or parse failures, 1).
const EXIT_ABORTED: u8 = 3;

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        backend: Backend::Bbdd,
        threads: None,
        sift: false,
        blif_in: false,
        dot: false,
        stats: false,
        metrics: false,
        metrics_json: None,
        trace: None,
        profile: false,
        time_limit_ms: None,
        node_limit: None,
        static_order: StaticOrder::None,
        dvo: None,
        bench: None,
        input: None,
        output: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => match args.next().as_deref() {
                Some("bbdd") => opts.backend = Backend::Bbdd,
                Some("robdd") => opts.backend = Backend::Robdd,
                Some("par-bbdd") => opts.backend = Backend::ParBbdd,
                Some("par-robdd") => opts.backend = Backend::ParRobdd,
                _ => return Err(usage()),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.threads = Some(n),
                _ => return Err(usage()),
            },
            "--time-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => opts.time_limit_ms = Some(ms),
                None => return Err(usage()),
            },
            "--node-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => opts.node_limit = Some(n),
                None => return Err(usage()),
            },
            "--static-order" => match args.next().and_then(|s| s.parse::<StaticOrder>().ok()) {
                Some(h) => opts.static_order = h,
                None => return Err(usage()),
            },
            "--dvo" => match args.next().and_then(|s| s.parse::<DvoPolicy>().ok()) {
                Some(p) => opts.dvo = Some(p),
                None => return Err(usage()),
            },
            "--sift" => opts.sift = true,
            "--blif" => opts.blif_in = true,
            "--dot" => opts.dot = true,
            "--stats" => opts.stats = true,
            "--metrics" => opts.metrics = true,
            "--metrics-json" => match args.next() {
                Some(f) => opts.metrics_json = Some(f),
                None => return Err(usage()),
            },
            "--trace" => match args.next() {
                Some(f) => opts.trace = Some(f),
                None => return Err(usage()),
            },
            "--profile" => opts.profile = true,
            "--bench" => match args.next() {
                Some(n) => opts.bench = Some(n),
                None => return Err(usage()),
            },
            "--help" | "-h" => return Err(usage()),
            _ if opts.input.is_none() => opts.input = Some(arg),
            _ if opts.output.is_none() => opts.output = Some(arg),
            _ => return Err(usage()),
        }
    }
    if opts.bench.is_none() && opts.input.is_none() {
        return Err(usage());
    }
    // With --bench the single positional argument is the output file.
    if opts.bench.is_some() && opts.output.is_none() {
        opts.output = opts.input.take();
    }
    Ok(opts)
}

fn load(opts: &Options) -> Result<Network, String> {
    if let Some(name) = &opts.bench {
        return benchgen::mcnc::generate(name)
            .ok_or_else(|| format!("unknown benchmark {name} (see Table I names)"));
    }
    let file = opts.input.as_deref().expect("checked in parse_args");
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    if opts.blif_in || file.ends_with(".blif") {
        blif::parse_blif(&text).map_err(|e| e.to_string())
    } else {
        verilog::parse_verilog(&text).map_err(|e| e.to_string())
    }
}

/// Emit the observability outputs — metrics registry (text and/or JSON),
/// profile report, Chrome trace file — on every exit path of [`run`],
/// abort included: a cut-short run is exactly when the trace and the
/// partial counters are most interesting.
fn emit_observability<M: DiagramRewrite>(mgr: &M, opts: &Options, tag: &str) {
    if opts.metrics {
        eprint!("{}", mgr.metrics().format());
    }
    if let Some(path) = &opts.metrics_json {
        match std::fs::write(path, mgr.metrics().to_json()) {
            Ok(()) => eprintln!("[{tag}] wrote metrics to {path}"),
            Err(e) => eprintln!("error: {path}: {e}"),
        }
    }
    if opts.profile {
        eprint!(
            "{}",
            ddcore::obs::format_profile(&ddcore::obs::profile_snapshot())
        );
    }
    if let Some(path) = &opts.trace {
        match std::fs::write(path, ddcore::obs::chrome_trace_json()) {
            Ok(()) => eprintln!(
                "[{tag}] wrote trace ({} events) to {path}",
                ddcore::obs::trace_events().len()
            ),
            Err(e) => eprintln!("error: {path}: {e}"),
        }
    }
}

/// The whole pipeline, written once against the trait API: build, report,
/// optionally sift, and dump either DOT or the rewritten Verilog netlist.
/// `tag` labels the log lines with the selected backend.
fn run<M: DiagramRewrite>(mgr: &M, net: &Network, opts: &Options, tag: &str) -> ExitCode {
    let mut budget = opts.budget();
    // Static ordering and the dynamic-reordering policy both install
    // before the first node is built: the heuristic sets the initial
    // order, the policy arms the adaptive schedule the build's collection
    // gates poll.
    if opts.static_order != StaticOrder::None {
        match apply_static_order(mgr, net, opts.static_order) {
            Some(ord) => eprintln!("[{tag}] static order ({}): {ord:?}", opts.static_order),
            None => eprintln!(
                "[{tag}] --static-order {} ignored: this backend does not reorder",
                opts.static_order
            ),
        }
    }
    if let Some(policy) = opts.dvo {
        mgr.set_reorder_policy(Some(policy));
        eprintln!("[{tag}] dvo policy: {policy}");
    }
    let t0 = std::time::Instant::now();
    // The builder returns owned handles: the outputs are registered GC
    // roots from here on, so collection and sifting need no root lists.
    // With a limit flag the build runs governed; on abort the manager is
    // left consistent (registry balanced, partial results unreferenced),
    // so the partial stats below read a healthy manager.
    let roots = match &mut budget {
        None => build_network(mgr, net),
        Some(b) => match try_build_network(mgr, net, b) {
            Ok(r) => r,
            Err(aborted) => {
                eprintln!(
                    "[{tag}] aborted: {} ({}/{} gates built in {:.3}s)",
                    aborted.reason,
                    aborted.gates_built,
                    net.num_gates(),
                    t0.elapsed().as_secs_f64(),
                );
                eprint!("{}", mgr.metrics().format());
                mgr.gc();
                eprintln!("[{tag}] live nodes after GC: {}", mgr.live_nodes());
                emit_observability(mgr, opts, tag);
                return ExitCode::from(EXIT_ABORTED);
            }
        },
    };
    mgr.gc();
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[{tag}] built: {} nodes in {build_s:.3}s ({} variable order)",
        mgr.shared_node_count(&roots),
        match opts.static_order {
            StaticOrder::None => "file".to_string(),
            h => h.to_string(),
        },
    );

    if opts.sift {
        let t1 = std::time::Instant::now();
        let sifted = match &mut budget {
            None => mgr.reorder(),
            Some(b) => match mgr.try_reorder(b) {
                Some(Err(reason)) => {
                    // Bounded sift restores a consistent order on abort;
                    // the built diagram is intact, but the request ran out
                    // of budget, so report and exit like the build abort.
                    eprintln!(
                        "[{tag}] aborted during sift: {reason} ({} nodes, order {:?})",
                        mgr.shared_node_count(&roots),
                        mgr.variable_order(),
                    );
                    eprint!("{}", mgr.metrics().format());
                    emit_observability(mgr, opts, tag);
                    return ExitCode::from(EXIT_ABORTED);
                }
                other => other.map(|r| r.expect("Err handled above")),
            },
        };
        match sifted {
            Some(_) => eprintln!(
                "[{tag}] sifted: {} nodes in {:.3}s; order {:?}",
                mgr.shared_node_count(&roots),
                t1.elapsed().as_secs_f64(),
                mgr.variable_order()
            ),
            None => eprintln!("[{tag}] --sift ignored: this backend does not reorder"),
        }
    }
    if opts.stats {
        // One backend-agnostic formatter over the metrics registry — the
        // same dotted names on all four backends (`stats_line` remains in
        // the raw API for edge-level debugging, but the CLI reports from
        // the registry only).
        eprint!("{}", mgr.metrics().format());
        if let Some(profile) = mgr.level_profile(&roots) {
            eprintln!("[{tag}] level profile: {profile:?}");
        }
    }

    let in_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&s| net.signal_name(s).to_string())
        .collect();
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let text = if opts.dot {
        let names: Vec<&str> = out_names.iter().map(String::as_str).collect();
        mgr.to_dot(&roots, &names)
    } else {
        let rewritten = mgr.dump_network(&roots, &in_names, &out_names);
        verilog::write_verilog(&rewritten)
    };
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[{tag}] wrote {path}");
        }
        None => print!("{text}"),
    }
    emit_observability(mgr, opts, tag);
    ExitCode::SUCCESS
}

// ───────────────────────── serve subcommand ──────────────────────────────

struct ServeOptions {
    backend: Backend,
    threads: Option<usize>,
    /// Concurrent sessions in batch mode.
    sessions: usize,
    blif_in: bool,
    /// Generated benchmarks to publish (repeatable).
    bench: Vec<String>,
    /// TCP listen address; stdio batch mode when absent.
    listen: Option<String>,
    /// Stop the TCP accept loop after this many connections (tests/smoke).
    max_conns: Option<usize>,
    node_limit: Option<u64>,
    time_limit_ms: Option<u64>,
    metrics: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
    profile: bool,
    /// Network files to publish (repeatable).
    inputs: Vec<String>,
}

fn serve_usage() -> ExitCode {
    eprintln!(
        "usage: bbdd-cli serve [--backend B] [--threads N] [--sessions N] [--blif]\n\
         \x20                     [--node-limit N] [--time-limit MS] [--listen ADDR]\n\
         \x20                     [--max-conns N] [--metrics] [--metrics-json F]\n\
         \x20                     [--bench NAME]... [network-file]...\n\
         \n\
         Publishes the given networks (files and/or generated benchmarks) as one\n\
         immutable snapshot over the by-name union of their inputs — several\n\
         networks publish prefixed '<model>.<port>' functions — then answers\n\
         newline-delimited JSON requests, one response line per request, in\n\
         request order:\n\
         \n\
         \x20 {{\"op\":\"eval\",\"f\":\"cout\",\"assignment\":[true,false,true]}}\n\
         \x20 {{\"op\":\"sat_count\",\"f\":\"cout\",\"budget\":{{\"nodes\":10000,\"ms\":50}}}}\n\
         \x20 {{\"op\":\"apply\",\"how\":\"and\",\"f\":\"a\",\"g\":\"b\",\"store\":\"ab\"}}\n\
         \x20 {{\"op\":\"quantify\",\"kind\":\"exists\",\"f\":\"ab\",\"vars\":[\"x\",1]}}\n\
         \x20 {{\"op\":\"compose\"|\"cec\"|\"node_count\"|\"list\"|\"stats\", ...}}\n\
         \n\
         Responses carry \"status\":\"ok\"|\"aborted\"|\"error\"; a request stopped\n\
         by its budget is a partial verdict ('aborted') and makes the process\n\
         exit with status 3 once the batch completes — the session and the\n\
         shared snapshot stay fully usable throughout.\n\
         \n\
         --sessions N     concurrent sessions in batch mode; request i runs on\n\
         \x20                session i mod N (default 1). Stored names are\n\
         \x20                session-local state.\n\
         --node-limit N / --time-limit MS   default per-request budget\n\
         \x20                (a request's \"budget\" field overrides it)\n\
         --listen ADDR    serve TCP connections on ADDR (e.g. 127.0.0.1:7878),\n\
         \x20                one session per connection, instead of a stdio batch\n\
         --max-conns N    stop after N TCP connections (smoke tests)\n\
         --metrics / --metrics-json F   the full registry incl. the serve.*,\n\
         \x20                session.* and epoch.* sections, text or JSON"
    );
    ExitCode::from(2)
}

fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<ServeOptions, ExitCode> {
    let mut o = ServeOptions {
        backend: Backend::Bbdd,
        threads: None,
        sessions: 1,
        blif_in: false,
        bench: Vec::new(),
        listen: None,
        max_conns: None,
        node_limit: None,
        time_limit_ms: None,
        metrics: false,
        metrics_json: None,
        trace: None,
        profile: false,
        inputs: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => match args.next().as_deref() {
                Some("bbdd") => o.backend = Backend::Bbdd,
                Some("robdd") => o.backend = Backend::Robdd,
                Some("par-bbdd") => o.backend = Backend::ParBbdd,
                Some("par-robdd") => o.backend = Backend::ParRobdd,
                _ => return Err(serve_usage()),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => o.threads = Some(n),
                _ => return Err(serve_usage()),
            },
            "--sessions" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => o.sessions = n,
                _ => return Err(serve_usage()),
            },
            "--time-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => o.time_limit_ms = Some(ms),
                None => return Err(serve_usage()),
            },
            "--node-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => o.node_limit = Some(n),
                None => return Err(serve_usage()),
            },
            "--max-conns" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => o.max_conns = Some(n),
                _ => return Err(serve_usage()),
            },
            "--listen" => match args.next() {
                Some(a) => o.listen = Some(a),
                None => return Err(serve_usage()),
            },
            "--bench" => match args.next() {
                Some(n) => o.bench.push(n),
                None => return Err(serve_usage()),
            },
            "--blif" => o.blif_in = true,
            "--metrics" => o.metrics = true,
            "--metrics-json" => match args.next() {
                Some(f) => o.metrics_json = Some(f),
                None => return Err(serve_usage()),
            },
            "--trace" => match args.next() {
                Some(f) => o.trace = Some(f),
                None => return Err(serve_usage()),
            },
            "--profile" => o.profile = true,
            "--help" | "-h" => return Err(serve_usage()),
            _ if arg.starts_with("--") => return Err(serve_usage()),
            _ => o.inputs.push(arg),
        }
    }
    if o.bench.is_empty() && o.inputs.is_empty() {
        return Err(serve_usage());
    }
    Ok(o)
}

fn load_serve_nets(o: &ServeOptions) -> Result<Vec<Network>, String> {
    let mut nets = Vec::new();
    for name in &o.bench {
        nets.push(
            benchgen::mcnc::generate(name)
                .ok_or_else(|| format!("unknown benchmark {name} (see Table I names)"))?,
        );
    }
    for file in &o.inputs {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let net = if o.blif_in || file.ends_with(".blif") {
            blif::parse_blif(&text).map_err(|e| e.to_string())?
        } else {
            verilog::parse_verilog(&text).map_err(|e| e.to_string())?
        };
        nets.push(net);
    }
    Ok(nets)
}

/// Publish, serve (stdio batch or TCP), report — written once against
/// [`SessionBackend`] and driven by all four managers.
fn serve_run<B: SessionBackend>(backend: B, nets: &[&Network], o: &ServeOptions) -> ExitCode {
    let base = match publish_networks_on(backend, nets) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServeConfig {
        sessions: o.sessions,
        node_limit: o.node_limit,
        time_limit_ms: o.time_limit_ms,
    };
    eprintln!(
        "[serve] published {} functions over {} inputs ({} nodes, epoch {})",
        base.library().len(),
        base.library().inputs().len(),
        base.backend().live_nodes(),
        base.epoch(),
    );
    let outcome: ServeOutcome = if let Some(addr) = &o.listen {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match listener.local_addr() {
            Ok(a) => eprintln!("[serve] listening on {a} (one session per connection)"),
            Err(_) => eprintln!("[serve] listening on {addr}"),
        }
        match serve_tcp(&base, &cfg, &listener, o.max_conns) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut lines = Vec::new();
        for line in std::io::stdin().lines() {
            match line {
                Ok(l) => lines.push(l),
                Err(e) => {
                    eprintln!("error: stdin: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let out = run_batch(&base, &cfg, &lines);
        for resp in &out.responses {
            println!("{resp}");
        }
        out
    };
    eprintln!(
        "[serve] {} requests over {} session(s): {} ok, {} rejected, {} aborted",
        outcome.requests,
        cfg.sessions.max(1),
        outcome.requests - outcome.rejected - outcome.aborted,
        outcome.rejected,
        outcome.aborted,
    );
    let m = serve_metrics(&base, &cfg, &outcome);
    if o.metrics {
        eprint!("{}", m.format());
    }
    if let Some(path) = &o.metrics_json {
        match std::fs::write(path, m.to_json()) {
            Ok(()) => eprintln!("[serve] wrote metrics to {path}"),
            Err(e) => eprintln!("error: {path}: {e}"),
        }
    }
    if o.profile {
        eprint!(
            "{}",
            ddcore::obs::format_profile(&ddcore::obs::profile_snapshot())
        );
    }
    if let Some(path) = &o.trace {
        match std::fs::write(path, ddcore::obs::chrome_trace_json()) {
            Ok(()) => eprintln!(
                "[serve] wrote trace ({} events) to {path}",
                ddcore::obs::trace_events().len()
            ),
            Err(e) => eprintln!("error: {path}: {e}"),
        }
    }
    if outcome.any_aborted() {
        ExitCode::from(EXIT_ABORTED)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve_main(args: impl Iterator<Item = String>) -> ExitCode {
    let o = match parse_serve_args(args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    if o.trace.is_some() {
        ddcore::obs::set_trace_enabled(true);
    }
    if o.profile {
        ddcore::obs::set_profile_enabled(true);
    }
    let nets_owned = match load_serve_nets(&o) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nets: Vec<&Network> = nets_owned.iter().collect();
    let n = input_union(&nets).len().max(1);
    let threads = o
        .threads
        .unwrap_or_else(|| ddcore::par::threads_from_env(4));
    match o.backend {
        Backend::Bbdd => serve_run(Bbdd::new(n), &nets, &o),
        Backend::Robdd => serve_run(Robdd::new(n), &nets, &o),
        Backend::ParBbdd => serve_run(ParBbdd::new(n, threads), &nets, &o),
        Backend::ParRobdd => serve_run(ParRobdd::new(n, threads), &nets, &o),
    }
}

// ───────────────────────── count subcommand ──────────────────────────────

struct CountOptions {
    backend: Backend,
    threads: Option<usize>,
    /// Clause-scheduling heuristic for the conjunction.
    schedule: Schedule,
    /// Slice the count into `2^k` cofactor sub-problems (0 = whole).
    slice: usize,
    /// Fan the slices out on the fork-join pool instead of sequentially.
    slice_par: bool,
    /// Pre-build static variable order derived from the CNF structure.
    static_order: CnfOrder,
    /// Dynamic-reordering policy installed before the build.
    dvo: Option<DvoPolicy>,
    time_limit_ms: Option<u64>,
    node_limit: Option<u64>,
    metrics: bool,
    metrics_json: Option<String>,
    input: String,
}

fn count_usage() -> ExitCode {
    eprintln!(
        "usage: bbdd-cli count [--backend B] [--threads N] [--schedule S] [--slice K]\n\
         \x20                     [--slice-par] [--static-order H] [--dvo S[:P]]\n\
         \x20                     [--time-limit MS] [--node-limit N] [--metrics]\n\
         \x20                     [--metrics-json F] <file.cnf>\n\
         \n\
         Reads a strict DIMACS CNF file, builds its conjunction under a clause\n\
         schedule, and prints the exact model count over the header-declared\n\
         variable universe as one JSON line on stdout (the count itself is a\n\
         decimal string — it is a u128).\n\
         \n\
         --backend B      manager backend: bbdd (default), robdd, par-bbdd, par-robdd\n\
         --threads N      worker threads for par-* backends and --slice-par\n\
         --schedule S     clause schedule: input (file order), bucket (default,\n\
         \x20                by top variable with a balanced conjunction tree), force\n\
         \x20                (clauses sorted by center of gravity under a FORCE placement)\n\
         --slice K        split into 2^K cofactor sub-problems on the K most\n\
         \x20                frequent variables, each counted in a private manager\n\
         \x20                under its own budget, recombined exactly; aborted\n\
         \x20                slices degrade the verdict to a partial lower bound\n\
         --slice-par      run the slices on the fork-join pool (default sequential)\n\
         --static-order H initial variable order from the CNF: none (default),\n\
         \x20                freq (descending occurrence) or force (hypergraph placement)\n\
         --dvo S[:P]      dynamic-reordering policy, as in the main command; fires\n\
         \x20                at the build's collection gates\n\
         --time-limit MS / --node-limit N   per-(slice-)build budget; a stopped\n\
         \x20                whole count exits 3, a partially sliced count reports\n\
         \x20                status \"partial\" and exits 3\n\
         --metrics / --metrics-json F   metrics registry incl. the cnf.* section"
    );
    ExitCode::from(2)
}

fn parse_count_args(args: impl Iterator<Item = String>) -> Result<CountOptions, ExitCode> {
    let mut o = CountOptions {
        backend: Backend::Bbdd,
        threads: None,
        schedule: Schedule::default(),
        slice: 0,
        slice_par: false,
        static_order: CnfOrder::default(),
        dvo: None,
        time_limit_ms: None,
        node_limit: None,
        metrics: false,
        metrics_json: None,
        input: String::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => match args.next().as_deref() {
                Some("bbdd") => o.backend = Backend::Bbdd,
                Some("robdd") => o.backend = Backend::Robdd,
                Some("par-bbdd") => o.backend = Backend::ParBbdd,
                Some("par-robdd") => o.backend = Backend::ParRobdd,
                _ => return Err(count_usage()),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => o.threads = Some(n),
                _ => return Err(count_usage()),
            },
            "--schedule" => match args.next().and_then(|s| s.parse::<Schedule>().ok()) {
                Some(s) => o.schedule = s,
                None => return Err(count_usage()),
            },
            "--slice" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(k) if k <= 20 => o.slice = k,
                _ => return Err(count_usage()),
            },
            "--slice-par" => o.slice_par = true,
            "--static-order" => match args.next().and_then(|s| s.parse::<CnfOrder>().ok()) {
                Some(h) => o.static_order = h,
                None => return Err(count_usage()),
            },
            "--dvo" => match args.next().and_then(|s| s.parse::<DvoPolicy>().ok()) {
                Some(p) => o.dvo = Some(p),
                None => return Err(count_usage()),
            },
            "--time-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => o.time_limit_ms = Some(ms),
                None => return Err(count_usage()),
            },
            "--node-limit" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => o.node_limit = Some(n),
                None => return Err(count_usage()),
            },
            "--metrics" => o.metrics = true,
            "--metrics-json" => match args.next() {
                Some(f) => o.metrics_json = Some(f),
                None => return Err(count_usage()),
            },
            "--help" | "-h" => return Err(count_usage()),
            _ if arg.starts_with("--") => return Err(count_usage()),
            _ if o.input.is_empty() => o.input = arg,
            _ => return Err(count_usage()),
        }
    }
    if o.input.is_empty() {
        return Err(count_usage());
    }
    Ok(o)
}

/// Snake-case abort names for the JSON stats line (matches the serve
/// protocol's `reason` vocabulary).
fn count_abort_name(a: OpAbort) -> &'static str {
    match a {
        OpAbort::NodeBudget => "node_budget",
        OpAbort::Deadline => "deadline",
        OpAbort::Cancelled => "cancelled",
    }
}

/// One per-(slice-)build budget from the limit flags.
fn count_budget(o: &CountOptions) -> OpBudget {
    let mut b = OpBudget::unlimited();
    if let Some(ms) = o.time_limit_ms {
        b = b.with_deadline_in(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = o.node_limit {
        b = b.with_node_limit(n);
    }
    b
}

/// Install the CNF-derived static order and the DVO policy on a fresh
/// manager, before its first node is built.
fn count_prep<M: FunctionManager>(mgr: &M, perm: Option<&Vec<usize>>, dvo: Option<DvoPolicy>) {
    if let Some(p) = perm {
        if p.len() == mgr.num_vars() && !mgr.set_order(p) {
            eprintln!("[count] --static-order ignored: this backend does not reorder");
        }
    }
    if let Some(policy) = dvo {
        mgr.set_reorder_policy(Some(policy));
    }
}

/// Emit the metrics registry with the `cnf.*` section appended. `base` is
/// the counting manager's own registry for whole counts, or an empty
/// snapshot for sliced counts (each slice had a private manager).
fn count_observability(
    mut base: MetricsSnapshot,
    o: &CountOptions,
    scheduled: u64,
    peak: u64,
    completed: u64,
    aborted: u64,
) {
    if !o.metrics && o.metrics_json.is_none() {
        return;
    }
    base.counter("cnf.clauses_scheduled", scheduled);
    base.gauge("cnf.conj_peak_nodes", peak);
    base.counter("cnf.slices_completed", completed);
    base.counter("cnf.slices_aborted", aborted);
    if o.metrics {
        eprint!("{}", base.format());
    }
    if let Some(path) = &o.metrics_json {
        match std::fs::write(path, base.to_json()) {
            Ok(()) => eprintln!("[count] wrote metrics to {path}"),
            Err(e) => eprintln!("error: {path}: {e}"),
        }
    }
}

/// The counting pipeline, written once against the trait API: whole-
/// instance or sliced, one JSON stats line on stdout, exit 3 on any
/// budget abort (whole) or partial verdict (sliced).
fn count_run<M, F>(make_mgr: F, inst: &cnf::Cnf, o: &CountOptions, tag: &'static str) -> ExitCode
where
    M: FunctionManager,
    F: Fn() -> M + Sync,
{
    let prefix = format!(
        "\"file\":{},\"backend\":\"{tag}\",\"vars\":{},\"clauses\":{},\
         \"schedule\":\"{}\",\"static_order\":\"{}\",\"slice\":{}",
        json_string(&o.input),
        inst.num_vars,
        inst.num_clauses(),
        o.schedule,
        o.static_order,
        o.slice,
    );
    let t0 = std::time::Instant::now();
    if o.slice == 0 {
        let mgr = make_mgr();
        let mut budget = count_budget(o);
        return match cnf::count_cnf(&mgr, inst, &o.schedule, &mut budget) {
            Ok((count, stats)) => {
                println!(
                    "{{{prefix},\"status\":\"ok\",\"count\":\"{count}\",\"slices\":1,\
                     \"completed\":1,\"aborted\":0,\"clauses_scheduled\":{},\"groups\":{},\
                     \"peak_nodes\":{},\"build_ms\":{}}}",
                    stats.clauses_scheduled,
                    stats.groups,
                    stats.conj_peak_nodes,
                    t0.elapsed().as_millis(),
                );
                count_observability(
                    mgr.metrics(),
                    o,
                    stats.clauses_scheduled,
                    stats.conj_peak_nodes,
                    1,
                    0,
                );
                ExitCode::SUCCESS
            }
            Err(CountError::Aborted {
                reason,
                clauses_done,
            }) => {
                println!(
                    "{{{prefix},\"status\":\"aborted\",\"reason\":\"{}\",\
                     \"clauses_done\":{clauses_done},\"build_ms\":{}}}",
                    count_abort_name(reason),
                    t0.elapsed().as_millis(),
                );
                count_observability(mgr.metrics(), o, clauses_done, 0, 0, 1);
                ExitCode::from(EXIT_ABORTED)
            }
            Err(CountError::Unrepresentable) => {
                eprintln!("error: count not representable in u128 (more than 127 variables)");
                ExitCode::FAILURE
            }
        };
    }
    if inst.num_vars > 127 {
        eprintln!("error: count not representable in u128 (more than 127 variables)");
        return ExitCode::FAILURE;
    }
    let sliced = if o.slice_par {
        let threads = o
            .threads
            .unwrap_or_else(|| ddcore::par::threads_from_env(4));
        cnf::count_sliced_par(
            threads,
            &make_mgr,
            || count_budget(o),
            inst,
            &o.schedule,
            o.slice,
        )
    } else {
        cnf::count_sliced(&make_mgr, || count_budget(o), inst, &o.schedule, o.slice)
    };
    let completed = sliced.completed() as u64;
    let aborted = sliced.aborted() as u64;
    let scheduled: u64 = sliced
        .slices
        .iter()
        .map(|s| s.stats.clauses_scheduled)
        .sum();
    let status = if sliced.partial { "partial" } else { "ok" };
    println!(
        "{{{prefix},\"status\":\"{status}\",\"count\":\"{}\",\"slices\":{},\
         \"completed\":{completed},\"aborted\":{aborted},\"clauses_scheduled\":{scheduled},\
         \"peak_nodes\":{},\"build_ms\":{}}}",
        sliced.total,
        sliced.slices.len(),
        sliced.peak_nodes(),
        t0.elapsed().as_millis(),
    );
    count_observability(
        MetricsSnapshot::new(tag),
        o,
        scheduled,
        sliced.peak_nodes(),
        completed,
        aborted,
    );
    if sliced.partial {
        ExitCode::from(EXIT_ABORTED)
    } else {
        ExitCode::SUCCESS
    }
}

fn count_main(args: impl Iterator<Item = String>) -> ExitCode {
    let o = match parse_count_args(args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let text = match std::fs::read_to_string(&o.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", o.input);
            return ExitCode::FAILURE;
        }
    };
    let inst = match cnf::parse_dimacs(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {}: {e}", o.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[count] {}: {} vars, {} clauses ({} schedule, {} order{})",
        o.input,
        inst.num_vars,
        inst.num_clauses(),
        o.schedule,
        o.static_order,
        if o.slice > 0 {
            format!(", 2^{} slices", o.slice)
        } else {
            String::new()
        },
    );
    let n = inst.num_vars.max(1);
    let perm = o.static_order.permutation(&inst);
    let threads = o
        .threads
        .unwrap_or_else(|| ddcore::par::threads_from_env(4));
    match o.backend {
        Backend::Bbdd => count_run(
            || {
                let mgr = BbddManager::with_vars(n);
                count_prep(&mgr, perm.as_ref(), o.dvo);
                mgr
            },
            &inst,
            &o,
            "bbdd",
        ),
        Backend::Robdd => count_run(
            || {
                let mgr = RobddManager::with_vars(n);
                count_prep(&mgr, perm.as_ref(), o.dvo);
                mgr
            },
            &inst,
            &o,
            "robdd",
        ),
        Backend::ParBbdd => count_run(
            || {
                let mgr = ParBbddManager::new(ParBbdd::new(n, threads));
                count_prep(&mgr, perm.as_ref(), o.dvo);
                mgr
            },
            &inst,
            &o,
            "par-bbdd",
        ),
        Backend::ParRobdd => count_run(
            || {
                let mgr = ParRobddManager::new(ParRobdd::new(n, threads));
                count_prep(&mgr, perm.as_ref(), o.dvo);
                mgr
            },
            &inst,
            &o,
            "par-robdd",
        ),
    }
}

fn main() -> ExitCode {
    let mut peek = std::env::args().skip(1).peekable();
    if peek.peek().map(String::as_str) == Some("serve") {
        peek.next();
        return serve_main(peek);
    }
    if peek.peek().map(String::as_str) == Some("count") {
        peek.next();
        return count_main(peek);
    }
    drop(peek);
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    // Flip the process-global observability switches before the first
    // manager exists so every span/histogram from the run is captured.
    if opts.trace.is_some() {
        ddcore::obs::set_trace_enabled(true);
    }
    if opts.profile {
        ddcore::obs::set_profile_enabled(true);
    }
    let net = match load(&opts) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let tag = match opts.backend {
        Backend::Bbdd => "bbdd",
        Backend::Robdd => "robdd",
        Backend::ParBbdd => "par-bbdd",
        Backend::ParRobdd => "par-robdd",
    };
    eprintln!(
        "[{tag}] {}: {} inputs, {} outputs, {} gates",
        net.name(),
        net.num_inputs(),
        net.num_outputs(),
        net.num_gates(),
    );

    let n = net.num_inputs().max(1);
    let threads = opts
        .threads
        .unwrap_or_else(|| ddcore::par::threads_from_env(4));
    match opts.backend {
        Backend::Bbdd => run(&BbddManager::with_vars(n), &net, &opts, tag),
        Backend::Robdd => run(&RobddManager::with_vars(n), &net, &opts, tag),
        Backend::ParBbdd => run(
            &ParBbddManager::new(ParBbdd::new(n, threads)),
            &net,
            &opts,
            tag,
        ),
        Backend::ParRobdd => run(
            &ParRobddManager::new(ParRobdd::new(n, threads)),
            &net,
            &opts,
            tag,
        ),
    }
}

//! The serving front door: newline-delimited JSON requests over stdio or
//! TCP, answered by MVCC sessions forked off one published snapshot
//! (`ddcore::session`, library built by `logicnet::publish`).
//!
//! ## Protocol
//!
//! One request per line, one response line per request, always in request
//! order. Every request is a JSON object with an `"op"` field and
//! optionally `"id"` (echoed back verbatim) and `"budget"`
//! (`{"nodes":N,"ms":T}` — per-request overrides of the serve-wide
//! admission defaults; the request can *tighten or replace* limits but
//! never escape the server's cancellation token):
//!
//! ```text
//! {"op":"eval","f":"cout","assignment":[true,false,true]}
//! {"op":"eval","f":"cout","assignment":{"a":true,"cin":true}}
//! {"op":"sat_count","f":"cout"}
//! {"op":"node_count","f":"cout"}
//! {"op":"apply","how":"and","f":"cout","g":"s","store":"both"}
//! {"op":"quantify","kind":"exists","f":"cout","vars":["a",1]}
//! {"op":"compose","f":"cout","var":"a","g":"s"}
//! {"op":"cec","f":"golden.y","g":"revised.y"}
//! {"op":"load_cnf","name":"inst","text":"p cnf 3 2\n1 -2 0\n2 3 0\n","schedule":"bucket"}
//! {"op":"count","f":"inst","over":3,"slice":2}
//! {"op":"list"}
//! {"op":"stats"}
//! ```
//!
//! The two CNF verbs are the serving face of the `cnf` crate: `load_cnf`
//! parses a strict DIMACS instance from the `"text"` field, builds its
//! conjunction inside the session fork under the chosen clause schedule
//! (`input` / `bucket` / `force`, default `bucket`) and stores it under
//! `"name"`; `count` answers the exact model count of any visible
//! function over a declared variable universe (`"over"`, default the
//! manager width) as a decimal string. With `"slice":k` the count is
//! split into `2^k` cofactor sub-problems on the first `k` support
//! variables, each under a **fresh** budget minted from the request's
//! spec; aborted slices degrade the answer to a partial verdict carrying
//! the lower bound from the completed slices.
//!
//! Responses are `{"id":…,"status":"ok",…}` on success,
//! `{"id":…,"status":"aborted","reason":"node_budget","partial":true}`
//! when the request's budget stopped the operation (the session and the
//! shared base remain fully usable — a *partial verdict*, mirroring the
//! CLI's exit-code-3 convention), and `{"id":…,"status":"error",…}` for
//! malformed or unresolvable requests. `sat_count` and the CEC
//! distinguishing count are decimal **strings** (they are `u128`; JSON
//! numbers cannot carry them losslessly).
//!
//! ## Batching and sessions
//!
//! [`run_batch`] fans a request list over `sessions` worker threads,
//! request `i` running on session `i mod sessions` — deterministic
//! assignment, responses reassembled in input order. Sessions are private
//! forks of the frozen base, so workers never contend and every answer is
//! bit-identical to running the same request sequence on one session (or
//! on a private manager): `"store"` bindings are session-local state, and
//! a later request sees a stored name only when it lands on the same
//! session (`j ≡ i (mod sessions)`).
//!
//! The JSON layer is hand-rolled (~150 lines) because the workspace has no
//! serde — the same choice the metrics registry made for its JSON export.

use cnf::{parse_dimacs, ClauseSchedule, Schedule};
use ddcore::boolop::BoolOp;
use ddcore::govern::{Admission, OpAbort};
use ddcore::obs::MetricsSnapshot;
use ddcore::session::{CecOutcome, Session, SessionBackend, SessionError, SharedBase};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

// ───────────────────────── minimal JSON ──────────────────────────────────

/// A parsed JSON value (the subset of JSON the protocol needs — no
/// exponent-form floats beyond what `f64` parsing accepts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes back to compact JSON.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "{}", json_string(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(|j| j.to_string()).collect();
                write!(f, "[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{v}", json_string(k)))
                    .collect();
                write!(f, "{{{}}}", inner.join(","))
            }
        }
    }
}

/// Escape and quote a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse one JSON value from `text` (must consume the whole input up to
/// trailing whitespace).
///
/// # Errors
/// Returns a position-tagged message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid UTF-8 slice"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

// ───────────────────────── serve configuration ───────────────────────────

/// Serve-wide configuration shared by the stdio batch and TCP modes.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Concurrent sessions in batch mode (minimum 1).
    pub sessions: usize,
    /// Default per-request node-creation ceiling.
    pub node_limit: Option<u64>,
    /// Default per-request wall-clock allowance, milliseconds.
    pub time_limit_ms: Option<u64>,
}

impl ServeConfig {
    fn admission(&self) -> Admission {
        let mut a = Admission::unlimited();
        if let Some(n) = self.node_limit {
            a = a.with_node_limit(n);
        }
        if let Some(ms) = self.time_limit_ms {
            a = a.with_time_limit(Duration::from_millis(ms));
        }
        a
    }
}

/// `cnf.*` accounting from the CNF front-door verbs (`load_cnf` /
/// `count`), aggregated across every session of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CnfServeStats {
    /// DIMACS instances built and stored by `load_cnf`.
    pub instances_loaded: u64,
    /// Clauses conjoined across all builds.
    pub clauses_scheduled: u64,
    /// Largest intermediate conjunction (nodes) seen by any build.
    pub conj_peak_nodes: u64,
    /// `count` requests answered (including partial verdicts).
    pub counts: u64,
    /// Cofactor slices counted to completion.
    pub slices_completed: u64,
    /// Cofactor slices stopped by their per-slice budget.
    pub slices_aborted: u64,
}

impl CnfServeStats {
    fn merge(&mut self, other: &CnfServeStats) {
        self.instances_loaded += other.instances_loaded;
        self.clauses_scheduled += other.clauses_scheduled;
        self.conj_peak_nodes = self.conj_peak_nodes.max(other.conj_peak_nodes);
        self.counts += other.counts;
        self.slices_completed += other.slices_completed;
        self.slices_aborted += other.slices_aborted;
    }
}

/// Outcome of one served batch: the response lines (input order) plus the
/// `serve.*` accounting.
#[derive(Debug, Default)]
pub struct ServeOutcome {
    /// One response line per request line, in request order.
    pub responses: Vec<String>,
    /// Requests received (non-empty lines).
    pub requests: u64,
    /// Requests rejected before execution (malformed JSON, unknown op or
    /// function, invalid arguments).
    pub rejected: u64,
    /// Requests stopped by their budget (partial verdicts).
    pub aborted: u64,
    /// CNF front-door accounting for the `cnf.*` metrics section.
    pub cnf: CnfServeStats,
}

impl ServeOutcome {
    /// `true` when at least one request returned a partial verdict — the
    /// CLI maps this onto its exit-code-3 convention.
    #[must_use]
    pub fn any_aborted(&self) -> bool {
        self.aborted > 0
    }
}

// ───────────────────────── request execution ─────────────────────────────

fn abort_name(a: OpAbort) -> &'static str {
    match a {
        OpAbort::NodeBudget => "node_budget",
        OpAbort::Deadline => "deadline",
        OpAbort::Cancelled => "cancelled",
    }
}

fn parse_boolop(name: &str) -> Option<BoolOp> {
    Some(match name {
        "and" => BoolOp::AND,
        "or" => BoolOp::OR,
        "xor" => BoolOp::XOR,
        "xnor" => BoolOp::XNOR,
        "nand" => BoolOp::NAND,
        "nor" => BoolOp::NOR,
        "implies" => BoolOp::IMPLIES,
        "and_not" => BoolOp::AND_NOT,
        _ => return None,
    })
}

/// What happened to one request, before rendering.
enum Reply {
    Ok(String),
    Aborted(OpAbort),
    /// A budget stopped part of the work but a usable lower bound
    /// survived (sliced counts): rendered as an aborted response that
    /// still carries a payload.
    Partial(OpAbort, String),
    Error(String),
}

/// Execute one parsed request against a session. Returns the rendered
/// payload fields (without `id`/`status` framing). CNF front-door
/// accounting is accumulated into `tally`.
fn execute<B: SessionBackend>(
    session: &mut Session<B>,
    req: &Json,
    tally: &mut CnfServeStats,
) -> Reply {
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return Reply::Error("missing 'op' field".to_string()),
    };
    let budget_spec = req.get("budget");
    let nodes = budget_spec
        .and_then(|b| b.get("nodes"))
        .and_then(Json::as_u64);
    let ms = budget_spec.and_then(|b| b.get("ms")).and_then(Json::as_u64);
    let mut budget = session
        .admission()
        .mint_with(nodes, ms.map(Duration::from_millis));

    let fname = |key: &str| -> Result<String, Reply> {
        req.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| Reply::Error(format!("missing '{key}' field")))
    };
    let store = req.get("store").and_then(Json::as_str).map(str::to_string);

    let outcome = (|| -> Result<String, Reply> {
        Ok(match op {
            "eval" => {
                let f = fname("f")?;
                let assignment = parse_assignment(session, req.get("assignment"))?;
                let v = map_err(session.eval(&f, &assignment))?;
                format!("\"value\":{v}")
            }
            "sat_count" => {
                let f = fname("f")?;
                let n = map_err(session.sat_count(&f, &mut budget))?;
                format!("\"count\":\"{n}\"")
            }
            "node_count" => {
                let f = fname("f")?;
                let n = map_err(session.node_count(&f))?;
                format!("\"nodes\":{n}")
            }
            "apply" => {
                let how = fname("how")?;
                let op = parse_boolop(&how)
                    .ok_or_else(|| Reply::Error(format!("unknown operator '{how}'")))?;
                let f = fname("f")?;
                let g = fname("g")?;
                let n = map_err(session.apply(op, &f, &g, store.as_deref(), &mut budget))?;
                format!("\"nodes\":{n}")
            }
            "quantify" => {
                let exists = match req.get("kind").and_then(Json::as_str) {
                    None | Some("exists") => true,
                    Some("forall") => false,
                    Some(k) => return Err(Reply::Error(format!("unknown kind '{k}'"))),
                };
                let f = fname("f")?;
                let vars = parse_vars(session, req.get("vars"))?;
                let n =
                    map_err(session.quantify(exists, &f, &vars, store.as_deref(), &mut budget))?;
                format!("\"nodes\":{n}")
            }
            "compose" => {
                let f = fname("f")?;
                let g = fname("g")?;
                let var = match req.get("var") {
                    Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                    Some(Json::Str(name)) => session
                        .base()
                        .library()
                        .input_index(name)
                        .ok_or_else(|| Reply::Error(format!("unknown input '{name}'")))?,
                    _ => return Err(Reply::Error("missing 'var' field".to_string())),
                };
                let n = map_err(session.compose(&f, var, &g, store.as_deref(), &mut budget))?;
                format!("\"nodes\":{n}")
            }
            "cec" => {
                let f = fname("f")?;
                let g = fname("g")?;
                let out = map_err(session.cec(&f, &g, &mut budget))?;
                render_cec(&out)
            }
            "load_cnf" => {
                let name = fname("name")?;
                let text = fname("text")?;
                let inst =
                    parse_dimacs(&text).map_err(|e| Reply::Error(format!("bad DIMACS: {e}")))?;
                if inst.num_vars > session.num_vars() {
                    return Err(Reply::Error(format!(
                        "instance declares {} vars but the base has {}",
                        inst.num_vars,
                        session.num_vars()
                    )));
                }
                let schedule = match req.get("schedule").and_then(Json::as_str) {
                    None => Schedule::default(),
                    Some(s) => s.parse::<Schedule>().map_err(Reply::Error)?,
                };
                let plan = schedule.plan(&inst);
                let (edge, stats) = map_err(session.build_raw(&mut budget, |m, b| {
                    cnf::try_build_cnf_raw(m, &inst, &plan, b)
                }))?;
                session.store(&name, edge);
                tally.instances_loaded += 1;
                tally.clauses_scheduled += stats.clauses_scheduled;
                tally.conj_peak_nodes = tally.conj_peak_nodes.max(stats.conj_peak_nodes);
                let built = map_err(session.node_count(&name))?;
                format!(
                    "\"name\":{},\"vars\":{},\"clauses\":{},\"nodes\":{built},\"schedule\":\"{schedule}\"",
                    json_string(&name),
                    inst.num_vars,
                    inst.num_clauses()
                )
            }
            "count" => {
                let f = fname("f")?;
                let over = match req.get("over") {
                    None => session.num_vars(),
                    Some(j) => j.as_u64().ok_or_else(|| {
                        Reply::Error("'over' must be a non-negative integer".into())
                    })? as usize,
                };
                let k = match req.get("slice") {
                    None => 0,
                    Some(j) => j.as_u64().ok_or_else(|| {
                        Reply::Error("'slice' must be a non-negative integer".into())
                    })? as usize,
                };
                if k == 0 {
                    let n = map_err(session.sat_count_over(&f, over, &mut budget))?;
                    tally.counts += 1;
                    format!("\"count\":\"{n}\",\"over\":{over}")
                } else {
                    if k > 20 {
                        return Err(Reply::Error("'slice' must be at most 20".into()));
                    }
                    let e = map_err(session.edge(&f))?;
                    let mut split = map_err(session.support(&f))?;
                    split.truncate(k);
                    if split.iter().any(|&v| v >= over) {
                        return Err(Reply::Error(format!(
                            "count over {over} vars is not exactly representable"
                        )));
                    }
                    let slices = 1usize << split.len();
                    let mut total: u128 = 0;
                    let mut completed = 0u64;
                    let mut aborted = 0u64;
                    let mut first_abort: Option<OpAbort> = None;
                    for idx in 0..slices {
                        // Each slice runs under a fresh budget minted from
                        // the request's spec: one runaway cofactor cannot
                        // starve its siblings.
                        let mut b = session
                            .admission()
                            .mint_with(nodes, ms.map(Duration::from_millis));
                        let r = session.build_raw(&mut b, |m, bb| {
                            let mut g = e;
                            for (i, &v) in split.iter().enumerate() {
                                g = m.restrict_edge(g, v, (idx >> i) & 1 == 1);
                            }
                            m.try_sat_count_over_edge(g, over, bb)
                        });
                        match r {
                            Ok(Some(c)) => {
                                // The cofactor no longer depends on the
                                // split variables, so its count over the
                                // declared universe carries a factor of
                                // 2^k for them; dividing it out pins the
                                // slice's assignment exactly.
                                total += c >> split.len();
                                completed += 1;
                            }
                            Ok(None) => {
                                return Err(Reply::Error(format!(
                                    "count over {over} vars is not exactly representable"
                                )))
                            }
                            Err(SessionError::Aborted(a)) => {
                                aborted += 1;
                                first_abort.get_or_insert(a);
                            }
                            Err(other) => return Err(Reply::Error(other.to_string())),
                        }
                    }
                    tally.counts += 1;
                    tally.slices_completed += completed;
                    tally.slices_aborted += aborted;
                    let payload = format!(
                        "\"count\":\"{total}\",\"over\":{over},\"slices\":{slices},\
                         \"completed\":{completed},\"aborted\":{aborted}"
                    );
                    match first_abort {
                        None => payload,
                        Some(a) => return Err(Reply::Partial(a, payload)),
                    }
                }
            }
            "list" => {
                let inputs: Vec<String> = session
                    .base()
                    .library()
                    .inputs()
                    .iter()
                    .map(|n| json_string(n))
                    .collect();
                let functions: Vec<String> = session
                    .visible_names()
                    .iter()
                    .map(|n| json_string(n))
                    .collect();
                format!(
                    "\"inputs\":[{}],\"functions\":[{}]",
                    inputs.join(","),
                    functions.join(",")
                )
            }
            "stats" => {
                let t = session.base().tracker();
                format!(
                    "\"epoch\":{},\"session_nodes\":{},\"sessions_live\":{},\"published\":{}",
                    session.base().epoch(),
                    session.overlay_nodes(),
                    t.sessions_live(),
                    t.published(),
                )
            }
            other => return Err(Reply::Error(format!("unknown op '{other}'"))),
        })
    })();
    match outcome {
        Ok(payload) => Reply::Ok(payload),
        Err(r) => r,
    }
}

/// Map a [`SessionError`] onto the wire split: budget aborts are partial
/// verdicts, everything else is a rejection.
fn map_err<T>(r: Result<T, SessionError>) -> Result<T, Reply> {
    r.map_err(|e| match e {
        SessionError::Aborted(a) => Reply::Aborted(a),
        other => Reply::Error(other.to_string()),
    })
}

/// An assignment is either a positional bool array or an object keyed by
/// input name (unnamed inputs default to `false`).
fn parse_assignment<B: SessionBackend>(
    session: &Session<B>,
    v: Option<&Json>,
) -> Result<Vec<bool>, Reply> {
    let lib = session.base().library();
    match v {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|j| match j {
                Json::Bool(b) => Ok(*b),
                Json::Num(n) => Ok(*n != 0.0),
                _ => Err(Reply::Error("assignment entries must be booleans".into())),
            })
            .collect(),
        Some(Json::Obj(fields)) => {
            let mut out = vec![false; lib.inputs().len()];
            for (name, value) in fields {
                let i = lib
                    .input_index(name)
                    .ok_or_else(|| Reply::Error(format!("unknown input '{name}' in assignment")))?;
                out[i] =
                    matches!(value, Json::Bool(true)) || matches!(value, Json::Num(n) if *n != 0.0);
            }
            Ok(out)
        }
        _ => Err(Reply::Error("missing 'assignment' field".to_string())),
    }
}

/// Variables come as an array of indices and/or input names.
fn parse_vars<B: SessionBackend>(
    session: &Session<B>,
    v: Option<&Json>,
) -> Result<Vec<usize>, Reply> {
    let lib = session.base().library();
    match v {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|j| match j {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
                Json::Str(name) => lib
                    .input_index(name)
                    .ok_or_else(|| Reply::Error(format!("unknown input '{name}'"))),
                _ => Err(Reply::Error("variables must be indices or names".into())),
            })
            .collect(),
        _ => Err(Reply::Error("missing 'vars' field".to_string())),
    }
}

fn render_cec(out: &CecOutcome) -> String {
    if out.equivalent {
        "\"equivalent\":true".to_string()
    } else {
        let mut s = "\"equivalent\":false".to_string();
        if let Some(cex) = &out.counterexample {
            let bits: Vec<String> = cex.iter().map(bool::to_string).collect();
            s.push_str(&format!(",\"counterexample\":[{}]", bits.join(",")));
        }
        if let Some(d) = out.distinguishing {
            s.push_str(&format!(",\"distinguishing\":\"{d}\""));
        }
        s
    }
}

/// Frame one reply as a full response line.
fn render_response(id: Option<&Json>, reply: &Reply) -> String {
    let id_field = id.map_or_else(String::new, |j| format!("\"id\":{j},"));
    match reply {
        Reply::Ok(payload) => format!("{{{id_field}\"status\":\"ok\",{payload}}}"),
        Reply::Aborted(a) => format!(
            "{{{id_field}\"status\":\"aborted\",\"reason\":\"{}\",\"partial\":true}}",
            abort_name(*a)
        ),
        Reply::Partial(a, payload) => format!(
            "{{{id_field}\"status\":\"aborted\",\"reason\":\"{}\",\"partial\":true,{payload}}}",
            abort_name(*a)
        ),
        Reply::Error(msg) => format!(
            "{{{id_field}\"status\":\"error\",\"error\":{}}}",
            json_string(msg)
        ),
    }
}

/// Process one raw request line on a session. Returns the response line
/// plus (rejected, aborted) accounting flags.
fn serve_line<B: SessionBackend>(
    session: &mut Session<B>,
    line: &str,
    tally: &mut CnfServeStats,
) -> (String, bool, bool) {
    let mut sp = ddcore::obs::span(ddcore::obs::Op::ServeRequest);
    let req = match parse_json(line) {
        Ok(r) => r,
        Err(e) => {
            let reply = Reply::Error(format!("bad request: {e}"));
            return (render_response(None, &reply), true, false);
        }
    };
    let reply = execute(session, &req, tally);
    sp.set_arg("overlay_nodes", session.overlay_nodes() as u64);
    let (rejected, aborted) = match &reply {
        Reply::Ok(_) => (false, false),
        Reply::Error(_) => (true, false),
        Reply::Aborted(_) | Reply::Partial(..) => (false, true),
    };
    (render_response(req.get("id"), &reply), rejected, aborted)
}

// ───────────────────────── batch engine ──────────────────────────────────

/// Serve a batch of request lines over `cfg.sessions` concurrent sessions
/// forked from `base` (request `i` → session `i mod sessions`), returning
/// responses in request order. Empty lines are skipped.
pub fn run_batch<B: SessionBackend>(
    base: &Arc<SharedBase<B>>,
    cfg: &ServeConfig,
    lines: &[String],
) -> ServeOutcome {
    let requests: Vec<(usize, &str)> = lines
        .iter()
        .map(String::as_str)
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .collect();
    let sessions = cfg.sessions.max(1);
    let mut outcome = ServeOutcome {
        requests: requests.len() as u64,
        ..ServeOutcome::default()
    };
    let mut indexed: Vec<(usize, String, bool, bool)> = if sessions == 1 {
        let mut session = base.session_with(cfg.admission());
        requests
            .iter()
            .map(|&(i, line)| {
                let (resp, rejected, aborted) = serve_line(&mut session, line, &mut outcome.cnf);
                (i, resp, rejected, aborted)
            })
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|w| {
                    let my: Vec<(usize, &str)> = requests
                        .iter()
                        .filter(|(i, _)| i % sessions == w)
                        .copied()
                        .collect();
                    let admission = cfg.admission();
                    scope.spawn(move || {
                        let mut session = base.session_with(admission);
                        let mut tally = CnfServeStats::default();
                        let rows = my
                            .into_iter()
                            .map(|(i, line)| {
                                let (resp, rejected, aborted) =
                                    serve_line(&mut session, line, &mut tally);
                                (i, resp, rejected, aborted)
                            })
                            .collect::<Vec<_>>();
                        (rows, tally)
                    })
                })
                .collect();
            let mut rows = Vec::new();
            for h in handles {
                let (mine, tally) = h.join().expect("serve worker panicked");
                outcome.cnf.merge(&tally);
                rows.extend(mine);
            }
            rows
        })
    };
    indexed.sort_unstable_by_key(|(i, ..)| *i);
    for (_, resp, rejected, aborted) in indexed {
        outcome.rejected += u64::from(rejected);
        outcome.aborted += u64::from(aborted);
        outcome.responses.push(resp);
    }
    outcome
}

/// Serve newline-delimited requests from `input` to `output` (the stdio
/// front door): the whole input is read, batched over `cfg.sessions`
/// sessions, and answered in order.
///
/// # Errors
/// Propagates I/O failures on the two streams.
pub fn serve_stream<B: SessionBackend>(
    base: &Arc<SharedBase<B>>,
    cfg: &ServeConfig,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<ServeOutcome> {
    let mut lines = Vec::new();
    for line in input.lines() {
        lines.push(line?);
    }
    let outcome = run_batch(base, cfg, &lines);
    for resp in &outcome.responses {
        writeln!(output, "{resp}")?;
    }
    output.flush()?;
    Ok(outcome)
}

/// Serve TCP connections: each connection gets its own session and a
/// streaming request/response loop (one response per line, flushed
/// immediately — no batching across a socket). `max_conns` bounds the
/// accept loop for tests; `None` serves until the process dies.
///
/// # Errors
/// Propagates accept failures; per-connection I/O errors terminate that
/// connection only.
pub fn serve_tcp<B: SessionBackend>(
    base: &Arc<SharedBase<B>>,
    cfg: &ServeConfig,
    listener: &std::net::TcpListener,
    max_conns: Option<usize>,
) -> std::io::Result<ServeOutcome> {
    let mut total = ServeOutcome::default();
    let mut served = 0;
    for conn in listener.incoming() {
        let stream = conn?;
        let mut session = base.session_with(cfg.admission());
        let mut reader = std::io::BufReader::new(stream.try_clone()?);
        let mut writer = std::io::BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            total.requests += 1;
            let (resp, rejected, aborted) =
                serve_line(&mut session, line.trim_end(), &mut total.cnf);
            total.rejected += u64::from(rejected);
            total.aborted += u64::from(aborted);
            if writeln!(writer, "{resp}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        served += 1;
        if let Some(max) = max_conns {
            if served >= max {
                break;
            }
        }
    }
    Ok(total)
}

// ───────────────────────── metrics assembly ──────────────────────────────

/// One metrics registry over the whole serving stack: the frozen backend's
/// own sections (`nodes.*`, `cache.*`, …), the lineage's `session.*` /
/// `epoch.*` sections, and the front door's `serve.*` section.
#[must_use]
pub fn serve_metrics<B: SessionBackend>(
    base: &SharedBase<B>,
    cfg: &ServeConfig,
    outcome: &ServeOutcome,
) -> MetricsSnapshot {
    let mut m = base.backend().observe();
    base.tracker().fill(&mut m);
    m.counter("serve.requests", outcome.requests);
    m.counter("serve.rejected", outcome.rejected);
    m.counter("serve.aborted", outcome.aborted);
    m.gauge("serve.sessions", cfg.sessions.max(1) as u64);
    m.counter("cnf.instances_loaded", outcome.cnf.instances_loaded);
    m.counter("cnf.clauses_scheduled", outcome.cnf.clauses_scheduled);
    m.gauge("cnf.conj_peak_nodes", outcome.cnf.conj_peak_nodes);
    m.counter("cnf.counts", outcome.cnf.counts);
    m.counter("cnf.slices_completed", outcome.cnf.slices_completed);
    m.counter("cnf.slices_aborted", outcome.cnf.slices_aborted);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbdd::Bbdd;
    use logicnet::publish::publish_networks;
    use logicnet::{GateOp, Network};

    fn adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cin = net.add_input("cin");
        let p = net.add_gate(GateOp::Xor, &[a, b]);
        let s = net.add_gate(GateOp::Xor, &[p, cin]);
        let c = net.add_gate(GateOp::Maj, &[a, b, cin]);
        net.set_output("s", s);
        net.set_output("cout", c);
        net
    }

    fn base() -> Arc<SharedBase<Bbdd>> {
        publish_networks::<Bbdd>(&[&adder()]).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let v = parse_json(r#"{"op":"eval","id":7,"x":[true,false,null,-2.5,"a\"b"]}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("eval"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let back = v.to_string();
        assert_eq!(parse_json(&back).unwrap(), v);
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("true false").is_err());
    }

    #[test]
    fn batch_answers_in_order_with_ids() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"eval","id":1,"f":"cout","assignment":[true,true,false]}"#.into(),
            r#"{"op":"sat_count","id":2,"f":"cout"}"#.into(),
            r#"{"op":"list","id":3}"#.into(),
            r#"{"op":"nope","id":4}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        assert_eq!(out.requests, 4);
        assert_eq!(out.rejected, 1);
        assert_eq!(out.aborted, 0);
        assert!(
            out.responses[0].contains("\"id\":1") && out.responses[0].contains("\"value\":true")
        );
        assert!(out.responses[1].contains("\"count\":\"4\""));
        assert!(out.responses[2].contains("\"functions\":[\"s\",\"cout\"]"));
        assert!(out.responses[3].contains("\"status\":\"error\""));
    }

    #[test]
    fn named_assignment_and_vars() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"eval","f":"s","assignment":{"cin":true}}"#.into(),
            r#"{"op":"quantify","kind":"exists","f":"cout","vars":["a","b","cin"]}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        assert!(out.responses[0].contains("\"value\":true"));
        // ∃ over everything: cout is satisfiable → the 1-terminal, 0 nodes.
        assert!(out.responses[1].contains("\"nodes\":0"));
    }

    #[test]
    fn over_budget_request_is_partial_not_fatal() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"apply","id":1,"how":"and","f":"s","g":"cout","budget":{"nodes":1}}"#.into(),
            r#"{"op":"eval","id":2,"f":"s","assignment":[false,false,true]}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        assert_eq!(out.aborted, 1);
        assert!(out.any_aborted());
        assert!(out.responses[0].contains("\"status\":\"aborted\""));
        assert!(out.responses[0].contains("\"partial\":true"));
        // The session survived the abort: the next request still answers.
        assert!(out.responses[1].contains("\"value\":true"));
    }

    #[test]
    fn multi_session_batch_matches_single_session() {
        let base = base();
        let lines: Vec<String> = (0..24)
            .map(|i| match i % 4 {
                0 => format!(
                    r#"{{"op":"eval","f":"s","assignment":[{},{},{}]}}"#,
                    i % 2 == 0,
                    i % 3 == 0,
                    i % 5 == 0
                ),
                1 => r#"{"op":"sat_count","f":"cout"}"#.to_string(),
                2 => r#"{"op":"cec","f":"s","g":"cout"}"#.to_string(),
                _ => r#"{"op":"node_count","f":"s"}"#.to_string(),
            })
            .collect();
        let seq = run_batch(&base, &ServeConfig::default(), &lines);
        for sessions in [2, 3, 4] {
            let par = run_batch(
                &base,
                &ServeConfig {
                    sessions,
                    ..ServeConfig::default()
                },
                &lines,
            );
            assert_eq!(
                par.responses, seq.responses,
                "{sessions} sessions must answer bit-identically"
            );
        }
    }

    #[test]
    fn store_is_visible_on_the_same_session() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"apply","how":"or","f":"s","g":"cout","store":"either"}"#.into(),
            r#"{"op":"sat_count","f":"either"}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        assert!(out.responses[1].contains("\"count\":"));
        // Stored names never leak into the shared base.
        assert!(base.library().get("either").is_none());
    }

    #[test]
    fn serve_metrics_has_all_sections() {
        let base = base();
        let lines: Vec<String> =
            vec![r#"{"op":"apply","how":"and","f":"s","g":"cout","budget":{"nodes":1}}"#.into()];
        let cfg = ServeConfig::default();
        let out = run_batch(&base, &cfg, &lines);
        let m = serve_metrics(&base, &cfg, &out);
        assert_eq!(m.get("serve.requests"), Some(1));
        assert_eq!(m.get("serve.aborted"), Some(1));
        assert_eq!(m.get("epoch.current"), Some(1));
        assert_eq!(m.get("session.created"), Some(1));
        assert!(m.get("nodes.live").is_some() || m.get("nodes.created").is_some());
        let json = m.to_json();
        assert!(json.contains("\"serve\":{"));
        assert!(json.contains("\"session\":{"));
        assert!(json.contains("\"epoch\":{"));
    }

    #[test]
    fn load_cnf_and_count_roundtrip() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"load_cnf","id":1,"name":"inst","text":"p cnf 3 2\n1 -2 0\n2 3 0\n"}"#.into(),
            r#"{"op":"count","id":2,"f":"inst"}"#.into(),
            r#"{"op":"count","id":3,"f":"inst","over":3,"slice":2}"#.into(),
            r#"{"op":"count","id":4,"f":"inst","over":5}"#.into(),
            r#"{"op":"load_cnf","id":5,"name":"bad","text":"p cnf 3\n"}"#.into(),
            r#"{"op":"load_cnf","id":6,"name":"wide","text":"p cnf 9 1\n9 0\n"}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3) has exactly 4 models over 3 variables.
        assert!(
            out.responses[0].contains("\"status\":\"ok\"")
                && out.responses[0].contains("\"clauses\":2")
        );
        assert!(out.responses[1].contains("\"count\":\"4\""));
        // Slicing on 2 support variables recombines to the same count.
        assert!(
            out.responses[2].contains("\"count\":\"4\"")
                && out.responses[2].contains("\"slices\":4")
                && out.responses[2].contains("\"aborted\":0")
        );
        // A wider declared universe scales the count by 2^(5-3).
        assert!(out.responses[3].contains("\"count\":\"16\""));
        // Malformed DIMACS and an instance wider than the base are errors.
        assert!(out.responses[4].contains("\"status\":\"error\""));
        assert!(out.responses[5].contains("\"status\":\"error\""));
        assert_eq!(out.cnf.instances_loaded, 1);
        assert_eq!(out.cnf.counts, 3);
        assert_eq!(out.cnf.slices_completed, 4);
        assert_eq!(out.cnf.slices_aborted, 0);
        let m = serve_metrics(&base, &ServeConfig::default(), &out);
        assert_eq!(m.get("cnf.instances_loaded"), Some(1));
        assert_eq!(m.get("cnf.clauses_scheduled"), Some(2));
        assert_eq!(m.get("cnf.slices_completed"), Some(4));
    }

    #[test]
    fn sliced_count_under_budget_is_a_partial_verdict() {
        let base = base();
        let lines: Vec<String> = vec![
            r#"{"op":"load_cnf","id":1,"name":"inst","text":"p cnf 3 2\n1 -2 0\n2 3 0\n"}"#.into(),
            r#"{"op":"count","id":2,"f":"inst","slice":1,"budget":{"nodes":1}}"#.into(),
            r#"{"op":"eval","id":3,"f":"inst","assignment":[true,true,true]}"#.into(),
        ];
        let out = run_batch(&base, &ServeConfig::default(), &lines);
        assert_eq!(out.aborted, 1);
        // The partial verdict still carries the completed-slice lower bound.
        assert!(out.responses[1].contains("\"status\":\"aborted\""));
        assert!(out.responses[1].contains("\"partial\":true"));
        assert!(out.responses[1].contains("\"count\":\""));
        assert!(out.cnf.slices_aborted > 0);
        // The session survived: the loaded instance still evaluates.
        assert!(out.responses[2].contains("\"value\":true"));
    }

    #[test]
    fn load_cnf_schedules_agree() {
        let base = base();
        for schedule in ["input", "bucket", "force"] {
            let lines: Vec<String> = vec![
                format!(
                    r#"{{"op":"load_cnf","name":"i","text":"p cnf 3 3\n1 2 0\n-1 3 0\n2 -3 0\n","schedule":"{schedule}"}}"#
                ),
                r#"{"op":"count","f":"i","over":3}"#.into(),
            ];
            let out = run_batch(&base, &ServeConfig::default(), &lines);
            assert!(
                out.responses[0].contains(&format!("\"schedule\":\"{schedule}\"")),
                "schedule {schedule}: {}",
                out.responses[0]
            );
            assert!(
                out.responses[1].contains("\"count\":\"3\""),
                "schedule {schedule}: {}",
                out.responses[1]
            );
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let base = base();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn({
            let base = Arc::clone(&base);
            move || serve_tcp(&base, &ServeConfig::default(), &listener, Some(1)).unwrap()
        });
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(
            b"{\"op\":\"eval\",\"id\":9,\"f\":\"cout\",\"assignment\":[true,true,true]}\n",
        )
        .unwrap();
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"id\":9") && line.contains("\"value\":true"));
        drop(reader);
        drop(conn);
        let outcome = server.join().unwrap();
        assert_eq!(outcome.requests, 1);
    }
}

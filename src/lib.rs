//! Umbrella crate for the BBDD reproduction suite.
//!
//! This crate re-exports the workspace members so that the runnable
//! `examples/` and the cross-crate integration `tests/` at the repository
//! root can exercise the whole system through one dependency:
//!
//! * [`bbdd`] — the Biconditional BDD manipulation package (the paper's
//!   primary contribution);
//! * [`robdd`] — the CUDD-style ROBDD baseline package;
//! * [`logicnet`] — logic-network IR with BLIF / structural-Verilog I/O;
//! * [`benchgen`] — MCNC stand-in and datapath benchmark generators;
//! * [`synthkit`] — cell library, technology mapper, static timing and the
//!   BBDD datapath-rewriting front-end;
//! * [`ddcore`] — shared table/cache/hash infrastructure.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use bbdd;
pub use benchgen;
pub use ddcore;
pub use logicnet;
pub use robdd;
pub use synthkit;

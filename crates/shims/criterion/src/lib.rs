//! A self-contained, dependency-free stand-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps the `benches/` sources compiling unchanged and
//! still produces honest wall-clock measurements: each benchmark is run for
//! a fixed number of timed samples (after a warm-up pass) and the median,
//! mean and min per-iteration times are printed in criterion-like format.
//!
//! Not implemented: statistical regression analysis, HTML reports, plotting,
//! baselines. The numbers printed here are suitable for A/B comparisons on
//! one machine, which is all the harness needs.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted and ignored: the shim always
/// times one routine invocation per setup call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: find an inner batch count that makes one
        // sample take ≥ ~200µs so Instant resolution noise stays small.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up once.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passing the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim has no fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &mut b.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &mut b.samples);
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let sum: Duration = samples.iter().sum();
        let mean = sum / samples.len() as u32;
        println!(
            "{}/{}  time: [median {} | mean {} | min {}]  ({} samples)",
            self.name,
            id,
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            samples.len(),
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id), median));
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    /// `(name, median)` pairs collected across all groups, for callers that
    /// want machine-readable output (the baseline binary).
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("crit").bench_function(id, f);
        self
    }

    /// Accepted for API compatibility; the shim writes no report files.
    pub fn final_summary(&self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! A self-contained, dependency-free stand-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the property tests running as *randomized*
//! tests: each `proptest!` test generates `Config::cases` random inputs from
//! its strategies (seeded deterministically per test name, perturbed by
//! `PROPTEST_SEED` if set) and asserts the body. There is **no shrinking**:
//! a failure reports the debug form of the generated inputs instead.
//!
//! Implemented: `Strategy` (`prop_map`, `prop_flat_map`, `prop_recursive`,
//! `boxed`), `any` for primitives and small arrays, ranges, tuples (2–4),
//! `Just`, `prop_oneof!`, `proptest::collection::vec`, `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `ProptestConfig::with_cases`.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking; a strategy is just a seeded generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursively grown values: `self` is the leaf strategy; `recurse`
    /// builds a strategy for one more level from the strategy for smaller
    /// values. `depth` bounds the recursion; the size hints are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // Mix the leaf back in so trees terminate early with positive
            // probability at every level.
            let l = leaf.clone();
            level = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        level
    }

    /// Type-erase (and make cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Rc::new(move |rng: &mut TestRng| s.generate(rng)),
        }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue: Sized + std::fmt::Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue, const N: usize> ArbitraryValue for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Union of equally-weighted alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union { alternatives }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[k].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Boxed variant used by some call sites.
    pub fn vec_boxed<T: std::fmt::Debug + 'static>(
        element: BoxedStrategy<T>,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<BoxedStrategy<T>> {
        vec(element, size)
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number-of-cases knob, the only configuration the shim honours.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Random inputs generated per property.
        pub cases: u32,
    }

    impl Config {
        /// `cases` random inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy, TestRng,
    };
}

/// FNV-1a of the test name: per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => h ^ s.parse::<u64>().unwrap_or(0),
        Err(_) => h,
    }
}

/// Equal-weight union of strategies. Weighted alternatives (`w => strat`)
/// are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Define randomized property tests.
///
/// Supports the `#![proptest_config(...)]` header and `name(arg in strategy,
/// ...)` test signatures. Inputs are regenerated per case; on panic the
/// failing case's debug representation is printed by the harness via the
/// panic message context.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(e) = result {
                    eprintln!("proptest case {case} of {} failed with inputs:", stringify!($name));
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

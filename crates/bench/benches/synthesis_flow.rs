//! Experiment E2 (criterion form): runtime of the two Table-II synthesis
//! flows on mid-size datapaths (the paper reports quality, not runtime;
//! this bench guards the harness against regressions).

use benchgen::datapath::Datapath;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthkit::cells::CellLibrary;
use synthkit::flow::{synthesize_bbdd_first_with, synthesize_direct_with};
use synthkit::mapper::MapStyle;

fn bench_flows(c: &mut Criterion) {
    let lib = CellLibrary::paper_22nm();
    let mut group = c.benchmark_group("table2_flows");
    group.sample_size(10);
    for dp in [
        Datapath::Adder { width: 16 },
        Datapath::Magnitude { width: 16 },
        Datapath::Equality { width: 16 },
    ] {
        let net = dp.commercial_implementation();
        group.bench_with_input(BenchmarkId::new("direct", dp.label()), &net, |b, net| {
            b.iter(|| synthesize_direct_with(net, &lib, MapStyle::TreeLocal).gate_count);
        });
        group.bench_with_input(
            BenchmarkId::new("bbdd_front_end", dp.label()),
            &net,
            |b, net| {
                b.iter(|| {
                    synthesize_bbdd_first_with(net, &lib, true, MapStyle::TreeLocal)
                        .0
                        .gate_count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);

//! Experiment E4 (criterion form): CVO swap cost (Fig. 2) for the BBDD
//! package against the classic BDD adjacent swap, on matched workloads.

use bbdd_bench::fig2::random_function;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacent_swap_sweep");
    group.sample_size(10);
    for &n in &[12usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("bbdd", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut mgr = bbdd::Bbdd::new(n);
                    let f = random_function(&mut mgr, n, 77);
                    let pin = mgr.pin(f); // registry root: per-swap GC traces it
                    mgr.gc();
                    (mgr, pin)
                },
                |(mut mgr, f)| {
                    for pos in 0..n - 1 {
                        mgr.swap_adjacent(pos);
                        mgr.gc();
                    }
                    drop(f);
                    mgr.live_nodes()
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("robdd", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut mgr = robdd::Robdd::new(n);
                    let vs: Vec<robdd::Edge> = (0..n).map(|v| mgr.var(v)).collect();
                    let mut f = vs[0];
                    let mut state = 77u64;
                    for _ in 0..3 * n {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let v = vs[(state >> 18) as usize % n];
                        f = match (state >> 40) % 4 {
                            0 => mgr.and(f, v),
                            1 => mgr.or(f, v),
                            2 => mgr.xor(f, v),
                            _ => mgr.nand(f, v),
                        };
                    }
                    let pin = mgr.pin(f);
                    mgr.gc();
                    (mgr, pin)
                },
                |(mut mgr, f)| {
                    for pos in 0..n - 1 {
                        mgr.swap_adjacent(pos);
                        mgr.gc();
                    }
                    drop(f);
                    mgr.live_nodes()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swap);
criterion_main!(benches);

//! Experiment E1 (criterion form): per-benchmark build and sift times for
//! both packages on representative MCNC stand-ins — the timing columns of
//! Table I as repeatable micro-benchmarks, driven through the unified
//! `ddcore::api` trait layer (the build rows therefore also measure the
//! trait front-end the real drivers use).

use bbdd::BbddManager;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcore::api::FunctionManager;
use logicnet::build::build_network;
use robdd::RobddManager;

/// The quick subset: every class represented, no multi-second rows.
const QUICK: [&str; 6] = ["my_adder", "comp", "misex1", "9symml", "parity", "cordic"];

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for name in QUICK {
        let net = benchgen::mcnc::generate(name).unwrap();
        group.bench_with_input(BenchmarkId::new("bbdd", name), &net, |b, net| {
            b.iter(|| {
                let mgr = BbddManager::with_vars(net.num_inputs());
                build_network(&mgr, net)
            });
        });
        group.bench_with_input(BenchmarkId::new("robdd", name), &net, |b, net| {
            b.iter(|| {
                let mgr = RobddManager::with_vars(net.num_inputs());
                build_network(&mgr, net)
            });
        });
    }
    group.finish();
}

fn bench_sift(c: &mut Criterion) {
    let mut group = c.benchmark_group("sift");
    group.sample_size(10);
    for name in ["my_adder", "misex1", "comp"] {
        let net = benchgen::mcnc::generate(name).unwrap();
        group.bench_with_input(BenchmarkId::new("bbdd", name), &net, |b, net| {
            b.iter_batched(
                || {
                    let mgr = BbddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, net);
                    (mgr, roots)
                },
                |(mgr, roots)| {
                    // `roots` are owned handles: the sift traces the
                    // registry they populate.
                    let live = mgr.reorder();
                    drop(roots);
                    live
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("robdd", name), &net, |b, net| {
            b.iter_batched(
                || {
                    let mgr = RobddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, net);
                    (mgr, roots)
                },
                |(mgr, roots)| {
                    let live = mgr.reorder();
                    drop(roots);
                    live
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// One row per reorder strategy of the DVO engine (`ddcore::dvo`): the
/// same build+sift shape as `bench_sift`, dispatched through
/// `FunctionManager::reorder_with` — full sift vs the bounded windows vs
/// the BBDD pair-aware walk, on the misex1 stand-in.
fn bench_sift_strategies(c: &mut Criterion) {
    use ddcore::dvo::DvoStrategy;
    let mut group = c.benchmark_group("sift_strategy");
    group.sample_size(10);
    let net = benchgen::mcnc::generate("misex1").unwrap();
    for (label, strategy) in [
        ("full", DvoStrategy::Full),
        ("window1", DvoStrategy::Window(1)),
        ("window2", DvoStrategy::Window(2)),
        ("pair", DvoStrategy::Pair),
    ] {
        group.bench_with_input(BenchmarkId::new("bbdd", label), &net, |b, net| {
            b.iter_batched(
                || {
                    let mgr = BbddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, net);
                    (mgr, roots)
                },
                |(mgr, roots)| {
                    let live = mgr.reorder_with(strategy);
                    drop(roots);
                    live
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("robdd", label), &net, |b, net| {
            b.iter_batched(
                || {
                    let mgr = RobddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, net);
                    (mgr, roots)
                },
                |(mgr, roots)| {
                    let live = mgr.reorder_with(strategy);
                    drop(roots);
                    live
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_sift, bench_sift_strategies);
criterion_main!(benches);

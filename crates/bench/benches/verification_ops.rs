//! Benchmarks for the verification ops layer: cube quantification, the
//! fused and-exists, satisfiability counting, composition and the full
//! combinational equivalence check — on both managers, over real circuit
//! functions (MCNC stand-ins and datapath generators).

use bbdd::BbddManager;
use benchgen::{datapath, mcnc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcore::api::BooleanFunction;
use logicnet::build::build_network;
use logicnet::cec::{check_equivalence_bbdd, check_equivalence_robdd};
use robdd::RobddManager;

/// Every other input — a realistic "state variables" cube for image-style
/// quantification.
fn half_cube(n: usize) -> Vec<usize> {
    (0..n).filter(|v| v % 2 == 0).collect()
}

fn bench_quantification(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify");
    group.sample_size(20);
    for name in ["comp", "my_adder", "9symml"] {
        let net = mcnc::generate(name).expect("known benchmark");
        let cube = half_cube(net.num_inputs());
        group.bench_with_input(BenchmarkId::new("exists_bbdd", name), name, |b, _| {
            b.iter_batched(
                || {
                    let mgr = BbddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, &net);
                    (mgr, roots)
                },
                |(_mgr, roots)| {
                    for r in &roots {
                        criterion::black_box(r.exists(&cube));
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("exists_robdd", name), name, |b, _| {
            b.iter_batched(
                || {
                    let mgr = RobddManager::with_vars(net.num_inputs());
                    let roots = build_network(&mgr, &net);
                    (mgr, roots)
                },
                |(_mgr, roots)| {
                    for r in &roots {
                        criterion::black_box(r.exists(&cube));
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_and_exists(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_exists");
    group.sample_size(20);
    // Relational-product shape: conjoin two outputs of the comparator and
    // quantify half the inputs — fused vs. materialize-then-quantify.
    let net = mcnc::generate("comp").expect("known benchmark");
    let cube = half_cube(net.num_inputs());
    group.bench_function("fused_bbdd", |b| {
        b.iter_batched(
            || {
                let mgr = BbddManager::with_vars(net.num_inputs());
                let roots = build_network(&mgr, &net);
                (mgr, roots)
            },
            |(_mgr, roots)| criterion::black_box(roots[0].and_exists(&roots[1], &cube)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("materialized_bbdd", |b| {
        b.iter_batched(
            || {
                let mgr = BbddManager::with_vars(net.num_inputs());
                let roots = build_network(&mgr, &net);
                (mgr, roots)
            },
            |(_mgr, roots)| {
                let conj = roots[0].and(&roots[1]);
                criterion::black_box(conj.exists(&cube))
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_satcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("satcount");
    group.sample_size(30);
    let net = datapath::adder_cla(16);
    let bb = BbddManager::with_vars(net.num_inputs());
    let bb_roots = build_network(&bb, &net);
    let rb = RobddManager::with_vars(net.num_inputs());
    let rb_roots = build_network(&rb, &net);
    group.bench_function("bbdd_cla16_all_outputs", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for r in &bb_roots {
                acc = acc.wrapping_add(r.sat_count());
            }
            criterion::black_box(acc)
        });
    });
    group.bench_function("robdd_cla16_all_outputs", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for r in &rb_roots {
                acc = acc.wrapping_add(r.sat_count());
            }
            criterion::black_box(acc)
        });
    });
    group.finish();
}

fn bench_cec(c: &mut Criterion) {
    let mut group = c.benchmark_group("cec");
    group.sample_size(10);
    for w in [8usize, 12] {
        let ripple = datapath::adder(w);
        let cla = datapath::adder_cla(w);
        group.bench_with_input(BenchmarkId::new("adder_pair_bbdd", w), &w, |b, _| {
            b.iter(|| criterion::black_box(check_equivalence_bbdd(&ripple, &cla)));
        });
        group.bench_with_input(BenchmarkId::new("adder_pair_robdd", w), &w, |b, _| {
            b.iter(|| criterion::black_box(check_equivalence_robdd(&ripple, &cla)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quantification,
    bench_and_exists,
    bench_satcount,
    bench_cec
);
criterion_main!(benches);

//! Experiment E6: the `O(|f|·|g|)` complexity claim for Algorithm 1
//! (§IV-A2) — apply runtime versus operand sizes, plus the trivial-case
//! and computed-table short-circuits.

use bbdd::{Bbdd, BoolOp, Edge};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Deterministic pseudo-random function over `n` vars with roughly
/// size-controllable structure.
fn random_function(mgr: &mut Bbdd, n: usize, seed: u64, ops: usize) -> Edge {
    let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
    let table = [
        BoolOp::XOR,
        BoolOp::AND,
        BoolOp::OR,
        BoolOp::XNOR,
        BoolOp::NAND,
    ];
    let mut state = seed | 1;
    let mut f = vs[0];
    for _ in 0..ops {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let op = table[(state >> 33) as usize % table.len()];
        let v = vs[(state >> 18) as usize % n];
        f = mgr.apply(op, f, v);
    }
    f
}

fn bench_apply_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_product_scaling");
    group.sample_size(20);
    for &n in &[12usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("and_of_randoms", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut mgr = Bbdd::new(n);
                    let f = random_function(&mut mgr, n, 0xAAAA, 4 * n);
                    let g = random_function(&mut mgr, n, 0x5555, 4 * n);
                    (mgr, f, g)
                },
                |(mut mgr, f, g)| mgr.and(f, g),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("apply_short_circuits");
    group.sample_size(30);
    group.bench_function("terminal_case_f_and_not_f", |b| {
        let mut mgr = Bbdd::new(16);
        let f = random_function(&mut mgr, 16, 0x1234, 48);
        b.iter(|| mgr.and(f, !f));
    });
    group.bench_function("computed_table_hit", |b| {
        let mut mgr = Bbdd::new(16);
        let f = random_function(&mut mgr, 16, 0x9876, 48);
        let g = random_function(&mut mgr, 16, 0x1357, 48);
        let _ = mgr.xor(f, g); // warm the cache
        b.iter(|| mgr.xor(f, g));
    });
    group.finish();
}

criterion_group!(benches, bench_apply_scaling);
criterion_main!(benches);

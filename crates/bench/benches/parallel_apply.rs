//! Parallel apply: the large XOR-accumulation workload (the `baseline`
//! binary's big-apply shape) on `ParBbdd` at 1/2/4 threads against the
//! sequential `Bbdd`.
//!
//! On a multi-core host the 2- and 4-thread rows show the fork-join
//! speedup; on a single-core host they document the pipeline's overhead
//! honestly (the machine-readable numbers land in `BENCH_ops.json` via
//! `cargo run --release -p bbdd-bench --bin baseline`).

use bbdd::{Bbdd, BoolOp, Edge, ParBbdd, ParConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

const VARS: usize = 22;
const ACCS: usize = 6;

fn random_function(
    apply: &mut impl FnMut(BoolOp, Edge, Edge) -> Edge,
    vars: &[Edge],
    seed: u64,
) -> Edge {
    let table = [
        BoolOp::XOR,
        BoolOp::AND,
        BoolOp::OR,
        BoolOp::XNOR,
        BoolOp::NAND,
    ];
    let mut state = seed | 1;
    let mut f = vars[0];
    for _ in 0..10 * VARS {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let op = table[(state >> 33) as usize % table.len()];
        let v = vars[(state >> 18) as usize % VARS];
        f = apply(op, f, v);
    }
    f
}

/// Accumulate `ACCS` large XORs — the timed portion. Setup (building the
/// manager and the operand functions) is excluded via `iter_batched`.
fn bench_parallel_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_apply");
    group.sample_size(3);

    group.bench_function("xor_acc/seq", |b| {
        b.iter_batched(
            || {
                let mut mgr = Bbdd::new(VARS);
                let vars: Vec<Edge> = (0..VARS).map(|v| mgr.var(v)).collect();
                let fs: Vec<Edge> = (0..=ACCS as u64)
                    .map(|k| random_function(&mut |o, x, y| mgr.apply(o, x, y), &vars, 0xF00D + k))
                    .collect();
                (mgr, fs)
            },
            |(mut mgr, fs)| {
                let mut acc = fs[0];
                for &g in &fs[1..] {
                    acc = mgr.xor(acc, g);
                }
                acc
            },
            BatchSize::LargeInput,
        );
    });

    for threads in [1usize, 2, 4] {
        group.bench_function(format!("xor_acc/par_t{threads}"), |b| {
            b.iter_batched(
                || {
                    let mut mgr = ParBbdd::with_config(
                        VARS,
                        ParConfig {
                            threads,
                            ..ParConfig::default()
                        },
                    );
                    let vars: Vec<Edge> = (0..VARS).map(|v| mgr.var(v)).collect();
                    let fs: Vec<Edge> = (0..=ACCS as u64)
                        .map(|k| {
                            random_function(&mut |o, x, y| mgr.apply(o, x, y), &vars, 0xF00D + k)
                        })
                        .collect();
                    (mgr, fs)
                },
                |(mut mgr, fs)| {
                    let mut acc = fs[0];
                    for &g in &fs[1..] {
                        acc = mgr.xor(acc, g);
                    }
                    acc
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_apply);
criterion_main!(benches);

//! Experiment E5: ablation of the paper's §IV-A3 memory-management
//! choices — Cantor-pairing hashing (with its adaptive re-arrangement)
//! against a conventional multiplicative hash, and computed-table size
//! sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcore::cantor::CantorHasher;
use ddcore::fxhash::FxHasher;
use ddcore::table::{BucketTable, OpenTable, TableKey};
use ddcore::ComputedCache;
use std::hash::Hasher as _;

#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct CantorKey(u32, u32, u32);
impl TableKey for CantorKey {
    fn table_hash(&self, h: &CantorHasher) -> u64 {
        h.hash3(self.0 as u64, self.1 as u64, self.2 as u64)
    }
}

/// The same key hashed with the Fx multiplicative hash instead of the
/// paper's nested Cantor pairing.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct FxKey(u32, u32, u32);
impl TableKey for FxKey {
    fn table_hash(&self, _h: &CantorHasher) -> u64 {
        let mut hs = FxHasher::default();
        hs.write_u32(self.0);
        hs.write_u32(self.1);
        hs.write_u32(self.2);
        hs.finish()
    }
}

/// Node-tuple-like key distribution: children ids clustered (locality) with
/// occasional far references, complement bits in the low bit.
fn keys(n: usize) -> Vec<(u32, u32, u32)> {
    let mut state = 0x0123_4567_89AB_CDEFu64 | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let near = (i as u32).saturating_sub((state >> 40) as u32 % 64);
            let far = (state >> 20) as u32 % (i as u32 + 1);
            (
                near << 1 | (state >> 5 & 1) as u32,
                far << 1,
                (state >> 60) as u32 & 1,
            )
        })
        .collect()
}

fn bench_unique_table_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("unique_table_hash");
    group.sample_size(20);
    let data = keys(100_000);
    group.bench_function("cantor_adaptive", |b| {
        b.iter(|| {
            let mut t: BucketTable<CantorKey> = BucketTable::new(64);
            for (i, &(x, y, z)) in data.iter().enumerate() {
                let k = CantorKey(x, y, z);
                if t.get(&k).is_none() {
                    t.insert(k, i as u32);
                }
            }
            t.len()
        });
    });
    group.bench_function("fx_multiplicative", |b| {
        b.iter(|| {
            let mut t: BucketTable<FxKey> = BucketTable::new(64);
            for (i, &(x, y, z)) in data.iter().enumerate() {
                let k = FxKey(x, y, z);
                if t.get(&k).is_none() {
                    t.insert(k, i as u32);
                }
            }
            t.len()
        });
    });
    group.finish();
}

/// Chained vs open-addressed unique table on the same key trace — the
/// head-to-head behind the `chained_tables` feature flag.
fn bench_table_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("unique_table_layout");
    group.sample_size(20);
    let data = keys(100_000);
    group.bench_function("chained_bucket", |b| {
        b.iter(|| {
            let mut t: BucketTable<CantorKey> = BucketTable::new(64);
            for (i, &(x, y, z)) in data.iter().enumerate() {
                let k = CantorKey(x, y, z);
                if t.get(&k).is_none() {
                    t.insert(k, i as u32);
                }
            }
            t.len()
        });
    });
    group.bench_function("open_addressed", |b| {
        b.iter(|| {
            let mut t: OpenTable<CantorKey> = OpenTable::new(64);
            for (i, &(x, y, z)) in data.iter().enumerate() {
                let k = CantorKey(x, y, z);
                if t.get(&k).is_none() {
                    t.insert(k, i as u32);
                }
            }
            t.len()
        });
    });
    group.finish();
}

fn bench_cache_size_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("computed_table_size");
    group.sample_size(20);
    // A fixed apply-like access trace replayed against different cache caps.
    let trace = keys(200_000);
    for &cap in &[1usize << 10, 1 << 14, 1 << 18] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut cache = ComputedCache::with_max(cap, cap);
                let mut hits = 0u64;
                for &(x, y, z) in &trace {
                    if cache.get(x as u64, y as u64, z & 15).is_some() {
                        hits += 1;
                    } else {
                        cache.insert(x as u64, y as u64, z & 15, u64::from(x ^ y));
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

/// End-to-end ablation: build a real workload with both hash styles by
/// re-running the same netlist build (the unique tables dominate).
fn bench_end_to_end_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_end_to_end_build");
    group.sample_size(10);
    let net = benchgen::mcnc::generate("C1908").unwrap();
    group.bench_function("bbdd_build_c1908", |b| {
        b.iter(|| {
            let mgr = bbdd::BbddManager::with_vars(net.num_inputs());
            logicnet::build::build_network(&mgr, &net)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unique_table_hashing,
    bench_table_layout,
    bench_cache_size_sensitivity,
    bench_end_to_end_build
);
criterion_main!(benches);

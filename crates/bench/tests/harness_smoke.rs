//! Smoke tests of the experiment harness itself: each table row runs end
//! to end on a quick benchmark and produces sane measurements.

use bbdd_bench::{fig2, table1, table2, timed};

#[test]
fn table1_row_runs_the_full_pipeline() {
    let bench = benchgen::mcnc::TABLE1
        .iter()
        .find(|b| b.name == "misex1")
        .unwrap();
    let row = table1::run_row(bench);
    assert_eq!(row.inputs, 8);
    assert_eq!(row.outputs, 7);
    assert!(row.bbdd_nodes > 0 && row.bdd_nodes > 0);
    assert!(row.node_ratio() > 0.0);
    let rendered = table1::render(std::slice::from_ref(&row));
    assert!(rendered.contains("misex1"));
    let s = table1::summarize(std::slice::from_ref(&row));
    assert!(s.speedup.is_finite());
}

#[test]
fn table2_row_runs_both_flows() {
    let dp = benchgen::datapath::Datapath::Equality { width: 8 };
    let row = table2::run_row(&dp);
    assert_eq!(row.inputs, 16);
    assert_eq!(row.outputs, 1);
    assert!(row.bbdd.0 > 0.0 && row.direct.0 > 0.0);
    assert!(row.bbdd_nodes.1 <= row.bbdd_nodes.0);
    let rendered = table2::render(std::slice::from_ref(&row));
    assert!(rendered.contains("Equality 8"));
}

#[test]
fn fig2_throughput_measures_something() {
    let t = fig2::swap_throughput(8, 42);
    assert_eq!(t.vars, 8);
    assert!(t.swaps > 0);
    assert!(t.seconds >= 0.0);
}

#[test]
fn timed_returns_result_and_duration() {
    let (v, secs) = timed(|| 2 + 2);
    assert_eq!(v, 4);
    assert!(secs >= 0.0);
}

//! Regenerate the paper's Table I. Usage:
//!   cargo run --release -p bbdd-bench --bin table1 [bench-name …]
use bbdd_bench::table1;
use benchgen::mcnc::TABLE1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: Vec<table1::Row> = if args.is_empty() {
        println!("Table I: BBDD package vs BDD package (17 MCNC stand-ins)");
        println!("(build with file order, then sift; times are wall-clock seconds)\n");
        table1::run_all()
    } else {
        TABLE1
            .iter()
            .filter(|b| args.iter().any(|a| a == b.name))
            .map(table1::run_row)
            .collect()
    };
    print!("{}", table1::render(&rows));
}

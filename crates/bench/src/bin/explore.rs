//! Scratch measurement tool: print BBDD vs ROBDD sizes (built and sifted)
//! for any Table-I benchmark. Usage:
//!   cargo run --release -p bbdd-bench --bin explore [bench-name …]
use logicnet::build::build_network;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["my_adder", "comp", "parity", "9symml"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "bench", "BBDD built", "BBDD sifted", "BDD built", "BDD sifted"
    );
    for name in names {
        let Some(net) = benchgen::mcnc::generate(name) else {
            eprintln!("unknown benchmark {name}");
            continue;
        };
        let mut bb = bbdd::Bbdd::new(net.num_inputs());
        let rb = build_network(&mut bb, &net);
        let bb_built = bb.shared_node_count_fns(&rb);
        bb.sift();
        let mut bd = robdd::Robdd::new(net.num_inputs());
        let rd = build_network(&mut bd, &net);
        let bd_built = bd.shared_node_count_fns(&rd);
        bd.sift();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            name,
            bb_built,
            bb.shared_node_count_fns(&rb),
            bd_built,
            bd.shared_node_count_fns(&rd)
        );
    }
}

//! Scratch measurement tool: print BBDD vs ROBDD sizes (built and sifted)
//! for any Table-I benchmark. Usage:
//!   cargo run --release -p bbdd-bench --bin explore [bench-name …]
use ddcore::api::FunctionManager;
use logicnet::build::build_network;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["my_adder", "comp", "parity", "9symml"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "bench", "BBDD built", "BBDD sifted", "BDD built", "BDD sifted"
    );
    for name in names {
        let Some(net) = benchgen::mcnc::generate(name) else {
            eprintln!("unknown benchmark {name}");
            continue;
        };
        let bb = bbdd::BbddManager::with_vars(net.num_inputs());
        let rb = build_network(&bb, &net);
        let bb_built = bb.shared_node_count(&rb);
        bb.reorder();
        let bd = robdd::RobddManager::with_vars(net.num_inputs());
        let rd = build_network(&bd, &net);
        let bd_built = bd.shared_node_count(&rd);
        bd.reorder();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            name,
            bb_built,
            bb.shared_node_count(&rb),
            bd_built,
            bd.shared_node_count(&rd)
        );
    }
}

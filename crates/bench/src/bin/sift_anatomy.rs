//! Scratch measurement: decompose robdd sift cost on one benchmark into
//! swap work vs. per-swap GC work (root-causing the misex1 open-table
//! sift regression), measured through the `ddcore::obs` profiler — the
//! same log2-latency histograms behind the CLI's `--profile` report —
//! instead of ad-hoc `Instant` bookkeeping. Usage:
//!   cargo run --release -p bbdd-bench --bin sift_anatomy [bench-name]
//!   cargo run --release -p bbdd-bench --bin sift_anatomy --features chained_tables ...

use ddcore::api::FunctionManager;
use ddcore::obs;
use logicnet::build::build_network;

/// Mean recorded latency of `op` in the snapshot, in nanoseconds.
fn mean_ns(s: &obs::ProfileSnapshot, op: obs::Op) -> f64 {
    s.ops
        .iter()
        .find(|r| r.op == op)
        .map_or(0.0, |r| r.total_ns as f64 / r.count.max(1) as f64)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "misex1".into());
    let variant = if cfg!(feature = "chained_tables") {
        "chained"
    } else {
        "open"
    };
    let net = benchgen::mcnc::generate(&name).expect("known benchmark");
    let n = net.num_inputs();
    obs::set_profile_enabled(true);

    // Phase 1 — whole sifts: the Reorder histogram over 7 fresh managers
    // gives the reference per-sift latency (p50 of the log2 buckets
    // stands in for the old best-of-reps minimum).
    obs::profile_reset();
    for _ in 0..7 {
        let mgr = robdd::RobddManager::with_vars(n);
        let _roots = build_network(&mgr, &net); // handles: registry roots
        mgr.reorder();
    }
    let sift_phase = obs::profile_snapshot();
    let sift_ns = mean_ns(&sift_phase, obs::Op::Reorder);

    // Phase 2 — swap-only walk (no GC besides what swap itself does):
    // sweep every variable down and back up, repeated. The raw manager is
    // driven through the backend escape hatch; the profiler's Swap
    // histogram replaces the stopwatch.
    let mgr = robdd::RobddManager::with_vars(n);
    let _roots = build_network(&mgr, &net);
    let mut mgr = mgr.backend_mut();
    mgr.gc();
    let reps = 200;
    obs::profile_reset();
    for _ in 0..reps {
        for p in 0..n - 1 {
            mgr.swap_adjacent(p);
        }
        for p in (0..n - 1).rev() {
            mgr.swap_adjacent(p);
        }
    }
    let swap_phase = obs::profile_snapshot();
    let swap_ns = mean_ns(&swap_phase, obs::Op::Swap);

    // Phase 3 — GC-only: same diagram, repeated collections (nothing dies
    // after the first), isolating the fixed sweep cost via the Gc span
    // histogram.
    mgr.gc();
    obs::profile_reset();
    for _ in 0..4000 {
        mgr.gc();
    }
    let gc_phase = obs::profile_snapshot();
    let gc_ns = mean_ns(&gc_phase, obs::Op::Gc);

    // Phase 4 — swap + per-swap GC (the sift inner loop shape); the sum
    // of both ops' totals over the shared call count is the pair cost.
    obs::profile_reset();
    let mut both = 0u64;
    for _ in 0..reps {
        for p in 0..n - 1 {
            mgr.swap_adjacent(p);
            mgr.gc();
            both += 1;
        }
        for p in (0..n - 1).rev() {
            mgr.swap_adjacent(p);
            mgr.gc();
            both += 1;
        }
    }
    let pair_phase = obs::profile_snapshot();
    let both_ns = pair_phase
        .ops
        .iter()
        .filter(|r| matches!(r.op, obs::Op::Swap | obs::Op::Gc))
        .map(|r| r.total_ns)
        .sum::<u64>() as f64
        / both.max(1) as f64;

    let ts = mgr.table_stats();
    println!(
        "{name} [{variant}] vars={n} live={} | sift {:.1} µs | swap {swap_ns:.0} ns | \
         gc {gc_ns:.0} ns | swap+gc {both_ns:.0} ns | avg_probe {:.2} resizes {} \
         rearr {} batched_repairs {}",
        mgr.live_nodes(),
        sift_ns / 1e3,
        ts.avg_probe_length(),
        ts.resizes,
        ts.rearrangements,
        ts.batched_repairs,
    );
    // The per-phase breakdown, in the same report format as `--profile`.
    println!(
        "-- whole-sift phase --\n{}",
        obs::format_profile(&sift_phase)
    );
    println!("-- swap+gc phase --\n{}", obs::format_profile(&pair_phase));
}

//! Scratch measurement: decompose robdd sift cost on one benchmark into
//! swap work vs. per-swap GC work (root-causing the misex1 open-table
//! sift regression). Usage:
//!   cargo run --release -p bbdd-bench --bin sift_anatomy [bench-name]
//!   cargo run --release -p bbdd-bench --bin sift_anatomy --features chained_tables ...

use ddcore::api::FunctionManager;
use logicnet::build::build_network;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "misex1".into());
    let variant = if cfg!(feature = "chained_tables") {
        "chained"
    } else {
        "open"
    };
    let net = benchgen::mcnc::generate(&name).expect("known benchmark");
    let n = net.num_inputs();

    // Reference sift time.
    let mut best_sift = f64::MAX;
    for _ in 0..7 {
        let mgr = robdd::RobddManager::with_vars(n);
        let _roots = build_network(&mgr, &net); // handles: registry roots
        let t = Instant::now();
        mgr.reorder();
        best_sift = best_sift.min(t.elapsed().as_secs_f64());
    }

    // Swap-only walk (no GC besides what swap itself does): sweep every
    // variable down and back up once, repeated. The raw manager is driven
    // directly through the backend escape hatch; the output handles stay
    // registered roots throughout.
    let mgr = robdd::RobddManager::with_vars(n);
    let _roots = build_network(&mgr, &net);
    let mut mgr = mgr.backend_mut();
    mgr.gc();
    let reps = 200;
    let t = Instant::now();
    let mut swaps = 0u64;
    for _ in 0..reps {
        for p in 0..n - 1 {
            mgr.swap_adjacent(p);
            swaps += 1;
        }
        for p in (0..n - 1).rev() {
            mgr.swap_adjacent(p);
            swaps += 1;
        }
    }
    let swap_ns = t.elapsed().as_secs_f64() * 1e9 / swaps as f64;

    // GC-only: same diagram, repeated collections (nothing dies after the
    // first), measuring the fixed sweep cost.
    mgr.gc();
    let t = Instant::now();
    let gcs = 4000u64;
    for _ in 0..gcs {
        mgr.gc();
    }
    let gc_ns = t.elapsed().as_secs_f64() * 1e9 / gcs as f64;

    // Swap + per-swap GC (the sift inner loop shape).
    let t = Instant::now();
    let mut both = 0u64;
    for _ in 0..reps {
        for p in 0..n - 1 {
            mgr.swap_adjacent(p);
            mgr.gc();
            both += 1;
        }
        for p in (0..n - 1).rev() {
            mgr.swap_adjacent(p);
            mgr.gc();
            both += 1;
        }
    }
    let both_ns = t.elapsed().as_secs_f64() * 1e9 / both as f64;

    let ts = mgr.table_stats();
    println!(
        "{name} [{variant}] vars={n} live={} | sift {:.1} µs | swap {swap_ns:.0} ns | \
         gc {gc_ns:.0} ns | swap+gc {both_ns:.0} ns | avg_probe {:.2} resizes {} \
         rearr {} batched_repairs {}",
        mgr.live_nodes(),
        best_sift * 1e6,
        ts.avg_probe_length(),
        ts.resizes,
        ts.rearrangements,
        ts.batched_repairs,
    );
}

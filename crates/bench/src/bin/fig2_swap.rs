//! Validate and measure the Fig. 2 CVO swap theory. Usage:
//!   cargo run --release -p bbdd-bench --bin fig2_swap [--exhaustive]
use bbdd_bench::fig2;

fn main() {
    let exhaustive = std::env::args().any(|a| a == "--exhaustive");
    if exhaustive {
        println!("Exhaustive 4-variable window check (all 65536 functions)…");
        let c = fig2::exhaustive_window_check();
        println!(
            "ok: {} functions, {} swaps, all functions preserved",
            c.functions, c.swaps
        );
    }
    println!("\nSwap throughput (two full sweeps of one variable):");
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>12}",
        "vars", "live", "swaps", "secs", "swaps/s"
    );
    for n in [8usize, 12, 16, 20, 24] {
        let t = fig2::swap_throughput(n, 0xF16 + n as u64);
        println!(
            "{:>6} {:>10} {:>8} {:>10.4} {:>12.0}",
            t.vars,
            t.live_nodes,
            t.swaps,
            t.seconds,
            t.swaps as f64 / t.seconds
        );
    }
}

//! Regenerate the paper's Table II. Usage:
//!   cargo run --release -p bbdd-bench --bin table2
use bbdd_bench::table2;

fn main() {
    println!("Table II: BBDD-based datapath synthesis vs direct synthesis");
    println!("(operator-expanded netlists; same tree-local back-end for both flows)\n");
    let rows = table2::run_all();
    print!("{}", table2::render(&rows));
}

//! Machine-readable performance baseline for the storage layer.
//!
//! Runs the Table-I quick subset (build + sift for both packages), the
//! Fig.-2 swap-throughput harness and two apply-throughput workloads (one
//! cache-resident, one far past it), then writes `BENCH_ops.json` so later
//! PRs have a perf trajectory to compare against.
//!
//! Usage: `cargo run --release -p bbdd-bench --bin baseline [-- out.json]`
//! (add `--features chained_tables` for the seed-table ablation variant).

use bbdd::{Bbdd, BbddManager, BoolOp, Edge};
use bbdd_bench::{fig2, table1, timed};
use benchgen::mcnc;
use ddcore::api::{BooleanFunction, FunctionManager};
use std::fmt::Write as _;
use std::time::Instant;

/// Repeat `f`, keeping the minimum wall-clock seconds.
fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let (_, s) = timed(&mut f);
        best = best.min(s);
    }
    best
}

/// One deterministic random-op stream over pre-built literals, generic in
/// the manager: the sequential and parallel workloads feed the *same*
/// stream through `apply`, so their JSON rows compare identical work.
fn random_function(
    apply: &mut impl FnMut(BoolOp, Edge, Edge) -> Edge,
    vs: &[Edge],
    seed: u64,
    ops: usize,
) -> Edge {
    let table = [
        BoolOp::XOR,
        BoolOp::AND,
        BoolOp::OR,
        BoolOp::XNOR,
        BoolOp::NAND,
    ];
    let n = vs.len();
    let mut state = seed | 1;
    let mut f = vs[0];
    for _ in 0..ops {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let op = table[(state >> 33) as usize % table.len()];
        let v = vs[(state >> 18) as usize % n];
        f = apply(op, f, v);
    }
    f
}

/// Requests/sec through the MVCC serving layer: `sessions` sessions forked
/// off one published snapshot, request `i` on session `i mod sessions`
/// (the serve front door's batch layout), over a fixed eval / sat_count /
/// apply request mix against the misex1 library.
fn serve_throughput(sessions: usize, requests: usize) -> f64 {
    use ddcore::govern::OpBudget;
    let net = mcnc::generate("misex1").expect("known benchmark");
    let base = logicnet::publish::publish_networks::<Bbdd>(&[&net]).expect("publish");
    let names: Vec<String> = base.library().names().to_vec();
    let inputs = base.library().inputs().len();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..sessions {
            let base = &base;
            let names = &names;
            scope.spawn(move || {
                let mut s = base.session();
                let mut budget = OpBudget::unlimited();
                let mut i = w;
                while i < requests {
                    let f = names[i % names.len()].as_str();
                    let g = names[(i / 3 + 1) % names.len()].as_str();
                    match i % 3 {
                        0 => {
                            let v: Vec<bool> =
                                (0..inputs).map(|x| (i >> (x % 8)) & 1 == 1).collect();
                            std::hint::black_box(s.eval(f, &v).expect("published"));
                        }
                        1 => {
                            std::hint::black_box(s.sat_count(f, &mut budget).expect("count"));
                        }
                        _ => {
                            std::hint::black_box(
                                s.apply(BoolOp::AND, f, g, None, &mut budget)
                                    .expect("apply"),
                            );
                        }
                    }
                    i += sessions;
                }
            });
        }
    });
    requests as f64 / t0.elapsed().as_secs_f64()
}

/// Sustained pairwise-AND throughput over 24 random 20-variable functions.
fn apply_throughput_ns() -> f64 {
    let n = 20;
    let t0 = Instant::now();
    let mut total = 0u64;
    while t0.elapsed().as_secs_f64() < 2.0 {
        let mut mgr = Bbdd::new(n);
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let fs: Vec<Edge> = (0..24)
            .map(|k| {
                random_function(
                    &mut |o, x, y| mgr.apply(o, x, y),
                    &vs,
                    0x1111 * (k + 1) as u64,
                    4 * n,
                )
            })
            .collect();
        for i in 0..fs.len() {
            for j in (i + 1)..fs.len() {
                std::hint::black_box(mgr.and(fs[i], fs[j]));
                total += 1;
            }
        }
    }
    t0.elapsed().as_secs_f64() * 1e9 / total as f64
}

/// XOR-accumulation over 26 variables: ~650k live nodes, tables far past
/// the cache hierarchy.
fn big_apply_ms() -> (f64, usize) {
    let n = 26;
    let mut best = f64::MAX;
    let mut live = 0;
    for round in 0..2u64 {
        let t = Instant::now();
        let mut mgr = Bbdd::new(n);
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let mut acc = random_function(
            &mut |o, x, y| mgr.apply(o, x, y),
            &vs,
            0xF00D + round,
            12 * n,
        );
        for k in 0..12u64 {
            let g = random_function(
                &mut |o, x, y| mgr.apply(o, x, y),
                &vs,
                0xBEEF * (k + 1) + round,
                12 * n,
            );
            acc = mgr.xor(acc, g);
        }
        std::hint::black_box(acc);
        live = mgr.live_nodes();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best * 1e3, live)
}

/// The [`big_apply_ms`] workload on the parallel manager pipeline.
fn big_apply_par_ms(threads: usize) -> (f64, usize) {
    use bbdd::{ParBbdd, ParConfig};
    let n = 26;
    let mut best = f64::MAX;
    let mut live = 0;
    for round in 0..2u64 {
        let t = Instant::now();
        let mut mgr = ParBbdd::with_config(
            n,
            ParConfig {
                threads,
                ..ParConfig::default()
            },
        );
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let mut acc = random_function(
            &mut |o, x, y| mgr.apply(o, x, y),
            &vs,
            0xF00D + round,
            12 * n,
        );
        for k in 0..12u64 {
            let g = random_function(
                &mut |o, x, y| mgr.apply(o, x, y),
                &vs,
                0xBEEF * (k + 1) + round,
                12 * n,
            );
            acc = mgr.xor(acc, g);
        }
        std::hint::black_box(&mut acc);
        live = mgr.live_nodes();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best * 1e3, live)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ops.json".to_string());
    let variant = if cfg!(feature = "chained_tables") {
        "chained_tables"
    } else {
        "open_tables"
    };

    // Host/build provenance, so a baseline JSON is interpretable on its
    // own: thread count, table variant, toolchain and source revision.
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let run_cmd = |cmd: &str, args: &[&str]| -> String {
        std::process::Command::new(cmd)
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    };
    let git_rev = run_cmd("git", &["rev-parse", "--short", "HEAD"]);
    let rustc_version = run_cmd("rustc", &["--version"]);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"host_threads\": {host_threads}, \"table_variant\": \"{variant}\", \
         \"git_rev\": \"{git_rev}\", \"rustc\": \"{rustc_version}\"}},"
    );
    let _ = writeln!(json, "  \"variant\": \"{variant}\",");

    // Quick Table-I subset: build + sift, both packages.
    let quick = ["my_adder", "comp", "misex1", "9symml", "parity", "cordic"];
    let _ = writeln!(json, "  \"table1_quick\": [");
    for (idx, name) in quick.iter().enumerate() {
        let net = mcnc::generate(name).expect("known benchmark");
        let build_bbdd = min_time(5, || {
            let mgr = BbddManager::with_vars(net.num_inputs());
            std::hint::black_box(logicnet::build::build_network(&mgr, &net));
        });
        let build_robdd = min_time(5, || {
            let mgr = robdd::RobddManager::with_vars(net.num_inputs());
            std::hint::black_box(logicnet::build::build_network(&mgr, &net));
        });
        let sift_bbdd = min_time(5, || {
            let mgr = BbddManager::with_vars(net.num_inputs());
            let _roots = logicnet::build::build_network(&mgr, &net);
            mgr.reorder(); // output handles are the registry's roots
        });
        let sift_robdd = min_time(5, || {
            let mgr = robdd::RobddManager::with_vars(net.num_inputs());
            let _roots = logicnet::build::build_network(&mgr, &net);
            mgr.reorder();
        });
        let comma = if idx + 1 < quick.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"bbdd_build_us\": {:.2}, \"robdd_build_us\": {:.2}, \
             \"bbdd_build_sift_us\": {:.2}, \"robdd_build_sift_us\": {:.2}}}{comma}",
            build_bbdd * 1e6,
            build_robdd * 1e6,
            sift_bbdd * 1e6,
            sift_robdd * 1e6,
        );
        eprintln!("table1 {name}: done");
    }
    let _ = writeln!(json, "  ],");

    // One full Table-I row through the serialization pipeline, for node
    // counts (sizes are deterministic; timing is covered above).
    let row = table1::run_row(&mcnc::TABLE1[0]);
    let _ = writeln!(
        json,
        "  \"table1_row_{}\": {{\"bbdd_nodes\": {}, \"bdd_nodes\": {}, \"ratio\": {:.4}}},",
        row.name,
        row.bbdd_nodes,
        row.bdd_nodes,
        row.node_ratio()
    );

    // Fig. 2 swap throughput.
    let sw = fig2::swap_throughput(16, 0xDA7E);
    let _ = writeln!(
        json,
        "  \"fig2_swap\": {{\"vars\": {}, \"live_nodes\": {}, \"swaps_per_s\": {:.0}}},",
        sw.vars,
        sw.live_nodes,
        sw.swaps as f64 / sw.seconds
    );

    // Verification ops layer: cube quantification over half the inputs of
    // `comp` (all outputs), satcount over the 16-bit CLA adder, and the
    // full CEC of the 12-bit ripple-vs-lookahead adder pair — each on both
    // managers, matching the `verification_ops` criterion bench.
    {
        let comp = mcnc::generate("comp").expect("known benchmark");
        let cube: Vec<usize> = (0..comp.num_inputs()).filter(|v| v % 2 == 0).collect();
        let exists_bbdd = min_time(5, || {
            let mgr = BbddManager::with_vars(comp.num_inputs());
            let roots = logicnet::build::build_network(&mgr, &comp);
            for r in &roots {
                std::hint::black_box(r.exists(&cube));
            }
        });
        let exists_robdd = min_time(5, || {
            let mgr = robdd::RobddManager::with_vars(comp.num_inputs());
            let roots = logicnet::build::build_network(&mgr, &comp);
            for r in &roots {
                std::hint::black_box(r.exists(&cube));
            }
        });
        let cla = benchgen::datapath::adder_cla(16);
        let satcount_bbdd = min_time(5, || {
            let mgr = BbddManager::with_vars(cla.num_inputs());
            let roots = logicnet::build::build_network(&mgr, &cla);
            let mut acc = 0u128;
            for r in &roots {
                acc = acc.wrapping_add(r.sat_count());
            }
            std::hint::black_box(acc);
        });
        let ripple = benchgen::datapath::adder(12);
        let cla12 = benchgen::datapath::adder_cla(12);
        let cec_bbdd = min_time(5, || {
            std::hint::black_box(logicnet::cec::check_equivalence_bbdd(&ripple, &cla12));
        });
        let cec_robdd = min_time(5, || {
            std::hint::black_box(logicnet::cec::check_equivalence_robdd(&ripple, &cla12));
        });
        let _ = writeln!(
            json,
            "  \"verification\": {{\"exists_comp_bbdd_us\": {:.2}, \"exists_comp_robdd_us\": {:.2}, \
             \"satcount_cla16_build_bbdd_us\": {:.2}, \"cec_adder12_bbdd_us\": {:.2}, \
             \"cec_adder12_robdd_us\": {:.2}}},",
            exists_bbdd * 1e6,
            exists_robdd * 1e6,
            satcount_bbdd * 1e6,
            cec_bbdd * 1e6,
            cec_robdd * 1e6,
        );
        eprintln!("verification ops: done");
    }

    // Dynamic variable ordering: per-strategy build+sift rows on the
    // misex1 stand-in (both packages), and the pair-aware vs plain sift
    // node-count comparison on the XOR-heavy C499 stand-in — the workload
    // class where BBDD chain pairs should move as units.
    {
        use ddcore::dvo::DvoStrategy;
        let strategies = [
            ("full", DvoStrategy::Full),
            ("window1", DvoStrategy::Window(1)),
            ("window2", DvoStrategy::Window(2)),
            ("pair", DvoStrategy::Pair),
        ];
        let net = mcnc::generate("misex1").expect("known benchmark");
        let _ = writeln!(json, "  \"dvo\": {{");
        let _ = writeln!(json, "    \"build_and_sift_misex1\": [");
        for (idx, (name, strategy)) in strategies.iter().enumerate() {
            let mut bbdd_nodes = 0;
            let bbdd_us = min_time(5, || {
                let mgr = BbddManager::with_vars(net.num_inputs());
                let _roots = logicnet::build::build_network(&mgr, &net);
                bbdd_nodes = mgr.reorder_with(*strategy).expect("strategy dispatch");
            }) * 1e6;
            let mut robdd_nodes = 0;
            let robdd_us = min_time(5, || {
                let mgr = robdd::RobddManager::with_vars(net.num_inputs());
                let _roots = logicnet::build::build_network(&mgr, &net);
                robdd_nodes = mgr.reorder_with(*strategy).expect("strategy dispatch");
            }) * 1e6;
            let comma = if idx + 1 < strategies.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"strategy\": \"{name}\", \"bbdd_build_sift_us\": {bbdd_us:.2}, \
                 \"bbdd_nodes\": {bbdd_nodes}, \"robdd_build_sift_us\": {robdd_us:.2}, \
                 \"robdd_nodes\": {robdd_nodes}}}{comma}",
            );
        }
        let _ = writeln!(json, "    ],");
        let xor_net = mcnc::generate("C499").expect("known benchmark");
        let built = {
            let mgr = BbddManager::with_vars(xor_net.num_inputs());
            let _roots = logicnet::build::build_network(&mgr, &xor_net);
            mgr.gc();
            mgr.live_nodes()
        };
        let mut plain_nodes = 0;
        let plain_us = min_time(3, || {
            let mgr = BbddManager::with_vars(xor_net.num_inputs());
            let _roots = logicnet::build::build_network(&mgr, &xor_net);
            plain_nodes = mgr.reorder_with(DvoStrategy::Full).expect("full sift");
        }) * 1e6;
        let mut pair_nodes = 0;
        let pair_us = min_time(3, || {
            let mgr = BbddManager::with_vars(xor_net.num_inputs());
            let _roots = logicnet::build::build_network(&mgr, &xor_net);
            pair_nodes = mgr.reorder_with(DvoStrategy::Pair).expect("pair sift");
        }) * 1e6;
        let _ = writeln!(
            json,
            "    \"pair_vs_plain_bbdd_C499\": {{\"built_nodes\": {built}, \
             \"plain_sift_nodes\": {plain_nodes}, \"plain_sift_us\": {plain_us:.2}, \
             \"pair_sift_nodes\": {pair_nodes}, \"pair_sift_us\": {pair_us:.2}, \
             \"pair_minus_plain_nodes\": {}}}",
            pair_nodes as i64 - plain_nodes as i64,
        );
        let _ = writeln!(json, "  }},");
        eprintln!("dvo section: done");
    }

    // Apply throughput, small and large scale.
    let ns = apply_throughput_ns();
    let _ = writeln!(json, "  \"apply_and_n20_ns\": {ns:.1},");
    eprintln!("apply throughput: done");
    let (ms, live) = big_apply_ms();
    let _ = writeln!(
        json,
        "  \"big_apply_n26\": {{\"ms\": {ms:.1}, \"live_nodes\": {live}}},"
    );

    // Parallel execution subsystem: the same 650k-node apply workload on
    // the ParBbdd pipeline at 1/2/4 threads, and the multi-output CEC fan
    // out. `host_threads` records how many hardware threads this machine
    // actually has — speedups are only physically possible when it
    // exceeds 1.
    {
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut par_ms = [0f64; 3];
        let mut par_live = 0usize;
        for (slot, threads) in [1usize, 2, 4].into_iter().enumerate() {
            let (ms, lv) = big_apply_par_ms(threads);
            par_ms[slot] = ms;
            par_live = lv;
            eprintln!("parallel big apply t{threads}: done");
        }
        let ripple = benchgen::datapath::adder(24);
        let cla = benchgen::datapath::adder_cla(24);
        let mut cec_ms = [0f64; 3];
        for (slot, threads) in [1usize, 2, 4].into_iter().enumerate() {
            cec_ms[slot] = min_time(3, || {
                std::hint::black_box(logicnet::cec::check_equivalence_parallel_bbdd(
                    &ripple, &cla, threads,
                ));
            }) * 1e3;
        }
        let _ = writeln!(
            json,
            "  \"parallel\": {{\"host_threads\": {host}, \
             \"big_apply_par_n26\": {{\"t1_ms\": {:.1}, \"t2_ms\": {:.1}, \"t4_ms\": {:.1}, \
             \"live_nodes\": {par_live}, \"speedup_t4_vs_t1\": {:.3}}}, \
             \"cec_adder24_multi_output\": {{\"t1_ms\": {:.2}, \"t2_ms\": {:.2}, \"t4_ms\": {:.2}, \
             \"speedup_t4_vs_t1\": {:.3}}}}},",
            par_ms[0],
            par_ms[1],
            par_ms[2],
            par_ms[0] / par_ms[2],
            cec_ms[0],
            cec_ms[1],
            cec_ms[2],
            cec_ms[0] / cec_ms[2],
        );
        eprintln!("parallel section: done");
    }

    // The CNF front door: exact model counting through the clause-
    // scheduled build. parity-16 is the XOR-heavy headline case (the
    // biconditional expansion vs the ROBDD baseline), random 3-CNF the
    // generic load; the sliced rows decompose the same random instance
    // into 2^2 cofactor sub-problems (sequential vs the fork-join pool at
    // 4 workers — interpret against meta.host_threads) and the recombined
    // counts are asserted bit-equal to the whole-formula count.
    {
        use cnf::Schedule;
        use ddcore::govern::OpBudget;
        let whole_ms = |inst: &cnf::Cnf, robdd_pkg: bool| -> (f64, u128, u64) {
            let mut best = (f64::MAX, 0u128, 0u64);
            for _ in 0..3 {
                let mut budget = OpBudget::unlimited();
                let t0 = Instant::now();
                let (count, stats) = if robdd_pkg {
                    let mgr = robdd::RobddManager::with_vars(inst.num_vars);
                    cnf::count_cnf(&mgr, inst, &Schedule::Bucket, &mut budget).expect("count")
                } else {
                    let mgr = BbddManager::with_vars(inst.num_vars);
                    cnf::count_cnf(&mgr, inst, &Schedule::Bucket, &mut budget).expect("count")
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if ms < best.0 {
                    best = (ms, count, stats.conj_peak_nodes);
                }
            }
            best
        };
        let parity = benchgen::cnf::parity_chain(16);
        let (pb_ms, pb_count, pb_peak) = whole_ms(&parity, false);
        let (pr_ms, pr_count, pr_peak) = whole_ms(&parity, true);
        assert_eq!(pb_count, pr_count, "packages disagree on parity-16");
        assert_eq!(pb_count, 1u128 << 15);
        let rand3 = benchgen::cnf::random3(26, 110, 7);
        let (rb_ms, rb_count, rb_peak) = whole_ms(&rand3, false);
        let sliced_ms = |threads: Option<usize>| -> (f64, u128) {
            let mut best = (f64::MAX, 0u128);
            for _ in 0..3 {
                let t0 = Instant::now();
                let make = || BbddManager::with_vars(rand3.num_vars);
                let sliced = match threads {
                    Some(t) => cnf::count_sliced_par(
                        t,
                        make,
                        OpBudget::unlimited,
                        &rand3,
                        &Schedule::Bucket,
                        2,
                    ),
                    None => {
                        cnf::count_sliced(make, OpBudget::unlimited, &rand3, &Schedule::Bucket, 2)
                    }
                };
                assert!(!sliced.partial);
                assert_eq!(sliced.total, rb_count, "slices disagree with the whole");
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if ms < best.0 {
                    best = (ms, sliced.total);
                }
            }
            best
        };
        let (slice_seq_ms, _) = sliced_ms(None);
        let (slice_par_ms, _) = sliced_ms(Some(4));
        // host_threads: the sliced_k2_par4 row can only beat the
        // sequential row when the host has more than one hardware thread.
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let _ = writeln!(
            json,
            "  \"cnf\": {{\"schedule\": \"bucket\", \"host_threads\": {host}, \
             \"parity16\": {{\"vars\": {}, \"clauses\": {}, \"count\": \"{pb_count}\", \
             \"bbdd_ms\": {pb_ms:.2}, \"bbdd_peak_nodes\": {pb_peak}, \
             \"robdd_ms\": {pr_ms:.2}, \"robdd_peak_nodes\": {pr_peak}}}, \
             \"random3_n26\": {{\"vars\": {}, \"clauses\": {}, \"count\": \"{rb_count}\", \
             \"bbdd_ms\": {rb_ms:.2}, \"bbdd_peak_nodes\": {rb_peak}, \
             \"sliced_k2_seq_ms\": {slice_seq_ms:.2}, \
             \"sliced_k2_par4_ms\": {slice_par_ms:.2}}}}},",
            parity.num_vars,
            parity.num_clauses(),
            rand3.num_vars,
            rand3.num_clauses(),
        );
        eprintln!("cnf section: done");
    }

    // The serving layer: batch requests/sec with 1 session vs 4 concurrent
    // sessions (interpret against meta.host_threads — parallel speedups
    // are only physically possible when it exceeds 1).
    {
        const REQS: usize = 3000;
        let mut rps = [0f64; 2];
        for (slot, sessions) in [1usize, 4].into_iter().enumerate() {
            for _ in 0..3 {
                rps[slot] = rps[slot].max(serve_throughput(sessions, REQS));
            }
            eprintln!("serve throughput s{sessions}: done");
        }
        let _ = writeln!(
            json,
            "  \"serve_throughput\": {{\"requests\": {REQS}, \"library\": \"misex1\", \
             \"rps_1_session\": {:.0}, \"rps_4_sessions\": {:.0}, \
             \"speedup_4_vs_1\": {:.3}}}",
            rps[0],
            rps[1],
            rps[1] / rps[0],
        );
    }
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

//! Experiment E1: Table I — "Experimental Results for the BBDD
//! Manipulation Package".
//!
//! For every MCNC stand-in, both packages build the decision diagram with
//! the initial order provided by the (round-tripped) input file and then
//! sift it, reporting shared node counts and wall-clock seconds. The paper
//! reports: average node-count reduction 19.48% and overall speed-up 1.63×
//! in favour of the BBDD package.

use bbdd::BbddManager;
use benchgen::mcnc::{self, McncBench, TABLE1};
use ddcore::api::FunctionManager;
use logicnet::build::build_network;
use logicnet::{blif, verilog, Network};
use robdd::RobddManager;

use crate::timed;

/// Measurements of one Table-I row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// BBDD shared node count after build + sift.
    pub bbdd_nodes: usize,
    /// BBDD build seconds.
    pub bbdd_build_s: f64,
    /// BBDD sift seconds.
    pub bbdd_sift_s: f64,
    /// ROBDD shared node count after build + sift.
    pub bdd_nodes: usize,
    /// ROBDD build seconds.
    pub bdd_build_s: f64,
    /// ROBDD sift seconds.
    pub bdd_sift_s: f64,
}

impl Row {
    /// BBDD node count relative to the BDD count (paper average ≈ 0.805).
    #[must_use]
    pub fn node_ratio(&self) -> f64 {
        self.bbdd_nodes as f64 / self.bdd_nodes as f64
    }
}

/// Run one Table-I row through the paper's full pipeline.
///
/// # Panics
/// Panics if `name` is not one of the Table-I benchmarks.
#[must_use]
pub fn run_row(bench: &McncBench) -> Row {
    let net = mcnc::generate(bench.name).expect("known benchmark");

    // The BBDD package consumes flattened Verilog (§IV-B)…
    let vsrc = verilog::write_verilog(&net);
    let net_for_bbdd: Network = verilog::parse_verilog(&vsrc).expect("round-trip Verilog");
    // …while CUDD consumes BLIF.
    let bsrc = blif::write_blif(&net);
    let net_for_bdd: Network = blif::parse_blif(&bsrc).expect("round-trip BLIF");

    let (bbdd_nodes_after, (bbdd_build_s, bbdd_sift_s)) = build_and_sift(
        &BbddManager::with_vars(net_for_bbdd.num_inputs()),
        &net_for_bbdd,
    );
    let (bdd_nodes_after, (bdd_build_s, bdd_sift_s)) = build_and_sift(
        &RobddManager::with_vars(net_for_bdd.num_inputs()),
        &net_for_bdd,
    );

    Row {
        name: bench.name.to_string(),
        inputs: bench.inputs,
        outputs: bench.outputs,
        bbdd_nodes: bbdd_nodes_after,
        bbdd_build_s,
        bbdd_sift_s,
        bdd_nodes: bdd_nodes_after,
        bdd_build_s,
        bdd_sift_s,
    }
}

/// The paper's per-package pipeline — build with the file order, then
/// sift — written once against the trait API and instantiated for both
/// packages by [`run_row`]. Returns the shared node count plus (build,
/// sift) seconds.
fn build_and_sift<M: FunctionManager>(mgr: &M, net: &Network) -> (usize, (f64, f64)) {
    let (roots, build_s) = timed(|| build_network(mgr, net));
    let (_, sift_s) = timed(|| mgr.reorder());
    (mgr.shared_node_count(&roots), (build_s, sift_s))
}

/// Run the whole table (17 rows, paper order).
#[must_use]
pub fn run_all() -> Vec<Row> {
    TABLE1.iter().map(run_row).collect()
}

/// Aggregate statistics in the form the paper quotes.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean BBDD node count.
    pub avg_bbdd_nodes: f64,
    /// Mean BDD node count.
    pub avg_bdd_nodes: f64,
    /// Average node-count reduction, percent (paper: 19.48%).
    pub node_reduction_pct: f64,
    /// Total (build + sift) time ratio BDD/BBDD (paper: 1.63×).
    pub speedup: f64,
}

/// Summarize a set of rows.
#[must_use]
pub fn summarize(rows: &[Row]) -> Summary {
    let n = rows.len() as f64;
    let avg_bbdd_nodes = rows.iter().map(|r| r.bbdd_nodes as f64).sum::<f64>() / n;
    let avg_bdd_nodes = rows.iter().map(|r| r.bdd_nodes as f64).sum::<f64>() / n;
    // The paper's 19.48% averages the per-benchmark reductions.
    let node_reduction_pct = rows
        .iter()
        .map(|r| 100.0 * (1.0 - r.node_ratio()))
        .sum::<f64>()
        / n;
    let bbdd_time: f64 = rows.iter().map(|r| r.bbdd_build_s + r.bbdd_sift_s).sum();
    let bdd_time: f64 = rows.iter().map(|r| r.bdd_build_s + r.bdd_sift_s).sum();
    Summary {
        avg_bbdd_nodes,
        avg_bdd_nodes,
        node_reduction_pct,
        speedup: bdd_time / bbdd_time,
    }
}

/// Render rows in the layout of the paper's Table I.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>4} {:>4} | {:>10} {:>9} {:>9} | {:>10} {:>9} {:>9}",
        "Benchmark",
        "PI",
        "PO",
        "BBDD nodes",
        "build(s)",
        "sift(s)",
        "BDD nodes",
        "build(s)",
        "sift(s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>4} | {:>10} {:>9.3} {:>9.3} | {:>10} {:>9.3} {:>9.3}",
            r.name,
            r.inputs,
            r.outputs,
            r.bbdd_nodes,
            r.bbdd_build_s,
            r.bbdd_sift_s,
            r.bdd_nodes,
            r.bdd_build_s,
            r.bdd_sift_s
        );
    }
    let s = summarize(rows);
    let _ = writeln!(out, "{}", "-".repeat(96));
    let _ = writeln!(
        out,
        "Average nodes: BBDD {:.0} vs BDD {:.0}  | node reduction {:.2}% (paper: 19.48%)",
        s.avg_bbdd_nodes, s.avg_bdd_nodes, s.node_reduction_pct
    );
    let _ = writeln!(
        out,
        "Total-time speed-up (BDD time / BBDD time): {:.2}x (paper: 1.63x)",
        s.speedup
    );
    out
}

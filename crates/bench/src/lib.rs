//! # bbdd-bench — the experiment harness of the reproduction
//!
//! One module per paper artefact, shared by the runnable binaries and the
//! integration tests:
//!
//! * [`table1`] — the Table-I comparison (BBDD package vs ROBDD package
//!   over the 17 MCNC stand-ins; node counts and build/sift wall-clock
//!   times), including the paper's full I/O pipeline: each network is
//!   serialized to flattened Verilog for the BBDD package and to BLIF for
//!   the BDD package, then re-parsed (§IV-B).
//! * [`table2`] — the Table-II datapath synthesis comparison (BBDD
//!   rewriting + back-end vs the same back-end alone, §V-B).
//! * [`fig2`] — swap-correctness and swap-throughput measurements backing
//!   the Fig. 2 swap theory.
//!
//! Binaries: `table1`, `table2`, `fig2_swap` (plus `explore`, a scratch
//! measurement tool). Criterion benches live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig2;
pub mod table1;
pub mod table2;

/// Wall-clock seconds of `f`, returned with its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

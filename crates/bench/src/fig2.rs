//! Experiment E4: Fig. 2 — the three-level CVO swap theory.
//!
//! Two measurements back the figure: an exhaustive correctness check of
//! the children remap (every function shape of a three-level window is
//! preserved by a swap) and swap throughput on realistic diagrams, which
//! is what makes `O(n²)`-swap sifting affordable (§IV-A4).

use bbdd::{Bbdd, BoolOp, Edge};

/// Build a pseudo-random function over `n` variables (deterministic).
#[must_use]
pub fn random_function(mgr: &mut Bbdd, n: usize, seed: u64) -> Edge {
    let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
    let ops = [
        BoolOp::XOR,
        BoolOp::AND,
        BoolOp::OR,
        BoolOp::XNOR,
        BoolOp::NAND,
        BoolOp::NOR,
    ];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut f = vs[(seed % n as u64) as usize];
    for _ in 0..3 * n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let op = ops[(state >> 33) as usize % ops.len()];
        let v = vs[(state >> 18) as usize % n];
        f = mgr.apply(op, f, v);
    }
    f
}

/// Outcome of the exhaustive window check.
#[derive(Debug, Clone, Copy)]
pub struct WindowCheck {
    /// Functions exercised.
    pub functions: usize,
    /// Adjacent swaps performed.
    pub swaps: usize,
}

/// Exhaustively verify the remap on every 4-variable function window:
/// all 2^16 truth tables over (w, x, y, z), each swapped at every
/// position and compared against its truth table.
///
/// # Panics
/// Panics if any swap changes any function (the Fig. 2 remap would be
/// wrong).
#[must_use]
pub fn exhaustive_window_check() -> WindowCheck {
    let n = 4;
    let mut swaps = 0;
    for tt in 0..(1u32 << 16) {
        let mut mgr = Bbdd::new(n);
        // Build the function with the given truth table via minterms.
        let mut f = mgr.zero();
        for m in 0..16u32 {
            if (tt >> m) & 1 == 1 {
                let mut term = mgr.one();
                for v in 0..n {
                    let lit = if (m >> v) & 1 == 1 {
                        mgr.var(v)
                    } else {
                        mgr.nvar(v)
                    };
                    term = mgr.and(term, lit);
                }
                f = mgr.or(f, term);
            }
        }
        for pos in 0..n - 1 {
            mgr.swap_adjacent(pos);
            swaps += 1;
        }
        // Verify against the original truth table (the variable order
        // changed, but the evaluation API is order-independent).
        for m in 0..16u32 {
            let assignment: Vec<bool> = (0..n).map(|v| (m >> v) & 1 == 1).collect();
            assert_eq!(
                mgr.eval(f, &assignment),
                (tt >> m) & 1 == 1,
                "truth table {tt:#06x} corrupted at minterm {m}"
            );
        }
    }
    WindowCheck {
        functions: 1 << 16,
        swaps,
    }
}

/// Swap-throughput measurement: swaps/second on a diagram of the given
/// size class.
#[derive(Debug, Clone, Copy)]
pub struct SwapThroughput {
    /// Variables in the manager.
    pub vars: usize,
    /// Live nodes when the measurement ran.
    pub live_nodes: usize,
    /// Swaps performed.
    pub swaps: usize,
    /// Seconds elapsed.
    pub seconds: f64,
}

/// Sweep a variable across all positions and back, timing the swaps.
#[must_use]
pub fn swap_throughput(n: usize, seed: u64) -> SwapThroughput {
    let mut mgr = Bbdd::new(n);
    let f = random_function(&mut mgr, n, seed);
    let g = random_function(&mut mgr, n, seed ^ 0xABCD);
    let _pins = [mgr.pin(f), mgr.pin(g)];
    mgr.gc();
    let live = mgr.live_nodes();
    let t0 = std::time::Instant::now();
    let mut swaps = 0;
    // Collect after each swap, as sifting does — otherwise dead nodes are
    // rebuilt over and over and the measurement drifts away from the
    // sifting workload this backs.
    for _ in 0..2 {
        for pos in 0..n - 1 {
            mgr.swap_adjacent(pos);
            mgr.gc();
            swaps += 1;
        }
        for pos in (0..n - 1).rev() {
            mgr.swap_adjacent(pos);
            mgr.gc();
            swaps += 1;
        }
    }
    SwapThroughput {
        vars: n,
        live_nodes: live,
        swaps,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

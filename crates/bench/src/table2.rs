//! Experiment E2: Table II — "Experimental Results for the BBDD-based
//! Datapath Synthesis".
//!
//! Each datapath's operator-expanded netlist (the implementation a
//! commercial generator instantiates) is synthesized twice through the
//! same tree-local structural back-end: once directly and once after BBDD
//! re-writing (build with file order, sift, dump as shared-comparator /
//! mux netlist). The paper reports the BBDD front-end giving on average
//! 11.02% smaller and 32.29% faster datapaths.

use benchgen::datapath::Datapath;
use synthkit::cells::CellLibrary;
use synthkit::flow::{synthesize_bbdd_first_with, synthesize_direct_with};
use synthkit::mapper::MapStyle;

/// Measurements of one Table-II row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. `Adder 32`).
    pub label: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// BBDD flow: area (µm²), delay (ns), gate count.
    pub bbdd: (f64, f64, usize),
    /// Direct flow: area (µm²), delay (ns), gate count.
    pub direct: (f64, f64, usize),
    /// BBDD node counts (built → sifted).
    pub bbdd_nodes: (usize, usize),
}

/// Run one Table-II row.
#[must_use]
pub fn run_row(dp: &Datapath) -> Row {
    let lib = CellLibrary::paper_22nm();
    let net = dp.commercial_implementation();
    let direct = synthesize_direct_with(&net, &lib, MapStyle::TreeLocal);
    let (bbdd_flow, info) = synthesize_bbdd_first_with(&net, &lib, true, MapStyle::TreeLocal);
    Row {
        label: dp.label(),
        inputs: net.num_inputs(),
        outputs: net.num_outputs(),
        bbdd: (bbdd_flow.area_um2, bbdd_flow.delay_ns, bbdd_flow.gate_count),
        direct: (direct.area_um2, direct.delay_ns, direct.gate_count),
        bbdd_nodes: (info.nodes_built, info.nodes_sifted),
    }
}

/// Run all eight rows in paper order.
#[must_use]
pub fn run_all() -> Vec<Row> {
    Datapath::table2().iter().map(run_row).collect()
}

/// Aggregates in the paper's style.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean area reduction of the BBDD flow, percent (paper: 11.02%).
    pub area_reduction_pct: f64,
    /// Mean delay reduction of the BBDD flow, percent (paper: 32.29%).
    pub delay_reduction_pct: f64,
    /// Mean gate-count reduction, percent.
    pub gate_reduction_pct: f64,
}

/// Summarize rows.
#[must_use]
pub fn summarize(rows: &[Row]) -> Summary {
    let n = rows.len() as f64;
    let area = rows
        .iter()
        .map(|r| 100.0 * (1.0 - r.bbdd.0 / r.direct.0))
        .sum::<f64>()
        / n;
    let delay = rows
        .iter()
        .map(|r| 100.0 * (1.0 - r.bbdd.1 / r.direct.1))
        .sum::<f64>()
        / n;
    let gates = rows
        .iter()
        .map(|r| 100.0 * (1.0 - r.bbdd.2 as f64 / r.direct.2 as f64))
        .sum::<f64>()
        / n;
    Summary {
        area_reduction_pct: area,
        delay_reduction_pct: delay,
        gate_reduction_pct: gates,
    }
}

/// Render rows in the layout of the paper's Table II.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<13} {:>4} {:>4} | {:>24} | {:>24} | {:>12}",
        "Benchmark", "PI", "PO", "BBDD + backend", "backend alone", "BBDD nodes"
    );
    let _ = writeln!(
        out,
        "{:<13} {:>4} {:>4} | {:>9} {:>7} {:>6} | {:>9} {:>7} {:>6} | {:>12}",
        "", "", "", "area um2", "ns", "gates", "area um2", "ns", "gates", "built->sift"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<13} {:>4} {:>4} | {:>9.2} {:>7.3} {:>6} | {:>9.2} {:>7.3} {:>6} | {:>5}->{:<6}",
            r.label,
            r.inputs,
            r.outputs,
            r.bbdd.0,
            r.bbdd.1,
            r.bbdd.2,
            r.direct.0,
            r.direct.1,
            r.direct.2,
            r.bbdd_nodes.0,
            r.bbdd_nodes.1
        );
    }
    let s = summarize(rows);
    let _ = writeln!(out, "{}", "-".repeat(100));
    let _ = writeln!(
        out,
        "BBDD flow vs backend alone: area {:.2}% smaller (paper: 11.02%), delay {:.2}% faster (paper: 32.29%), gates {:.2}% fewer",
        s.area_reduction_pct, s.delay_reduction_pct, s.gate_reduction_pct
    );
    out
}

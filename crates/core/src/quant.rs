//! The verification ops layer: cube quantification, fused and-exists,
//! simultaneous composition, the generic n-ary `apply` and model
//! enumeration.
//!
//! These are the operations that turn the structural core into a
//! verification engine (equivalence checking, image computation, model
//! counting). All recursive operations go through the manager's shared
//! computed table under the tags of [`ddcore::optag`], so repeated
//! quantifications over one function reuse each other's subresults exactly
//! like repeated `apply` calls do.
//!
//! ## Quantification over the biconditional expansion
//!
//! In a BBDD a variable `x` appears twice in the chain: as the **primary
//! variable** (PV) of its own level and as the **secondary variable** (SV)
//! of the level above. Quantifying a cube `C` therefore needs three
//! recursion cases at a node `(v, w)` of level `i` (expansion
//! `f = (v⊕w)·f_≠ + (v⊙w)·f_=`):
//!
//! 1. **`v ∈ C`** — for every fixed `w`, the two branches partition on `v`,
//!    so `∃v.f = f_≠ ∨ f_=` (and `∀v.f = f_≠ ∧ f_=`); recurse on the
//!    combined child.
//! 2. **`v ∉ C`, `w ∈ C`** — the branch condition itself mentions the
//!    quantified `w`, so the node cannot be rebuilt. Shannon-decompose on
//!    the *unquantified* `v` instead: `f|v=1 = ite(w, f_=, f_≠)` and
//!    `f|v=0 = ite(w, f_≠, f_=)`, recurse on both, and recombine with
//!    `ite(v, ·, ·)` — quantification commutes with a case split on an
//!    unquantified variable.
//! 3. **neither in `C`** — the branch condition is untouched; rebuild the
//!    node over the quantified children.
//!
//! Case 2 is the BBDD-specific cost of the chain structure; an ROBDD never
//! needs it.

use crate::edge::Edge;
use crate::manager::Bbdd;
use ddcore::boolop::BoolOp;
use ddcore::fxhash::FxHashMap;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::nary::NaryOp;
use ddcore::optag;

/// Immutable context shared by one cube-quantification run.
struct QuantCtx {
    /// `in_cube[l]` — is the variable whose PV sits at bottom-based level
    /// `l` quantified?
    in_cube: Vec<bool>,
    /// Lowest quantified level; nodes strictly below are untouched.
    min_level: u16,
    /// Computed-table key word naming the cube: the packed edge of the
    /// conjunction of the quantified variables' positive literals
    /// (canonical, so equal cubes share cache entries).
    cube_bits: u64,
    /// `OR` for `∃`, `AND` for `∀`.
    combine: BoolOp,
    /// [`optag::EXISTS`] or [`optag::FORALL`].
    tag: u32,
}

impl Bbdd {
    /// Existential quantification `∃ vars . f`.
    ///
    /// Cube-based: the whole variable set is eliminated in one cached
    /// recursion rather than one restrict pass per variable. Duplicates in
    /// `vars` are ignored.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let ab = mgr.and(a, b);
    /// let f = mgr.or(ab, c);
    /// let e = mgr.exists(f, &[0, 1]); // ∃a∃b.(a∧b ∨ c) = 1
    /// assert_eq!(e, mgr.one());
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn exists(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.try_exists(f, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::exists`] under a resource budget (see [`Bbdd::try_apply`]
    /// for the checkpoint and abort-safety contract).
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_exists(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::OR, optag::EXISTS) {
            Some(ctx) => self.quant_rec(f, &ctx, budget),
            None => Ok(f),
        }
    }

    /// Universal quantification `∀ vars . f`.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(2);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.or(a, b);
    /// let fa = mgr.forall(f, &[0]); // ∀a.(a ∨ b) = b
    /// assert_eq!(fa, b);
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn forall(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.try_forall(f, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::forall`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_forall(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::AND, optag::FORALL) {
            Some(ctx) => self.quant_rec(f, &ctx, budget),
            None => Ok(f),
        }
    }

    /// The fused relational product `∃ vars . (f ∧ g)`, computed in one
    /// recursion without materializing `f ∧ g` — the workhorse of image
    /// computation, where the conjunction is routinely far larger than the
    /// quantified result.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let f = mgr.xnor(a, b); // a = b
    /// let g = mgr.xnor(b, c); // b = c
    /// let r = mgr.and_exists(f, g, &[1]); // ∃b.(a=b ∧ b=c) = (a=c)
    /// let ac = mgr.xnor(a, c);
    /// assert_eq!(r, ac);
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn and_exists(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.try_and_exists(f, g, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::and_exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::OR, optag::EXISTS) {
            Some(ctx) => self.and_exists_rec(f, g, &ctx, budget),
            None => self.apply_rec(BoolOp::AND, f, g, budget),
        }
    }

    /// Build the quantification context, or `None` for an empty cube.
    fn quant_ctx(&mut self, vars: &[usize], combine: BoolOp, tag: u32) -> Option<QuantCtx> {
        let n = self.num_vars();
        let mut in_cube = vec![false; n];
        let mut min_level = u16::MAX;
        for &v in vars {
            assert!(v < n, "quantified variable {v} out of range");
            let l = self.level_of_var[v] as u16;
            in_cube[l as usize] = true;
            min_level = min_level.min(l);
        }
        if min_level == u16::MAX {
            return None;
        }
        // Canonical cube handle for the cache key (built once per call;
        // the conjunction of positive literals is linear in the cube).
        let mut cube = Edge::ONE;
        for l in (0..n).rev() {
            if in_cube[l] {
                let lit = self.shannon_node(l as u16);
                cube = self.and(cube, lit);
            }
        }
        Some(QuantCtx {
            in_cube,
            min_level,
            cube_bits: cube.bits() as u64,
            combine,
            tag,
        })
    }

    fn quant_rec(
        &mut self,
        f: Edge,
        ctx: &QuantCtx,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if f.is_constant() {
            return Ok(f);
        }
        let i = self.node(f.node()).level();
        if i < ctx.min_level {
            return Ok(f); // no quantified variable at or below this node
        }
        self.stats.quant_calls += 1;
        let (k1, k2) = (f.bits() as u64, ctx.cube_bits);
        if let Some(r) = self.cache.get(k1, k2, ctx.tag) {
            return Ok(Edge::from_bits(r as u32));
        }
        budget.checkpoint()?;
        let (fd, fe) = self.cofactors(f, i);
        let r = if ctx.in_cube[i as usize] {
            // Case 1: the PV is quantified away.
            let a = self.quant_rec(fd, ctx, budget)?;
            let absorbing = if ctx.tag == optag::EXISTS {
                Edge::ONE
            } else {
                Edge::ZERO
            };
            if a == absorbing {
                absorbing
            } else {
                let b = self.quant_rec(fe, ctx, budget)?;
                self.apply_rec(ctx.combine, a, b, budget)?
            }
        } else if i > 0 && ctx.in_cube[i as usize - 1] {
            // Case 2: the SV is quantified but the PV is not.
            let w = self.shannon_node(i - 1);
            let f1 = self.ite_rec(w, fe, fd, budget)?;
            let f0 = self.ite_rec(w, fd, fe, budget)?;
            let r1 = self.quant_rec(f1, ctx, budget)?;
            let r0 = self.quant_rec(f0, ctx, budget)?;
            let v = self.shannon_node(i);
            self.ite_rec(v, r1, r0, budget)?
        } else {
            // Case 3: the branch condition survives untouched.
            let a = self.quant_rec(fd, ctx, budget)?;
            let b = self.quant_rec(fe, ctx, budget)?;
            self.make_node(i, a, b)
        };
        self.cache.insert(k1, k2, ctx.tag, r.bits() as u64);
        Ok(r)
    }

    fn and_exists_rec(
        &mut self,
        f: Edge,
        g: Edge,
        ctx: &QuantCtx,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        // Terminal cases of the conjunction.
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Ok(Edge::ZERO);
        }
        if f == Edge::ONE {
            return self.quant_rec(g, ctx, budget);
        }
        if g == Edge::ONE || f == g {
            return self.quant_rec(f, ctx, budget);
        }
        // AND is commutative: canonical operand order doubles cache reuse.
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let lf = self.node(f.node()).level();
        let lg = self.node(g.node()).level();
        let i = lf.max(lg);
        if i < ctx.min_level {
            // Below every quantified variable.
            return self.apply_rec(BoolOp::AND, f, g, budget);
        }
        self.stats.quant_calls += 1;
        let k1 = f.bits() as u64;
        let k2 = ((g.bits() as u64) << 32) | ctx.cube_bits;
        if let Some(r) = self.cache.get(k1, k2, optag::AND_EXISTS) {
            return Ok(Edge::from_bits(r as u32));
        }
        budget.checkpoint()?;
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let r = if ctx.in_cube[i as usize] {
            let a = self.and_exists_rec(fd, gd, ctx, budget)?;
            if a == Edge::ONE {
                Edge::ONE
            } else {
                let b = self.and_exists_rec(fe, ge, ctx, budget)?;
                self.apply_rec(BoolOp::OR, a, b, budget)?
            }
        } else if i > 0 && ctx.in_cube[i as usize - 1] {
            let w = self.shannon_node(i - 1);
            let f1 = self.ite_rec(w, fe, fd, budget)?;
            let f0 = self.ite_rec(w, fd, fe, budget)?;
            let g1 = self.ite_rec(w, ge, gd, budget)?;
            let g0 = self.ite_rec(w, gd, ge, budget)?;
            let r1 = self.and_exists_rec(f1, g1, ctx, budget)?;
            let r0 = self.and_exists_rec(f0, g0, ctx, budget)?;
            let v = self.shannon_node(i);
            self.ite_rec(v, r1, r0, budget)?
        } else {
            let a = self.and_exists_rec(fd, gd, ctx, budget)?;
            let b = self.and_exists_rec(fe, ge, ctx, budget)?;
            self.make_node(i, a, b)
        };
        self.cache
            .insert(k1, k2, optag::AND_EXISTS, r.bits() as u64);
        Ok(r)
    }

    /// Simultaneous composition: substitute `subs[v]` for every variable
    /// `v` with a `Some` entry, all at once (`subs` may be shorter than
    /// `num_vars()`; missing entries are the identity).
    ///
    /// Unlike iterated [`Bbdd::compose`], simultaneous substitution is
    /// *not* a sequence of single substitutions — each replacement sees the
    /// original variables, so cyclic substitutions (swaps) work:
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(2);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.and(a, !b); // a ∧ ¬b
    /// let swapped = mgr.vector_compose(f, &[Some(b), Some(a)]);
    /// let expect = mgr.and(b, !a);
    /// assert_eq!(swapped, expect);
    /// ```
    pub fn vector_compose(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        self.vector_compose_rec(f, subs, &mut memo)
    }

    fn vector_compose_rec(
        &mut self,
        f: Edge,
        subs: &[Option<Edge>],
        memo: &mut FxHashMap<u32, Edge>,
    ) -> Edge {
        if f.is_constant() {
            return f;
        }
        let c = f.is_complemented();
        let fr = f.regular();
        if let Some(&r) = memo.get(&fr.bits()) {
            return r.complement_if(c);
        }
        self.stats.compose_calls += 1;
        let i = self.node(fr.node()).level();
        let v = self.var_at_level[i as usize] as usize;
        // Shannon-decompose on the PV: both the node's own test and the
        // level-above SV role of `v` are rebuilt through `ite`, so the
        // substitution functions may mention any variable.
        let (fd, fe) = self.cofactors(fr, i);
        let w = self.lit_below(i);
        let f1 = self.ite(w, fe, fd);
        let f0 = self.ite(w, fd, fe);
        let r1 = self.vector_compose_rec(f1, subs, memo);
        let r0 = self.vector_compose_rec(f0, subs, memo);
        let gv = match subs.get(v).copied().flatten() {
            Some(g) => g,
            None => self.var(v),
        };
        let r = self.ite(gv, r1, r0);
        memo.insert(fr.bits(), r);
        r.complement_if(c)
    }

    /// Generic n-ary `apply`: compute `op(f₀, …, f_{k-1})` in one recursion
    /// over the simultaneous biconditional expansion of all operands.
    ///
    /// Constant operands restrict the operator table, complemented operands
    /// are folded into it (the n-ary generalization of the paper's
    /// `updateop`), and a table that degenerates to a constant terminates
    /// the branch early.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// use ddcore::NaryOp;
    /// let mut mgr = Bbdd::new(3);
    /// let vs = [mgr.var(0), mgr.var(1), mgr.var(2)];
    /// let maj = mgr.apply_n(NaryOp::majority3(), &vs);
    /// assert_eq!(mgr.sat_count(maj), 4);
    /// ```
    ///
    /// # Panics
    /// Panics if `operands.len() != op.arity()`.
    pub fn apply_n(&mut self, op: NaryOp, operands: &[Edge]) -> Edge {
        assert_eq!(
            operands.len(),
            op.arity(),
            "operand count must match the operator arity"
        );
        let mut memo: FxHashMap<(u64, Vec<u32>), Edge> = FxHashMap::default();
        self.apply_n_rec(op, operands.to_vec(), &mut memo)
    }

    fn apply_n_rec(
        &mut self,
        mut op: NaryOp,
        mut fs: Vec<Edge>,
        memo: &mut FxHashMap<(u64, Vec<u32>), Edge>,
    ) -> Edge {
        self.stats.nary_calls += 1;
        // Normalize: fold constants (restricting the table) and operand
        // complements (permuting it) until every operand is a regular,
        // non-constant edge.
        let mut i = 0;
        while i < fs.len() {
            if fs[i].is_constant() && fs.len() > 1 {
                op = op.restrict(i, fs[i] == Edge::ONE);
                fs.remove(i);
            } else {
                if fs[i].is_complemented() {
                    op = op.complement_operand(i);
                    fs[i] = !fs[i];
                }
                i += 1;
            }
        }
        if let Some(b) = op.as_constant() {
            return if b { Edge::ONE } else { Edge::ZERO };
        }
        if fs.len() == 1 {
            if fs[0].is_constant() {
                return if op.eval(u32::from(fs[0] == Edge::ONE)) {
                    Edge::ONE
                } else {
                    Edge::ZERO
                };
            }
            // Non-constant unary residue: identity or complement.
            return if op.eval(1) { fs[0] } else { !fs[0] };
        }
        let key = (op.table(), fs.iter().map(|e| e.bits()).collect::<Vec<_>>());
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let i = fs
            .iter()
            .map(|&e| self.node(e.node()).level())
            .max()
            .expect("at least two operands");
        let cof: Vec<(Edge, Edge)> = fs.iter().map(|&e| self.cofactors(e, i)).collect();
        let eq: Vec<Edge> = cof.iter().map(|&(_, e)| e).collect();
        let neq: Vec<Edge> = cof.iter().map(|&(d, _)| d).collect();
        let b = self.apply_n_rec(op, eq, memo);
        let a = self.apply_n_rec(op, neq, memo);
        let r = self.make_node(i, a, b);
        memo.insert(key, r);
        r
    }

    /// One satisfying assignment of `f`, or `None` for the constant false.
    ///
    /// Walks a single root-to-sink path (every non-constant BBDD edge is
    /// satisfiable by canonicity), collecting the path's biconditional
    /// constraints, then resolves them bottom-up along the variable chain.
    /// Unconstrained variables default to `false`.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.xor(a, b);
    /// let m = mgr.any_sat(f).unwrap();
    /// assert!(mgr.eval(f, &m));
    /// assert_eq!(mgr.any_sat(mgr.zero()), None);
    /// ```
    #[must_use]
    pub fn any_sat(&self, f: Edge) -> Option<Vec<bool>> {
        if f == Edge::ZERO {
            return None;
        }
        let n = self.num_vars();
        // Per-level path constraints: `val[l]` pins the PV of level `l`
        // absolutely (Shannon nodes compare against the fictitious SV = 1);
        // `rel[l]` relates it to the chain neighbour one level down.
        let mut val: Vec<Option<bool>> = vec![None; n];
        let mut rel: Vec<Option<bool>> = vec![None; n];
        let mut e = f;
        while !e.is_constant() {
            let node = *self.node(e.node());
            let c = e.is_complemented();
            let l = node.level() as usize;
            if node.is_shannon() {
                val[l] = Some(!c);
                break;
            }
            let zn = node.neq().complement_if(c);
            let ze = node.eq().complement_if(c);
            // At least one branch is non-false (R2 + canonicity).
            if zn != Edge::ZERO {
                rel[l] = Some(false);
                e = zn;
            } else {
                rel[l] = Some(true);
                e = ze;
            }
        }
        Some(self.resolve_path(&val, &rel, 0))
    }

    /// Resolve per-level path constraints into a concrete assignment
    /// (indexed by *variable*), giving free levels the bits of `free_bits`
    /// in bottom-up level order.
    fn resolve_path(
        &self,
        val: &[Option<bool>],
        rel: &[Option<bool>],
        free_bits: u128,
    ) -> Vec<bool> {
        let n = self.num_vars();
        let mut by_level = vec![false; n];
        let mut free_idx = 0u32;
        for l in 0..n {
            by_level[l] = if let Some(v) = val[l] {
                v
            } else if let Some(eq) = rel[l] {
                let w = if l == 0 { true } else { by_level[l - 1] };
                if eq {
                    w
                } else {
                    !w
                }
            } else {
                let bit = free_idx < 128 && (free_bits >> free_idx) & 1 == 1;
                free_idx += 1;
                bit
            };
        }
        let mut out = vec![false; n];
        for (l, &v) in by_level.iter().enumerate() {
            out[self.var_at_level[l] as usize] = v;
        }
        out
    }

    /// Enumerate up to `limit` satisfying assignments of `f` (model
    /// enumeration). Models are complete assignments over all variables;
    /// each satisfying assignment appears exactly once (paths of a
    /// canonical diagram are disjoint). The order is unspecified.
    ///
    /// A path with ≥ 127 free (unconstrained) levels has more completions
    /// than `u128` can count; the internal completion counter **saturates**
    /// at `u128::MAX` there. This is harmless for enumeration (`limit` is a
    /// `usize`, far below the saturation point), but it is the same
    /// boundary at which [`Bbdd::sat_count`] refuses to answer — use
    /// [`Bbdd::sat_count_checked`] for a non-panicking count.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let ab = mgr.and(a, b);
    /// let f = mgr.and(ab, c);
    /// assert_eq!(mgr.all_sat(f, 16), vec![vec![true, true, true]]);
    /// ```
    #[must_use]
    pub fn all_sat(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let n = self.num_vars();
        let mut val: Vec<Option<bool>> = vec![None; n];
        let mut rel: Vec<Option<bool>> = vec![None; n];
        self.all_sat_rec(f, &mut val, &mut rel, limit, &mut out);
        out
    }

    fn all_sat_rec(
        &self,
        e: Edge,
        val: &mut Vec<Option<bool>>,
        rel: &mut Vec<Option<bool>>,
        limit: usize,
        out: &mut Vec<Vec<bool>>,
    ) {
        if out.len() >= limit || e == Edge::ZERO {
            return;
        }
        if e == Edge::ONE {
            // Expand the free levels of this path.
            let free = val
                .iter()
                .zip(rel.iter())
                .filter(|(v, r)| v.is_none() && r.is_none())
                .count() as u32;
            let total: u128 = if free >= 127 {
                u128::MAX
            } else {
                1u128 << free
            };
            let mut m: u128 = 0;
            while m < total && out.len() < limit {
                out.push(self.resolve_path(val, rel, m));
                m += 1;
            }
            return;
        }
        let node = *self.node(e.node());
        let c = e.is_complemented();
        let l = node.level() as usize;
        if node.is_shannon() {
            val[l] = Some(!c);
            self.all_sat_rec(Edge::ONE, val, rel, limit, out);
            val[l] = None;
            return;
        }
        let zn = node.neq().complement_if(c);
        let ze = node.eq().complement_if(c);
        rel[l] = Some(false);
        self.all_sat_rec(zn, val, rel, limit, out);
        rel[l] = Some(true);
        self.all_sat_rec(ze, val, rel, limit, out);
        rel[l] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: evaluate on every assignment.
    fn check(mgr: &Bbdd, f: Edge, n: usize, reference: impl Fn(&[bool]) -> bool) {
        for m in 0..(1u32 << n) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(f, &a), reference(&a), "assignment {a:?}");
        }
    }

    fn random_function(mgr: &mut Bbdd, n: usize, seed: u64, ops: usize) -> Edge {
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let table = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
        ];
        let mut state = seed | 1;
        let mut f = vs[0];
        for _ in 0..ops {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = table[(state >> 33) as usize % table.len()];
            let v = vs[(state >> 18) as usize % n];
            f = mgr.apply(op, f, v);
        }
        f
    }

    #[test]
    fn exists_cube_matches_iterated_restrict() {
        let n = 7;
        let mut mgr = Bbdd::new(n);
        for seed in 1..6u64 {
            let f = random_function(&mut mgr, n, seed * 7919, 24);
            for cube in [vec![0], vec![2, 4], vec![0, 1, 5], vec![3, 2, 6, 0]] {
                // Reference: one variable at a time via restrict.
                let mut reference = f;
                for &v in &cube {
                    let r0 = mgr.restrict(reference, v, false);
                    let r1 = mgr.restrict(reference, v, true);
                    reference = mgr.or(r0, r1);
                }
                assert_eq!(mgr.exists(f, &cube), reference, "seed {seed} cube {cube:?}");
                let mut reference = f;
                for &v in &cube {
                    let r0 = mgr.restrict(reference, v, false);
                    let r1 = mgr.restrict(reference, v, true);
                    reference = mgr.and(r0, r1);
                }
                assert_eq!(mgr.forall(f, &cube), reference, "seed {seed} cube {cube:?}");
            }
        }
        assert!(mgr.validate().is_ok());
        assert!(mgr.stats().quant_calls > 0);
    }

    #[test]
    fn exists_is_independent_of_quantified_vars() {
        let mut mgr = Bbdd::new(6);
        let f = random_function(&mut mgr, 6, 0xACE, 30);
        let e = mgr.exists(f, &[1, 3]);
        assert!(!mgr.depends_on(e, 1));
        assert!(!mgr.depends_on(e, 3));
    }

    #[test]
    fn and_exists_matches_composition() {
        let n = 8;
        let mut mgr = Bbdd::new(n);
        for seed in 1..8u64 {
            let f = random_function(&mut mgr, n, seed * 104729, 20);
            let g = random_function(&mut mgr, n, seed * 1299709, 20);
            for cube in [vec![0, 1], vec![2, 5, 7], vec![4]] {
                let conj = mgr.and(f, g);
                let reference = mgr.exists(conj, &cube);
                assert_eq!(
                    mgr.and_exists(f, g, &cube),
                    reference,
                    "seed {seed} cube {cube:?}"
                );
            }
        }
    }

    #[test]
    fn and_exists_empty_cube_is_and() {
        let mut mgr = Bbdd::new(3);
        let (a, b) = (mgr.var(0), mgr.var(1));
        let and = mgr.and(a, b);
        assert_eq!(mgr.and_exists(a, b, &[]), and);
    }

    #[test]
    fn quantify_everything_yields_constant() {
        let mut mgr = Bbdd::new(5);
        let f = random_function(&mut mgr, 5, 0xBEE, 25);
        let all: Vec<usize> = (0..5).collect();
        let e = mgr.exists(f, &all);
        let fa = mgr.forall(f, &all);
        assert!(e.is_constant() && fa.is_constant());
        assert_eq!(e == Edge::ONE, mgr.sat_count(f) > 0);
        assert_eq!(fa == Edge::ONE, mgr.sat_count(f) == 32);
    }

    #[test]
    fn vector_compose_swaps_variables() {
        let mut mgr = Bbdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c); // a∧b ∨ c
        let g = mgr.vector_compose(f, &[Some(c), None, Some(a)]); // a↦c, c↦a
        check(&mgr, g, 3, |v| (v[2] && v[1]) || v[0]);
        // Simultaneity: iterated compose gives a different (wrong) answer
        // for the cyclic swap a↦c, c↦a.
        let h1 = mgr.compose(f, 0, c);
        let h2 = mgr.compose(h1, 2, a);
        assert_ne!(
            g, h2,
            "iterated compose must not equal the simultaneous one here"
        );
    }

    #[test]
    fn vector_compose_identity_is_noop() {
        let mut mgr = Bbdd::new(4);
        let f = random_function(&mut mgr, 4, 0xF00, 16);
        assert_eq!(mgr.vector_compose(f, &[None, None, None, None]), f);
        let subs: Vec<Option<Edge>> = (0..4).map(|v| Some(mgr.var(v))).collect();
        assert_eq!(mgr.vector_compose(f, &subs), f);
    }

    #[test]
    fn apply_n_matches_brute_force() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        let f0 = random_function(&mut mgr, n, 11, 12);
        let f1 = random_function(&mut mgr, n, 22, 12);
        let f2 = random_function(&mut mgr, n, 33, 12);
        for op in [
            NaryOp::majority3(),
            NaryOp::conjunction(3),
            NaryOp::parity(3),
            NaryOp::from_fn(3, |m| m == 0b101 || m == 0b010),
        ] {
            let r = mgr.apply_n(op, &[f0, f1, f2]);
            check(&mgr, r, n, |v| {
                let m = u32::from(mgr.eval(f0, v))
                    | (u32::from(mgr.eval(f1, v)) << 1)
                    | (u32::from(mgr.eval(f2, v)) << 2);
                op.eval(m)
            });
        }
        assert!(mgr.stats().nary_calls > 0);
    }

    #[test]
    fn apply_n_handles_constants_and_complements() {
        let mut mgr = Bbdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let and3 = mgr.apply_n(NaryOp::conjunction(3), &[a, Edge::ONE, !b]);
        let expect = mgr.and(a, !b);
        assert_eq!(and3, expect);
        let zero = mgr.apply_n(NaryOp::conjunction(3), &[a, Edge::ZERO, b]);
        assert_eq!(zero, Edge::ZERO);
        // Unary residues after folding.
        let or3 = mgr.apply_n(NaryOp::disjunction(3), &[Edge::ZERO, !a, Edge::ZERO]);
        assert_eq!(or3, !a);
    }

    #[test]
    fn any_sat_finds_models() {
        let n = 9;
        let mut mgr = Bbdd::new(n);
        for seed in 1..10u64 {
            let f = random_function(&mut mgr, n, seed * 31337, 30);
            match mgr.any_sat(f) {
                Some(m) => assert!(mgr.eval(f, &m), "seed {seed}: model must satisfy"),
                None => assert_eq!(f, Edge::ZERO, "only ⊥ has no model"),
            }
            match mgr.any_sat(!f) {
                Some(m) => assert!(!mgr.eval(f, &m)),
                None => assert_eq!(f, Edge::ONE),
            }
        }
    }

    #[test]
    fn all_sat_enumerates_exactly_the_models() {
        let n = 5;
        let mut mgr = Bbdd::new(n);
        for seed in 1..8u64 {
            let f = random_function(&mut mgr, n, seed * 271, 18);
            let models = mgr.all_sat(f, 64);
            assert_eq!(models.len() as u128, mgr.sat_count(f), "seed {seed}");
            let mut seen: std::collections::HashSet<Vec<bool>> = std::collections::HashSet::new();
            for m in &models {
                assert!(mgr.eval(f, m), "seed {seed}: enumerated non-model {m:?}");
                assert!(seen.insert(m.clone()), "seed {seed}: duplicate model");
            }
        }
    }

    #[test]
    fn all_sat_respects_limit() {
        let mgr = Bbdd::new(10);
        let models = mgr.all_sat(Edge::ONE, 17);
        assert_eq!(models.len(), 17);
        assert!(mgr.all_sat(Edge::ZERO, 5).is_empty());
    }

    #[test]
    fn quantification_after_reorder() {
        // Levels move under reordering; the ops layer must keep working.
        let n = 6;
        let mut mgr = Bbdd::new(n);
        let f = random_function(&mut mgr, n, 0xDEC0DE, 24);
        let before = mgr.exists(f, &[1, 4]);
        let tt_before = mgr.truth_table(before);
        mgr.reorder_to(&[5, 3, 1, 0, 2, 4]);
        let after = mgr.exists(f, &[1, 4]);
        assert_eq!(mgr.truth_table(after), tt_before);
    }
}

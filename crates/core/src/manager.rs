//! The BBDD manager: node arena, per-level unique tables, the chain
//! variable order, node construction with reduction rules, and garbage
//! collection.

use crate::edge::Edge;
use crate::node::{Node, NodeKey, TERMINAL_LEVEL};
use ddcore::cache::ComputedCache;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::roots::RootSet;
use ddcore::table::UniqueTable;

/// Statistics counters exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct BbddStats {
    /// Recursive `apply` invocations (Algorithm 1 entries).
    pub apply_calls: u64,
    /// Recursive `ite` invocations.
    pub ite_calls: u64,
    /// Recursive quantification entries (`exists`/`forall`/`and_exists`).
    pub quant_calls: u64,
    /// Composition operations (`compose` calls and `vector_compose`
    /// recursion entries).
    pub compose_calls: u64,
    /// Recursive n-ary `apply` entries.
    pub nary_calls: u64,
    /// Nodes created (unique-table inserts).
    pub nodes_created: u64,
    /// Garbage-collection runs.
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection.
    pub nodes_freed: u64,
    /// Adjacent CVO swaps performed.
    pub swaps: u64,
    /// Peak number of live nodes observed.
    pub peak_live_nodes: usize,
    /// Computed-table lookups (filled from the cache when the snapshot is
    /// taken by [`Bbdd::stats`]).
    pub cache_lookups: u64,
    /// Computed-table hits.
    pub cache_hits: u64,
    /// Computed-table evictions (inserts that overwrote a live entry).
    pub cache_evictions: u64,
}

impl BbddStats {
    /// Computed-table misses.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_lookups - self.cache_hits
    }
}

/// Public structural view of one BBDD node (see [`Bbdd::node_info`]).
///
/// `sv` is `None` for Shannon (R4) nodes and for the bottom level, whose
/// secondary variable is the fictitious constant 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// Bottom-based CVO level.
    pub level: usize,
    /// `true` for a Shannon (reduction rule R4) node.
    pub shannon: bool,
    /// The `PV ≠ SV` child edge.
    pub neq: Edge,
    /// The `PV = SV` child edge (always regular).
    pub eq: Edge,
    /// Primary variable of the node's level.
    pub pv: usize,
    /// Secondary variable (chain neighbour), when it exists.
    pub sv: Option<usize>,
}

/// A manager for Biconditional Binary Decision Diagrams over a fixed set of
/// variables.
///
/// Variables are identified by indices `0..num_vars`. The *chain variable
/// order* (CVO, paper Eq. 2) is derived from the current variable order
/// `π`: the node level holding `PV = π_t` has `SV = π_{t+1}`, and the
/// bottom level has the fictitious `SV = 1`. Levels are stored bottom-based
/// (level `n-1` is the root level), matching Algorithm 1's
/// `i = maxlevel{f, g}`.
///
/// ```
/// use bbdd::{Bbdd, BoolOp};
/// let mut mgr = Bbdd::new(3);
/// let (a, b) = (mgr.var(0), mgr.var(1));
/// let f = mgr.apply(BoolOp::XOR, a, b);
/// assert!(mgr.eval(f, &[true, false, false]));
/// assert!(!mgr.eval(f, &[true, true, false]));
/// ```
#[derive(Debug)]
pub struct Bbdd {
    pub(crate) nodes: Vec<Node>,
    free: Vec<u32>,
    /// One unique subtable per bottom-based level.
    pub(crate) subtables: Vec<UniqueTable<NodeKey>>,
    /// `var_at_level[l]` = variable whose PV sits at level `l`.
    pub(crate) var_at_level: Vec<u32>,
    /// Inverse map: `level_of_var[v]` = bottom-based level of variable `v`.
    pub(crate) level_of_var: Vec<u32>,
    pub(crate) cache: ComputedCache,
    pub(crate) stats: BbddStats,
    /// Reusable staging buffers for the CVO swap (allocation-churn
    /// avoidance; see `swap.rs`).
    pub(crate) swap_scratch: Option<crate::swap::SwapCtx>,
    /// Dynamic-reordering policy and schedule baselines (see
    /// [`ddcore::dvo`]); `None` policy = no scheduled reordering.
    dvo: ddcore::dvo::DvoState,
    /// External-root registry behind the [`crate::BbddFn`] handles; GC and
    /// sifting trace from here instead of caller-supplied root lists.
    roots: RootSet,
    /// Reusable snapshot buffer for the registry trace (GC runs once per
    /// sift swap — allocation churn matters).
    root_scratch: Vec<u64>,
    /// The automatic-GC latch + collection generation (shared shape with
    /// the ROBDD manager; see [`ddcore::roots::GcLatch`]).
    gc_latch: ddcore::roots::GcLatch,
    /// Governed-operation accounting (the `govern.*` metrics section),
    /// fed by the generic handle layer via `RawManager::note_governed`.
    pub(crate) govern: ddcore::obs::GovernCounters,
}

impl Bbdd {
    /// Create a manager for `num_vars` variables with the identity order
    /// `π = (0, 1, …, n-1)` (variable 0 on top).
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or exceeds `u16::MAX - 1` levels.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars > 0, "a BBDD manager needs at least one variable");
        assert!(
            num_vars < TERMINAL_LEVEL as usize,
            "too many variables for 16-bit levels"
        );
        let n = num_vars;
        // Variable t (top-based position t) sits at bottom-based level n-1-t.
        let var_at_level: Vec<u32> = (0..n).map(|l| (n - 1 - l) as u32).collect();
        let mut level_of_var = vec![0u32; n];
        for (l, &v) in var_at_level.iter().enumerate() {
            level_of_var[v as usize] = l as u32;
        }
        Bbdd {
            nodes: vec![Node::terminal()],
            free: Vec::new(),
            subtables: (0..n).map(|_| UniqueTable::new(64)).collect(),
            var_at_level,
            level_of_var,
            cache: ComputedCache::default(),
            stats: BbddStats::default(),
            swap_scratch: None,
            dvo: ddcore::dvo::DvoState::default(),
            roots: RootSet::new(),
            root_scratch: Vec::new(),
            gc_latch: ddcore::roots::GcLatch::default(),
            govern: ddcore::obs::GovernCounters::default(),
        }
    }

    /// A private flat copy of the node store for an MVCC session fork
    /// (`ddcore::session`): nodes, free list, unique tables, the variable
    /// order and the computed cache are cloned, so every edge minted by
    /// the original manager stays bit-valid and denotes the same function
    /// in the fork. The external-root registry, GC latch, DVO state and
    /// all statistics start fresh — they are semantics-free bookkeeping
    /// that must not be shared between a base snapshot and its sessions.
    #[must_use]
    pub fn fork_state(&self) -> Self {
        Bbdd {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            subtables: self.subtables.clone(),
            var_at_level: self.var_at_level.clone(),
            level_of_var: self.level_of_var.clone(),
            cache: self.cache.clone(),
            stats: BbddStats::default(),
            swap_scratch: None,
            dvo: ddcore::dvo::DvoState::default(),
            roots: RootSet::new(),
            root_scratch: Vec::new(),
            gc_latch: ddcore::roots::GcLatch::default(),
            govern: ddcore::obs::GovernCounters::default(),
        }
    }

    /// Number of variables managed.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.var_at_level.len()
    }

    /// The current variable order `π`, top of the diagram first.
    #[must_use]
    pub fn order(&self) -> Vec<usize> {
        self.var_at_level
            .iter()
            .rev()
            .map(|&v| v as usize)
            .collect()
    }

    /// Top-based position of `var` in the current order (0 = root level).
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    #[must_use]
    pub fn position_of(&self, var: usize) -> usize {
        self.num_vars() - 1 - self.level_of_var[var] as usize
    }

    /// The constant-true function.
    #[must_use]
    pub fn one(&self) -> Edge {
        Edge::ONE
    }

    /// The constant-false function.
    #[must_use]
    pub fn zero(&self) -> Edge {
        Edge::ZERO
    }

    /// The positive literal of `var` (reduction rule R4: a single node with
    /// `SV = 1`).
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn var(&mut self, var: usize) -> Edge {
        let level = self.level_of_var[var] as u16;
        self.shannon_node(level)
    }

    /// The negative literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn nvar(&mut self, var: usize) -> Edge {
        !self.var(var)
    }

    /// Current number of live (stored) nodes, excluding the sink.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.subtables.iter().map(UniqueTable::len).sum()
    }

    /// Nodes stored at each level, bottom level first (used by sifting).
    #[must_use]
    pub fn level_sizes(&self) -> Vec<usize> {
        self.subtables.iter().map(UniqueTable::len).collect()
    }

    /// Aggregate unique-table statistics summed over all level subtables.
    #[must_use]
    pub fn table_stats(&self) -> ddcore::TableStats {
        let mut agg = ddcore::TableStats::default();
        for t in &self.subtables {
            agg.absorb(t.stats());
        }
        agg
    }

    /// Counters accumulated since the manager was created, including a
    /// snapshot of the computed-table hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> BbddStats {
        let mut s = self.stats;
        let c = self.cache.stats();
        s.cache_lookups = c.lookups;
        s.cache_hits = c.hits;
        s.cache_evictions = c.evictions;
        s
    }

    /// One uniform [`ddcore::MetricsSnapshot`] over every counter the
    /// manager maintains: node/op/cache/table/GC/roots/DVO/govern
    /// sections under the registry's stable dotted names. This is what
    /// `RawManager::observe` (and therefore the handle layer's
    /// `metrics()`) returns for this backend.
    #[must_use]
    pub fn metrics_snapshot(&self) -> ddcore::MetricsSnapshot {
        let mut m = ddcore::MetricsSnapshot::new("bbdd");
        self.fill_metrics(&mut m, None);
        m
    }

    /// Fill `m` with this manager's sections. The Par front-end passes its
    /// lock-free cache counters as `par_cache` so the `cache.*` section
    /// stays one unified tree (sequential + concurrent lookups summed,
    /// tear misses appearing only when a concurrent cache exists).
    pub(crate) fn fill_metrics(
        &self,
        m: &mut ddcore::MetricsSnapshot,
        par_cache: Option<ddcore::AtomicCacheStats>,
    ) {
        let s = self.stats();
        let c = self.cache.stats();
        let t = self.table_stats();
        m.gauge("nodes.live", self.live_nodes() as u64);
        m.gauge("nodes.peak", s.peak_live_nodes as u64);
        m.counter("nodes.created", s.nodes_created);
        m.counter("ops.apply", s.apply_calls);
        m.counter("ops.ite", s.ite_calls);
        m.counter("ops.quant", s.quant_calls);
        m.counter("ops.compose", s.compose_calls);
        m.counter("ops.nary", s.nary_calls);
        m.counter("ops.swaps", s.swaps);
        let pc = par_cache.unwrap_or_default();
        m.counter("cache.lookups", c.lookups + pc.lookups);
        m.counter("cache.hits", c.hits + pc.hits);
        m.counter("cache.misses", c.misses() + pc.misses());
        m.counter("cache.inserts", c.inserts + pc.inserts);
        m.counter("cache.evictions", c.evictions);
        m.counter("cache.invalidations", c.invalidations + pc.invalidations);
        if par_cache.is_some() {
            m.counter("cache.tear_misses", pc.tear_misses);
        }
        m.counter("table.lookups", t.lookups);
        m.counter("table.probes", t.probes);
        m.counter("table.hits", t.hits);
        m.counter("table.resizes", t.resizes);
        m.counter("table.rearrangements", t.rearrangements);
        m.counter("table.tombstone_repairs", t.batched_repairs);
        m.counter("gc.runs", s.gc_runs);
        m.counter("gc.nodes_freed", s.nodes_freed);
        m.counter("gc.latch_firings", self.gc_latch.firings());
        let (registered, retained, released) = self.roots.traffic();
        m.gauge("roots.live", self.roots.len() as u64);
        m.counter("roots.registered", registered);
        m.counter("roots.retained", retained);
        m.counter("roots.released", released);
        m.counter("dvo.reorders", self.dvo.reorders());
        self.govern.fill(m);
    }

    /// A stable identifier of the node an edge points to (`None` for the
    /// constants). Two edges with equal ids point at the same stored node;
    /// the id is usable as a map key by exporters.
    #[must_use]
    pub fn edge_id(&self, e: Edge) -> Option<u32> {
        if e.is_constant() {
            None
        } else {
            Some(e.node())
        }
    }

    /// Structural view of the node `e` points to (`None` for constants) —
    /// the public introspection hook used by the DOT exporter and the
    /// BBDD-to-netlist rewriter.
    #[must_use]
    pub fn node_info(&self, e: Edge) -> Option<NodeInfo> {
        if e.is_constant() {
            return None;
        }
        let n = self.node(e.node());
        let level = n.level() as usize;
        let pv = self.var_at_level[level] as usize;
        let sv = if n.is_shannon() || level == 0 {
            None
        } else {
            Some(self.var_at_level[level - 1] as usize)
        };
        Some(NodeInfo {
            level,
            shannon: n.is_shannon(),
            neq: n.neq(),
            eq: n.eq(),
            pv,
            sv,
        })
    }

    #[inline]
    pub(crate) fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Is `e` a constant or an edge to a currently stored (never freed or
    /// out-of-range) node? Used by fallible exporters to reject stale
    /// edges instead of silently serializing garbage.
    pub(crate) fn edge_is_stored(&self, e: Edge) -> bool {
        if e.is_constant() {
            return true;
        }
        let id = e.node() as usize;
        id < self.nodes.len() && !self.nodes[id].is_free()
    }

    /// Take a reusable slot from the free list (used by swap commits).
    pub(crate) fn pop_free(&mut self) -> Option<u32> {
        self.free.pop()
    }

    /// Arm automatic reordering: once the live node count crosses
    /// `threshold`, the next [`Bbdd::reorder_if_needed`] call (issued by
    /// the network builders between gates, and by the handle-boundary GC
    /// latch) garbage-collects, sifts and doubles the threshold — the
    /// dynamic-reordering discipline packages use to survive order-hostile
    /// construction. `0` disables. Sugar for installing a
    /// full-sift/node-threshold [`ddcore::dvo::DvoPolicy`].
    pub fn set_auto_reorder(&mut self, threshold: usize) {
        self.set_reorder_policy((threshold > 0).then_some(ddcore::dvo::DvoPolicy {
            strategy: ddcore::dvo::DvoStrategy::Full,
            schedule: ddcore::dvo::ReorderSchedule::NodeThreshold(threshold),
        }));
    }

    /// Install (or clear, with `None`) the dynamic-reordering policy:
    /// which [`ddcore::dvo::DvoStrategy`] to run and when its
    /// [`ddcore::dvo::ReorderSchedule`] fires. Scheduled firings happen at
    /// handle boundaries (piggybacking on the automatic-GC latch) and at
    /// the network builders' collection gates; the schedule's baselines
    /// reset to the manager's current counters on installation.
    pub fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        let (live, created) = (self.live_nodes(), self.stats.nodes_created);
        self.dvo.set_policy(policy, live, created);
    }

    /// The installed dynamic-reordering policy, if any.
    #[must_use]
    pub fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        self.dvo.policy()
    }

    /// Scheduled reorders run so far (via [`Bbdd::reorder_if_needed`] and
    /// its bounded variant).
    #[must_use]
    pub fn scheduled_reorders(&self) -> u64 {
        self.dvo.reorders()
    }

    /// Collect (tracing the handle registry) and, if the installed
    /// policy's schedule is due, run its strategy. Returns `true` when a
    /// reorder ran.
    pub fn reorder_if_needed(&mut self) -> bool {
        self.reorder_if_needed_bounded(&mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::reorder_if_needed`] under a resource budget. On abort the
    /// variable order is consistent (the [`Bbdd::sift_bounded`] park-back
    /// contract) and the schedule has re-armed — the trigger was consumed,
    /// so the caller can simply continue with a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn reorder_if_needed_bounded(&mut self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        if !self.dvo.due(self.live_nodes(), self.stats.nodes_created) {
            return Ok(false);
        }
        // A collection may already dissolve the pressure (dead nodes, not
        // a bad order) — re-check before paying for a sift.
        self.gc_keeping(&[]);
        if !self.dvo.due(self.live_nodes(), self.stats.nodes_created) {
            return Ok(false);
        }
        let strategy = self.dvo.strategy().expect("due implies a policy");
        // Scheduled-sift firing marker; the strategy's own Reorder span
        // (opened in `ddcore::dvo`) carries the duration and result.
        ddcore::obs::event(
            ddcore::obs::Op::Reorder,
            Some(("scheduled", self.dvo.reorders() + 1)),
        );
        let res = self.sift_strategy(strategy, budget);
        let (live, created) = (self.live_nodes(), self.stats.nodes_created);
        self.dvo.note_reorder(live, created);
        res.map(|_| true)
    }

    /// Bottom-based level of the node an edge points to (`-1`-like sentinel
    /// `i32::MIN` is avoided by returning `None` for constants).
    #[inline]
    pub(crate) fn edge_level(&self, e: Edge) -> Option<u16> {
        if e.is_constant() {
            None
        } else {
            Some(self.node(e.node()).level())
        }
    }

    /// The Shannon (R4) node of the given level — the positive literal of
    /// that level's PV.
    pub(crate) fn shannon_node(&mut self, level: u16) -> Edge {
        let key = NodeKey::new(true, Edge::ZERO, Edge::ONE);
        Edge::new(self.find_or_insert(level, key), false)
    }

    /// The positive literal of the level *below* `level` — `Edge::ONE` for
    /// the fictitious `SV = 1` of the bottom level.
    pub(crate) fn lit_below(&mut self, level: u16) -> Edge {
        if level == 0 {
            Edge::ONE
        } else {
            self.shannon_node(level - 1)
        }
    }

    /// Is `e` exactly the regular positive literal of the level below
    /// `level`? (The R4 detection pattern; no node is created.)
    fn is_lit_below(&self, e: Edge, level: u16) -> bool {
        if e.is_complemented() {
            return false;
        }
        if level == 0 {
            return e == Edge::ONE;
        }
        if e.is_constant() {
            return false;
        }
        let n = self.node(e.node());
        n.is_shannon() && n.level() == level - 1
    }

    /// Find-or-create the biconditional node `(level, neq, eq)` applying
    /// reduction rules R2 (identical children) and R4 (single-variable
    /// degeneration) and the complement-attribute normalization (regular
    /// =-edge).
    pub(crate) fn make_node(&mut self, level: u16, mut neq: Edge, mut eq: Edge) -> Edge {
        if neq == eq {
            return eq; // R2
        }
        let mut out_c = false;
        if eq.is_complemented() {
            neq = !neq;
            eq = !eq;
            out_c = true;
        }
        // R4: (v ⊕ w)·w' + (v ⊙ w)·w  ≡  the literal v.
        if neq == !eq && self.is_lit_below(eq, level) {
            return self.shannon_node(level).complement_if(out_c);
        }
        debug_assert!(self.child_level_ok(neq, level) && self.child_level_ok(eq, level));
        let key = NodeKey::new(false, neq, eq);
        Edge::new(self.find_or_insert(level, key), out_c)
    }

    fn child_level_ok(&self, child: Edge, level: u16) -> bool {
        match self.edge_level(child) {
            None => true,
            Some(l) => l < level,
        }
    }

    fn find_or_insert(&mut self, level: u16, key: NodeKey) -> u32 {
        let nodes = &mut self.nodes;
        let free = &mut self.free;
        let mut created = false;
        let id = self.subtables[level as usize].get_or_insert_with(key, || {
            created = true;
            let node = Node::new(level, key.shannon(), key.neq(), key.eq());
            match free.pop() {
                Some(id) => {
                    nodes[id as usize] = node;
                    id
                }
                None => {
                    nodes.push(node);
                    (nodes.len() - 1) as u32
                }
            }
        });
        if created {
            self.stats.nodes_created += 1;
            let live = self.live_nodes();
            if live > self.stats.peak_live_nodes {
                self.stats.peak_live_nodes = live;
            }
            self.note_growth(live);
        }
        id
    }

    /// Biconditional cofactors `(f_{v≠w}, f_{v=w})` of `e` with respect to
    /// the (PV, SV) pair of `level`. `level` must be at or above the edge's
    /// top node. Single-variable (Shannon) operands are expanded on the fly
    /// — the lazy equivalent of Algorithm 1's `chain-transform`.
    pub(crate) fn cofactors(&mut self, e: Edge, level: u16) -> (Edge, Edge) {
        if e.is_constant() {
            return (e, e);
        }
        let n = *self.node(e.node());
        if n.level() < level {
            return (e, e);
        }
        debug_assert_eq!(n.level(), level, "cofactor below the node's own level");
        let c = e.is_complemented();
        if n.is_shannon() {
            // f = v:  f_{v≠w} = w',  f_{v=w} = w.
            let lw = self.lit_below(level);
            ((!lw).complement_if(c), lw.complement_if(c))
        } else {
            (n.neq().complement_if(c), n.eq().complement_if(c))
        }
    }

    /// The external-root registry shared with every [`crate::BbddFn`]
    /// handle this manager hands out.
    pub(crate) fn root_set(&self) -> &RootSet {
        &self.roots
    }

    /// Arm the automatic GC: once `make_node` observes the live node count
    /// at or above `threshold`, a collection is *latched* and runs at the
    /// next handle boundary (any `*_fn` operation). After each automatic
    /// collection the trigger re-arms at twice the surviving size (never
    /// below `threshold`), so steady-state traffic is not collection-bound.
    /// `0` disables (the default).
    ///
    /// Collections trace the handle registry — nothing a live [`crate::BbddFn`]
    /// (or clone) denotes is ever reclaimed; raw [`Edge`]s not covered by a
    /// handle are only safe within a single operation.
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_latch.set_threshold(threshold);
    }

    /// The automatic-GC threshold (`0` = disabled).
    #[must_use]
    pub fn gc_threshold(&self) -> usize {
        self.gc_latch.threshold()
    }

    /// Arm the latch when a growth point crosses the trigger (called from
    /// `find_or_insert`; collection itself is deferred to a handle
    /// boundary so mid-recursion edges are never swept away).
    #[inline]
    fn note_growth(&mut self, live: usize) {
        self.gc_latch.note_growth(live);
    }

    /// Monotonic count of collections run through *any* entry point.
    /// Node ids may have been recycled whenever this changes — the Par
    /// front-end compares it to decide when its concurrent cache must be
    /// epoch-invalidated, whatever path triggered the GC.
    pub(crate) fn gc_generation(&self) -> u64 {
        self.gc_latch.generation()
    }

    /// Run the latched automatic collection, if armed. Returns `true` when
    /// a collection ran. This is the handle-boundary collection point used
    /// by every `*_fn` operation.
    pub(crate) fn maybe_auto_gc(&mut self) -> bool {
        if !self.gc_latch.take_pending() {
            return false;
        }
        self.gc_keeping(&[]);
        self.gc_latch.rearm(self.live_nodes());
        // The latch boundary doubles as the reorder schedule's firing
        // point: with a policy installed, long handle-level construction
        // runs reorder adaptively here, not just at explicit collect()
        // gates. (The sift's own collections go through gc_keeping, so the
        // generation counter the Par front-ends watch still advances.)
        self.reorder_if_needed();
        true
    }

    /// Garbage-collect every node not reachable from a registered handle
    /// ([`crate::BbddFn`]); returns the number of nodes reclaimed. The
    /// computed table is invalidated because freed ids may be re-used.
    ///
    /// There is no root list to supply — and therefore none to forget: the
    /// registry behind the handles *is* the root set.
    pub fn gc(&mut self) -> usize {
        self.gc_keeping(&[])
    }

    /// The mark/sweep shared by every GC entry point: roots are the handle
    /// registry snapshot plus `extra` (internal callers such as the sift
    /// shims). The registry lock is *not* held across the trace — see the
    /// reentrancy rule in [`ddcore::roots`].
    pub(crate) fn gc_keeping(&mut self, extra: &[Edge]) -> usize {
        let mut span = ddcore::obs::span(ddcore::obs::Op::Gc);
        self.stats.gc_runs += 1;
        self.gc_latch.note_collection();
        // Mark, starting from the registry snapshot + extra roots.
        let mut snap = std::mem::take(&mut self.root_scratch);
        snap.clear();
        self.roots.snapshot_into(&mut snap);
        let mut stack: Vec<u32> = snap
            .iter()
            .map(|&bits| Edge::from_bits(bits as u32))
            .chain(extra.iter().copied())
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        self.root_scratch = snap;
        while let Some(id) = stack.pop() {
            let n = &mut self.nodes[id as usize];
            if n.is_marked() {
                continue;
            }
            n.set_mark(true);
            let (neq, eq) = (n.neq(), n.eq());
            if !neq.is_constant() {
                stack.push(neq.node());
            }
            if !eq.is_constant() {
                stack.push(eq.node());
            }
        }
        // Sweep; survivors drop their mark bit in the same pass (the
        // tables call the closure exactly once per stored entry).
        let nodes = &mut self.nodes;
        let free = &mut self.free;
        let mut freed = 0usize;
        for table in &mut self.subtables {
            table.retain(|_, id| {
                let n = &mut nodes[id as usize];
                if n.is_marked() {
                    n.set_mark(false);
                    true
                } else {
                    n.set_free(true);
                    free.push(id);
                    freed += 1;
                    false
                }
            });
        }
        self.cache.invalidate();
        self.stats.nodes_freed += freed as u64;
        span.set_arg("freed", freed as u64);
        freed
    }

    /// Validate every canonical-form invariant of the stored forest.
    ///
    /// Intended for tests and debugging; cost is linear in the number of
    /// stored nodes.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut present: HashSet<u32> = HashSet::new();
        for (lvl, table) in self.subtables.iter().enumerate() {
            let mut err: Option<String> = None;
            table.for_each(|key, id| {
                if err.is_some() {
                    return;
                }
                if !present.insert(id) {
                    err = Some(format!("node {id} stored in two subtables"));
                    return;
                }
                let n = self.node(id);
                if n.is_free() {
                    err = Some(format!("free node {id} still in subtable {lvl}"));
                    return;
                }
                if n.level() as usize != lvl {
                    err = Some(format!(
                        "node {id} at subtable {lvl} has level {}",
                        n.level()
                    ));
                    return;
                }
                if n.key() != *key {
                    err = Some(format!("node {id} key mismatch"));
                    return;
                }
                if n.eq().is_complemented() {
                    err = Some(format!("node {id} has complemented =-edge"));
                    return;
                }
                if n.neq() == n.eq() {
                    err = Some(format!("node {id} violates R2"));
                    return;
                }
                if n.is_shannon() {
                    if n.neq() != Edge::ZERO || n.eq() != Edge::ONE {
                        err = Some(format!("shannon node {id} with non-literal children"));
                    }
                } else {
                    if n.neq() == !n.eq() && self.is_lit_below(n.eq(), n.level()) {
                        err = Some(format!("node {id} violates R4"));
                        return;
                    }
                    for child in [n.neq(), n.eq()] {
                        if let Some(cl) = self.edge_level(child) {
                            if cl >= n.level() {
                                err = Some(format!(
                                    "node {id} child level {cl} >= own level {}",
                                    n.level()
                                ));
                                return;
                            }
                        }
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        // Every child of a stored node must itself be stored.
        for (lvl, table) in self.subtables.iter().enumerate() {
            let mut err: Option<String> = None;
            table.for_each(|_, id| {
                if err.is_some() {
                    return;
                }
                let n = self.node(id);
                for child in [n.neq(), n.eq()] {
                    if !child.is_constant() && !present.contains(&child.node()) {
                        err = Some(format!(
                            "node {id} at level {lvl} references unstored node {}",
                            child.node()
                        ));
                        return;
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_manager_identity_order() {
        let mgr = Bbdd::new(4);
        assert_eq!(mgr.num_vars(), 4);
        assert_eq!(mgr.order(), vec![0, 1, 2, 3]);
        assert_eq!(mgr.position_of(0), 0);
        assert_eq!(mgr.position_of(3), 3);
        assert_eq!(mgr.live_nodes(), 0);
    }

    #[test]
    fn literal_nodes_are_shared() {
        let mut mgr = Bbdd::new(3);
        let a1 = mgr.var(0);
        let a2 = mgr.var(0);
        assert_eq!(a1, a2);
        assert_eq!(mgr.live_nodes(), 1);
        let na = mgr.nvar(0);
        assert_eq!(na, !a1);
        assert_eq!(mgr.live_nodes(), 1, "negative literal shares the node");
    }

    #[test]
    fn make_node_applies_r2() {
        let mut mgr = Bbdd::new(3);
        let b = mgr.var(1);
        let n = mgr.make_node(2, b, b);
        assert_eq!(n, b);
    }

    #[test]
    fn make_node_applies_r4() {
        let mut mgr = Bbdd::new(3);
        // At the top level (2), children (w', w) must degenerate to the
        // literal of the top variable (R4).
        let w = mgr.var(1); // level 1 literal
        let v = mgr.make_node(2, !w, w);
        let expect = mgr.var(0);
        assert_eq!(v, expect);
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn make_node_normalizes_complemented_eq_edge() {
        let mut mgr = Bbdd::new(2);
        // node(level1, neq=1, eq=0) has complemented =-child → must come
        // back as a complemented edge to node(level1, neq=0, eq=1) (which
        // is XNOR(v,w) — here XOR of the two variables).
        let n = mgr.make_node(1, Edge::ONE, Edge::ZERO);
        assert!(n.is_complemented());
        let m = mgr.make_node(1, Edge::ZERO, Edge::ONE);
        assert_eq!(n, !m);
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn xnor_and_literal_do_not_collide() {
        let mut mgr = Bbdd::new(2);
        let lit = mgr.var(0); // Shannon node at level 1
        let xnor = mgr.make_node(1, Edge::ZERO, Edge::ONE); // biconditional
        assert_ne!(lit, xnor);
        assert_eq!(mgr.live_nodes(), 2);
    }

    #[test]
    fn gc_reclaims_unreachable() {
        let mut mgr = Bbdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.make_node(3, !b, b.regular()); // something at top... keep a real node
        let _dead1 = mgr.make_node(2, Edge::ZERO, Edge::ONE);
        let before = mgr.live_nodes();
        // Pin the survivors; the registry is the root set.
        let keep_h = mgr.pin(keep);
        let a_h = mgr.pin(a);
        let freed = mgr.gc();
        assert!(freed > 0);
        assert_eq!(mgr.live_nodes(), before - freed);
        assert!(mgr.validate().is_ok());
        assert!(!keep.is_constant(), "pinned node survived");
        // Freed slots are reused.
        let again = mgr.make_node(2, Edge::ZERO, Edge::ONE);
        assert!(!again.is_constant());
        assert!(mgr.validate().is_ok());
        drop((keep_h, a_h));
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn zero_vars_rejected() {
        let _ = Bbdd::new(0);
    }
}

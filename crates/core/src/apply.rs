//! Recursive Boolean operations between BBDDs — Algorithm 1 of the paper.
//!
//! `apply(⊗, f, g)` follows the paper's structure exactly:
//!
//! * **(α)** terminal cases: `f == g`, `f == ¬g`, or a constant operand are
//!   resolved from the pre-defined trivial-operation list
//!   ([`BoolOp::on_equal_operands`] and friends);
//! * **(β)** the computed table is consulted;
//! * **(γ)** otherwise the operation recurses over the biconditional
//!   expansion (Eq. 3) at `i = maxlevel{f, g}`:
//!   `f ⊗ g = (v⊕w)(f_{v≠w} ⊗_D g_{v≠w}) + (v⊙w)(f_{v=w} ⊗ g_{v=w})`,
//!   where `⊗_D = updateop(⊗, attrs)` folds the complement attributes of the
//!   traversed edges into the operator table. Reduction rule R4 is enforced
//!   by `make_node` before the result is stored.
//!
//! Negation is free (complement attribute), and `ite` provides the ternary
//! operator used by `restrict` and the netlist builders.

use crate::edge::Edge;
use crate::manager::Bbdd;
use ddcore::boolop::{BoolOp, Unary};
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::optag;

/// Computed-table tag for `ite` (the `apply` range uses the operator's own
/// truth table as its tag; see [`ddcore::optag`] for the full registry).
const TAG_ITE: u32 = optag::ITE;

impl Bbdd {
    /// Compute `f ⊗ g` for an arbitrary two-operand Boolean operator.
    ///
    /// ```
    /// use bbdd::{Bbdd, BoolOp};
    /// let mut mgr = Bbdd::new(2);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.apply(BoolOp::NAND, a, b);
    /// let g = mgr.apply(BoolOp::AND, a, b);
    /// assert_eq!(f, !g);
    /// ```
    pub fn apply(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.try_apply(op, f, g, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::apply`] under a resource budget: polls `budget` at every
    /// cache-miss boundary (each poll precedes at most one `make_node`),
    /// so a node limit, deadline or raised [`ddcore::govern::CancelToken`]
    /// aborts the recursion within one poll stride. On `Err` the manager
    /// stays fully usable; partial results are unreachable and die at the
    /// next GC.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.apply_rec(op, f, g, budget)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::AND, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::OR, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XOR, f, g)
    }

    /// `f ⊙ g` (biconditional / equivalence).
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XNOR, f, g)
    }

    /// `¬(f ∧ g)`.
    pub fn nand(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::NAND, f, g)
    }

    /// `¬(f ∨ g)`.
    pub fn nor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::NOR, f, g)
    }

    /// `f → g` (`¬f ∨ g`).
    pub fn implies(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::IMPLIES, f, g)
    }

    fn unary(&self, u: Unary, x: Edge) -> Edge {
        match u {
            Unary::Zero => Edge::ZERO,
            Unary::One => Edge::ONE,
            Unary::Identity => x,
            Unary::Complement => !x,
        }
    }

    pub(crate) fn apply_rec(
        &mut self,
        mut op: BoolOp,
        mut f: Edge,
        mut g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.stats.apply_calls += 1;
        // (α) terminal cases — the identical/trivial operation list.
        if f == g {
            return Ok(self.unary(op.on_equal_operands(), f));
        }
        if f == !g {
            return Ok(self.unary(op.on_complement_operands(), f));
        }
        if f.is_constant() {
            return Ok(self.unary(op.on_first_const(f == Edge::ONE), g));
        }
        if g.is_constant() {
            return Ok(self.unary(op.on_second_const(g == Edge::ONE), f));
        }
        // Strong canonical operand form: fold complement attributes and
        // operand order into the operator (the paper's `updateop`).
        if f.is_complemented() {
            f = !f;
            op = op.complement_first();
        }
        if g.is_complemented() {
            g = !g;
            op = op.complement_second();
        }
        if f.node() > g.node() {
            std::mem::swap(&mut f, &mut g);
            op = op.swap_operands();
        }
        let mut out_c = false;
        if op.eval(false, false) {
            op = op.complement_output();
            out_c = true;
        }
        // Operators that degenerated to projections under the rewrites.
        if op == BoolOp::FALSE {
            return Ok(Edge::ZERO.complement_if(out_c));
        }
        if op == BoolOp::FIRST {
            return Ok(f.complement_if(out_c));
        }
        if op == BoolOp::SECOND {
            return Ok(g.complement_if(out_c));
        }

        // (β) computed table.
        let (k1, k2, tag) = (f.bits() as u64, g.bits() as u64, op.table() as u32);
        if let Some(r) = self.cache.get(k1, k2, tag) {
            return Ok(Edge::from_bits(r as u32).complement_if(out_c));
        }

        // Budget checkpoint at the cache-miss boundary: this frame is
        // about to materialize at most one new node. Aborting here leaves
        // only fully-committed nodes behind (the cache insert below runs
        // strictly after a successful make_node), so the manager stays
        // consistent.
        budget.checkpoint()?;

        // (γ) recurse on the biconditional expansion at the top level.
        let lf = self.node(f.node()).level();
        let lg = self.node(g.node()).level();
        let i = lf.max(lg);
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let e = self.apply_rec(op, fe, ge, budget)?;
        let d = self.apply_rec(op, fd, gd, budget)?;
        let r = self.make_node(i, d, e);
        self.cache.insert(k1, k2, tag, r.bits() as u64);
        Ok(r.complement_if(out_c))
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`, computed with its own recursion
    /// and computed-table entries.
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (s, a, b) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let mux = mgr.ite(s, a, b);
    /// assert!(mgr.eval(mux, &[true, true, false]));
    /// assert!(!mgr.eval(mux, &[false, true, false]));
    /// ```
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.try_ite(f, g, h, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::ite`] under a resource budget (see [`Bbdd::try_apply`] for
    /// the checkpoint and abort-safety contract).
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.ite_rec(f, g, h, budget)
    }

    pub(crate) fn ite_rec(
        &mut self,
        mut f: Edge,
        mut g: Edge,
        mut h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.stats.ite_calls += 1;
        // Terminal and two-operand degenerations.
        if f == Edge::ONE {
            return Ok(g);
        }
        if f == Edge::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Ok(!f);
        }
        if f == g || g == Edge::ONE {
            return self.apply_rec(BoolOp::OR, f, h, budget);
        }
        if f == !g || g == Edge::ZERO {
            return self.apply_rec(BoolOp::NOT_AND, f, h, budget);
        }
        if f == h || h == Edge::ZERO {
            return self.apply_rec(BoolOp::AND, f, g, budget);
        }
        if f == !h || h == Edge::ONE {
            return self.apply_rec(BoolOp::IMPLIES, f, g, budget);
        }
        // Canonical form: regular f (swap branches), regular g (complement
        // the output).
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        let mut out_c = false;
        if g.is_complemented() {
            g = !g;
            h = !h;
            out_c = true;
        }
        let k1 = f.bits() as u64;
        let k2 = ((g.bits() as u64) << 32) | h.bits() as u64;
        if let Some(r) = self.cache.get(k1, k2, TAG_ITE) {
            return Ok(Edge::from_bits(r as u32).complement_if(out_c));
        }
        budget.checkpoint()?;
        let mut i = self.node(f.node()).level();
        for e in [g, h] {
            if let Some(l) = self.edge_level(e) {
                i = i.max(l);
            }
        }
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let (hd, he) = self.cofactors(h, i);
        let e = self.ite_rec(fe, ge, he, budget)?;
        let d = self.ite_rec(fd, gd, hd, budget)?;
        let r = self.make_node(i, d, e);
        self.cache.insert(k1, k2, TAG_ITE, r.bits() as u64);
        Ok(r.complement_if(out_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively compare a BBDD against a reference function over all
    /// assignments of `n` variables.
    fn check(mgr: &Bbdd, f: Edge, n: usize, reference: impl Fn(&[bool]) -> bool) {
        for m in 0..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                mgr.eval(f, &assignment),
                reference(&assignment),
                "assignment {assignment:?}"
            );
        }
    }

    #[test]
    fn all_sixteen_ops_on_two_literals() {
        for op in BoolOp::all() {
            let mut mgr = Bbdd::new(2);
            let (a, b) = (mgr.var(0), mgr.var(1));
            let f = mgr.apply(op, a, b);
            check(&mgr, f, 2, |v| op.eval(v[0], v[1]));
            assert!(mgr.validate().is_ok(), "op {op:?}");
        }
    }

    #[test]
    fn ops_between_composite_functions() {
        let mut mgr = Bbdd::new(4);
        let vs: Vec<Edge> = (0..4).map(|i| mgr.var(i)).collect();
        let ab = mgr.and(vs[0], vs[1]);
        let cd = mgr.xor(vs[2], vs[3]);
        for op in BoolOp::all() {
            let f = mgr.apply(op, ab, cd);
            check(&mgr, f, 4, |v| op.eval(v[0] && v[1], v[2] ^ v[3]));
        }
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn biconditional_expansion_identity() {
        // Fig. 1 semantics: f = (v⊕w)·f_{v≠w} + (v⊙w)·f_{v=w} for random f.
        let mut mgr = Bbdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let t0 = mgr.and(b, c);
        let f = mgr.xor(a, t0);
        let top = mgr.node(f.node()).level();
        let (fd, fe) = mgr.cofactors(f, top);
        let vw_neq = mgr.xor(a, b);
        let t1 = mgr.and(vw_neq, fd);
        let t2_pre = mgr.xnor(a, b);
        let t2 = mgr.and(t2_pre, fe);
        let rebuilt = mgr.or(t1, t2);
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn xor_chain_is_half_linear_size() {
        // BBDDs absorb one variable pair per node on parity: n-input XOR
        // takes n/2 nodes (a BDD needs n) — the headline expressive-power
        // advantage for XOR-rich logic.
        let n = 16;
        let mut mgr = Bbdd::new(n);
        let mut f = mgr.var(0);
        for i in 1..n {
            let v = mgr.var(i);
            f = mgr.xor(f, v);
        }
        assert_eq!(mgr.node_count(f), n / 2, "parity BBDD must have n/2 nodes");
        // Odd-width parity additionally keeps the dangling literal.
        let mut mgr = Bbdd::new(7);
        let mut g = mgr.var(0);
        for i in 1..7 {
            let v = mgr.var(i);
            g = mgr.xor(g, v);
        }
        assert_eq!(mgr.node_count(g), 4);
    }

    #[test]
    fn apply_is_canonical_across_build_orders() {
        let mut mgr = Bbdd::new(4);
        let vs: Vec<Edge> = (0..4).map(|i| mgr.var(i)).collect();
        // (a∧b) ∨ (c∧d), built two different ways.
        let ab = mgr.and(vs[0], vs[1]);
        let cd = mgr.and(vs[2], vs[3]);
        let f1 = mgr.or(ab, cd);
        let nab = mgr.nand(vs[0], vs[1]);
        let ncd = mgr.nand(vs[2], vs[3]);
        let f2 = mgr.nand(nab, ncd);
        assert_eq!(f1, f2, "canonicity: same function, same edge");
    }

    #[test]
    fn ite_matches_apply_composition() {
        let mut mgr = Bbdd::new(3);
        let (s, a, b) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let direct = mgr.ite(s, a, b);
        let t1 = mgr.and(s, a);
        let t2_pre = !s;
        let t2 = mgr.and(t2_pre, b);
        let composed = mgr.or(t1, t2);
        assert_eq!(direct, composed);
    }

    #[test]
    fn ite_terminal_cases() {
        let mut mgr = Bbdd::new(2);
        let (a, b) = (mgr.var(0), mgr.var(1));
        assert_eq!(mgr.ite(Edge::ONE, a, b), a);
        assert_eq!(mgr.ite(Edge::ZERO, a, b), b);
        assert_eq!(mgr.ite(a, b, b), b);
        assert_eq!(mgr.ite(a, Edge::ONE, Edge::ZERO), a);
        assert_eq!(mgr.ite(a, Edge::ZERO, Edge::ONE), !a);
        let and = mgr.and(a, b);
        assert_eq!(mgr.ite(a, b, Edge::ZERO), and);
        let or = mgr.or(a, b);
        assert_eq!(mgr.ite(a, Edge::ONE, b), or);
    }

    #[test]
    fn demorgan_via_complement_edges() {
        let mut mgr = Bbdd::new(2);
        let (a, b) = (mgr.var(0), mgr.var(1));
        let lhs = mgr.nand(a, b);
        let rhs_pre = (!a, !b);
        let rhs = mgr.or(rhs_pre.0, rhs_pre.1);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn cache_reuses_results() {
        let mut mgr = Bbdd::new(8);
        let vs: Vec<Edge> = (0..8).map(|i| mgr.var(i)).collect();
        let mut f = vs[0];
        for &v in &vs[1..] {
            f = mgr.xor(f, v);
        }
        let calls_before = mgr.stats().apply_calls;
        let mut g = vs[0];
        for &v in &vs[1..] {
            g = mgr.xor(g, v);
        }
        let second_pass = mgr.stats().apply_calls - calls_before;
        assert_eq!(f, g);
        // Rebuilt from cached subresults: far fewer recursive entries.
        assert!(second_pass < 60, "cache ineffective: {second_pass} calls");
    }
}

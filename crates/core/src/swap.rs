//! Adjacent variable swap in the chain variable order — the paper's Fig. 2
//! swap theory (§IV-A4).
//!
//! Swapping the order positions of two adjacent variables `x` (level `i+1`)
//! and `y` (level `i`) involves **three** CVO levels, because the level
//! above (`i+2`, pair `(w, x)`) holds the out-going variable as its SV:
//!
//! ```text
//!   before:  (w ⋆ x) @ i+2,   (x ⋆ y) @ i+1,   (y ⋆ z) @ i
//!   after:   (w ⋆ y) @ i+2,   (y ⋆ x) @ i+1,   (x ⋆ z) @ i
//! ```
//!
//! With path conditions `a=[w⊕x], b=[x⊕y], c=[y⊕z]` before the swap and
//! `a'=[w⊕y], b'=[y⊕x], c'=[x⊕z]` after, transitivity of equality in the
//! binary domain (the paper's Eq. 5) gives the grand-children remap
//!
//! ```text
//!   (a, b, c) = (a' ⊕ b',  b',  b' ⊕ c')
//! ```
//!
//! Every affected node is rebuilt and **overwritten in place** so that all
//! edges from the BBDD above the swap window keep pointing at the same
//! logical function (the paper's locality requirement). The rebuild runs in
//! a *staging area*: new tuples are deduplicated there, surviving old nodes
//! *adopt* their new tuple (keeping their pointer), fresh intermediate
//! nodes receive new slots, and only then is everything re-inserted into
//! the per-level unique tables.
//!
//! Two structural facts make in-place overwriting sound (asserted in
//! debug builds and exercised by the property tests):
//!
//! * a node's function always keeps a root *inside* the window — a node at
//!   level `ℓ` depends on its PV, so the rebuilt representation is rooted at
//!   the level where that variable lands (possibly one level up or down,
//!   trading places with other nodes, never colliding: distinct functions
//!   have distinct canonical tuples);
//! * polarity never flips: the all-`=`-edges spine of a node is regular by
//!   the canonical form, the remap maps the all-equal path to the all-equal
//!   path (`(0,0,0) ↦ (0,0,0)`), and `=`-children of restaged nodes are
//!   rebuilt from that spine, so a claimed tuple always carries a regular
//!   `=`-edge.

use crate::edge::Edge;
use crate::manager::Bbdd;
use crate::node::{Node, NodeKey};
use ddcore::fxhash::FxHashMap;

/// Reference to either a committed arena node or a staged node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SRef {
    Final(u32),
    Staged(u32),
}

/// Edge in staging space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SEdge {
    r: SRef,
    c: bool,
}

impl SEdge {
    const ONE: SEdge = SEdge {
        r: SRef::Final(0),
        c: false,
    };
    const ZERO: SEdge = SEdge {
        r: SRef::Final(0),
        c: true,
    };

    #[inline]
    fn flip(self) -> SEdge {
        SEdge {
            r: self.r,
            c: !self.c,
        }
    }

    #[inline]
    fn complement_if(self, c: bool) -> SEdge {
        if c {
            self.flip()
        } else {
            self
        }
    }

    #[inline]
    fn from_edge(e: Edge) -> SEdge {
        SEdge {
            r: SRef::Final(e.node()),
            c: e.is_complemented(),
        }
    }
}

/// A node being rebuilt or freshly created during a swap.
#[derive(Debug, Clone, Copy)]
struct StagedNode {
    level: u16,
    shannon: bool,
    neq: SEdge,
    eq: SEdge,
    /// `Some(id)`: this tuple is the new content of existing arena node
    /// `id` (pointer-preserving overwrite).
    owner: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SKey {
    level: u16,
    shannon: bool,
    neq: SEdge,
    eq: SEdge,
}

/// Cofactor value in *old* semantics: either a real edge (stable region) or
/// the virtual positive literal of an old PV inside the swap window.
#[derive(Debug, Clone, Copy)]
enum VEdge {
    Real(Edge),
    OldLit { level: u16, c: bool },
}

#[derive(Debug)]
pub(crate) struct SwapCtx {
    staged: Vec<StagedNode>,
    tab: FxHashMap<SKey, u32>,
    /// Bottom level of the swap window (`L0`); final nodes may only be
    /// referenced below it.
    l0: u16,
}

impl SwapCtx {
    fn new(l0: u16) -> Self {
        SwapCtx {
            staged: Vec::new(),
            tab: FxHashMap::default(),
            l0,
        }
    }

    fn reset(&mut self, l0: u16) {
        self.staged.clear();
        self.tab.clear();
        self.l0 = l0;
    }

    fn intern(&mut self, key: SKey, owner: Option<u32>) -> u32 {
        if let Some(&k) = self.tab.get(&key) {
            if let Some(id) = owner {
                assert!(
                    self.staged[k as usize].owner.is_none(),
                    "BBDD swap: two surviving nodes claim one canonical tuple"
                );
                self.staged[k as usize].owner = Some(id);
            }
            return k;
        }
        let k = self.staged.len() as u32;
        self.staged.push(StagedNode {
            level: key.level,
            shannon: key.shannon,
            neq: key.neq,
            eq: key.eq,
            owner,
        });
        self.tab.insert(key, k);
        k
    }
}

impl Bbdd {
    /// Swap the variables at adjacent top-based order positions `pos` and
    /// `pos + 1`, updating the CVO and rewriting the (up to) three affected
    /// levels in place. All existing [`Edge`]s keep denoting the same
    /// Boolean functions.
    ///
    /// # Panics
    /// Panics if `pos + 1 >= num_vars()`.
    pub fn swap_adjacent(&mut self, pos: usize) {
        let n = self.num_vars();
        assert!(pos + 1 < n, "swap position out of range");
        let hi = (n - 1 - pos) as u16; // bottom-based level of π_pos
        self.swap_levels(hi - 1);
    }

    /// Swap the PVs of bottom-based levels `lo+1` and `lo`.
    pub(crate) fn swap_levels(&mut self, lo: u16) {
        let timer = ddcore::obs::prof_timer();
        let l0 = lo;
        let l1 = lo + 1;
        assert!((l1 as usize) < self.num_vars());
        let l2 = if (l1 as usize) + 1 < self.num_vars() {
            Some(lo + 2)
        } else {
            None
        };

        let ids0 = self.subtables[l0 as usize].values();
        let ids1 = self.subtables[l1 as usize].values();
        let ids2 = l2.map(|l| self.subtables[l as usize].values());

        let mut ctx = self.take_swap_scratch(l0);
        for &id in &ids0 {
            self.rebuild_l0(&mut ctx, id, l0, l1);
        }
        for &id in &ids1 {
            self.rebuild_l1(&mut ctx, id, l0, l1);
        }
        if let (Some(l2), Some(ids2)) = (l2, &ids2) {
            for &id in ids2 {
                self.rebuild_l2(&mut ctx, id, l0, l1, l2);
            }
        }
        let claimed = ctx.staged.iter().filter(|s| s.owner.is_some()).count();
        debug_assert_eq!(
            claimed,
            ids0.len() + ids1.len() + ids2.as_ref().map_or(0, Vec::len),
            "every old node must adopt exactly one new tuple"
        );

        self.commit(&mut ctx, l0, l1, l2);
        self.put_swap_scratch(ctx);
        self.var_at_level.swap(l0 as usize, l1 as usize);
        self.level_of_var[self.var_at_level[l0 as usize] as usize] = l0 as u32;
        self.level_of_var[self.var_at_level[l1 as usize] as usize] = l1 as u32;
        self.stats.swaps += 1;
        ddcore::obs::prof_record(ddcore::obs::Op::Swap, timer);
    }

    /// Old level-`i` node `p` (pair `(y, z)`): its variable `y` moves up, so
    /// `p` re-roots at `L1` over the new pair `(y, x)` with children over
    /// `(x, z)` whose branches swap (Fig. 2c):
    /// `p(y:=x') = node(L0, ≠: P_E, =: P_D)`,
    /// `p(y:=x)  = node(L0, ≠: P_D, =: P_E)`.
    fn rebuild_l0(&mut self, ctx: &mut SwapCtx, id: u32, l0: u16, l1: u16) {
        let nd = *self.node(id);
        if nd.is_shannon() {
            self.claim(ctx, id, l1, true, SEdge::ZERO, SEdge::ONE);
            return;
        }
        let pd = SEdge::from_edge(nd.neq());
        let pe = SEdge::from_edge(nd.eq());
        let c_neq = self.stage(ctx, l0, pe, pd);
        let c_eq = self.stage(ctx, l0, pd, pe);
        self.claim(ctx, id, l1, false, c_neq, c_eq);
    }

    /// Old level-`i+1` node `m` (pair `(x, y)`): expand to the four
    /// grand-cofactors `m_{b,c}` and reassemble under the remap
    /// `m'_{b',c'} = m_{b', b'⊕c'}` (Fig. 2b). If the two new children
    /// coincide, `m` does not depend on `y` and migrates down to `L0`.
    fn rebuild_l1(&mut self, ctx: &mut SwapCtx, id: u32, l0: u16, l1: u16) {
        let nd = *self.node(id);
        if nd.is_shannon() {
            self.claim(ctx, id, l0, true, SEdge::ZERO, SEdge::ONE);
            return;
        }
        // Fast path: both children below the window. The node's condition
        // [x ⊕ y] is symmetric in the swapped pair, so the tuple is
        // invariant — re-claim it unchanged.
        if self.below_window(nd.neq(), l0) && self.below_window(nd.eq(), l0) {
            self.claim(
                ctx,
                id,
                l1,
                false,
                SEdge::from_edge(nd.neq()),
                SEdge::from_edge(nd.eq()),
            );
            return;
        }
        // (m_{b,1}, m_{b,0}) for b = 1 (≠-child) and b = 0 (=-child).
        let (m11, m10) = self.cofactors(nd.neq(), l0);
        let (m01, m00) = self.cofactors(nd.eq(), l0);
        let child1 = self.stage(ctx, l0, SEdge::from_edge(m10), SEdge::from_edge(m11));
        let child0 = self.stage(ctx, l0, SEdge::from_edge(m01), SEdge::from_edge(m00));
        self.claim(ctx, id, l1, false, child1, child0);
    }

    /// Old level-`i+2` node `N` (pair `(w, x)`): expand to the eight
    /// grand-cofactors `N_{a,b,c}` (Fig. 2a) and reassemble under
    /// `N'_{a',b',c'} = N_{a'⊕b', b', b'⊕c'}`. Uses virtual literals so
    /// that cofactoring through the window never materializes nodes with
    /// stale (pre-swap) semantics.
    fn rebuild_l2(&mut self, ctx: &mut SwapCtx, id: u32, l0: u16, l1: u16, l2: u16) {
        let nd = *self.node(id);
        if nd.is_shannon() {
            self.claim(ctx, id, l2, true, SEdge::ZERO, SEdge::ONE);
            return;
        }
        // Fast path: both children below the window. Only the SV of the
        // node's condition changes (x → y), which re-roots the children
        // one level down with swapped branches and no grand-cofactoring:
        //   f_{w≠y} = node(L1, ≠: E, =: D),  f_{w=y} = node(L1, ≠: D, =: E).
        if self.below_window(nd.neq(), l0) && self.below_window(nd.eq(), l0) {
            let d = SEdge::from_edge(nd.neq());
            let e = SEdge::from_edge(nd.eq());
            let mid1 = self.stage(ctx, l1, e, d);
            let mid0 = self.stage(ctx, l1, d, e);
            self.claim(ctx, id, l2, false, mid1, mid0);
            return;
        }
        // First expansion: condition b over the old pair (x, y) at L1.
        let (n1_1, n1_0) = self.vcof(ctx, VEdge::Real(nd.neq()), l1);
        let (n0_1, n0_0) = self.vcof(ctx, VEdge::Real(nd.eq()), l1);
        // Second expansion: condition c over the old pair (y, z) at L0.
        let mut nabc = [[[SEdge::ZERO; 2]; 2]; 2];
        for (a, b, v) in [
            (1usize, 1usize, n1_1),
            (1, 0, n1_0),
            (0, 1, n0_1),
            (0, 0, n0_0),
        ] {
            let (c1, c0) = self.vcof(ctx, v, l0);
            nabc[a][b][1] = SEdge::from_edge(Self::as_real(c1));
            nabc[a][b][0] = SEdge::from_edge(Self::as_real(c0));
        }
        // Remap and reassemble bottom-up.
        let inner = |mgr: &mut Self, ctx: &mut SwapCtx, ap: usize, bp: usize| {
            let neq = nabc[ap ^ bp][bp][bp ^ 1];
            let eq = nabc[ap ^ bp][bp][bp];
            mgr.stage(ctx, l0, neq, eq)
        };
        let i11 = inner(self, ctx, 1, 1);
        let i10 = inner(self, ctx, 1, 0);
        let i01 = inner(self, ctx, 0, 1);
        let i00 = inner(self, ctx, 0, 0);
        let mid1 = self.stage(ctx, l1, i11, i10);
        let mid0 = self.stage(ctx, l1, i01, i00);
        self.claim(ctx, id, l2, false, mid1, mid0);
    }

    fn as_real(v: VEdge) -> Edge {
        match v {
            VEdge::Real(e) => e,
            VEdge::OldLit { .. } => {
                unreachable!("BBDD swap: virtual literal survived below the window")
            }
        }
    }

    /// Old-semantics biconditional cofactors of a possibly-virtual edge at
    /// `level`.
    fn vcof(&mut self, ctx: &SwapCtx, v: VEdge, level: u16) -> (VEdge, VEdge) {
        match v {
            VEdge::Real(e) => {
                if e.is_constant() {
                    return (v, v);
                }
                let n = *self.node(e.node());
                if n.level() < level {
                    return (v, v);
                }
                debug_assert_eq!(n.level(), level);
                let c = e.is_complemented();
                if n.is_shannon() {
                    self.old_lit_pair(ctx, level, c)
                } else {
                    (
                        VEdge::Real(n.neq().complement_if(c)),
                        VEdge::Real(n.eq().complement_if(c)),
                    )
                }
            }
            VEdge::OldLit { level: k, c } => {
                if k < level {
                    (v, v)
                } else {
                    debug_assert_eq!(k, level);
                    self.old_lit_pair(ctx, level, c)
                }
            }
        }
    }

    /// Cofactors of the (old) positive literal of `level`'s PV:
    /// `(SV', SV)`, where the SV literal is virtual while it lies inside
    /// the swap window.
    fn old_lit_pair(&mut self, ctx: &SwapCtx, level: u16, c: bool) -> (VEdge, VEdge) {
        if level == 0 {
            return (
                VEdge::Real(Edge::ZERO.complement_if(c)),
                VEdge::Real(Edge::ONE.complement_if(c)),
            );
        }
        let k = level - 1;
        if k < ctx.l0 {
            let lit = self.shannon_node(k); // stable region: safe to create
            (
                VEdge::Real((!lit).complement_if(c)),
                VEdge::Real(lit.complement_if(c)),
            )
        } else {
            (
                VEdge::OldLit { level: k, c: !c },
                VEdge::OldLit { level: k, c },
            )
        }
    }

    /// Stage the biconditional tuple `(level, neq, eq)` applying R2, the
    /// complement normalization and R4 in *new* semantics.
    fn stage(&mut self, ctx: &mut SwapCtx, level: u16, mut neq: SEdge, mut eq: SEdge) -> SEdge {
        if neq == eq {
            return eq; // R2
        }
        let mut out_c = false;
        if eq.c {
            neq = neq.flip();
            eq = eq.flip();
            out_c = true;
        }
        if neq == eq.flip() && self.is_new_lit_below(ctx, eq, level) {
            let lit = self.stage_shannon(ctx, level);
            return lit.complement_if(out_c); // R4
        }
        let key = SKey {
            level,
            shannon: false,
            neq,
            eq,
        };
        let k = ctx.intern(key, None);
        SEdge {
            r: SRef::Staged(k),
            c: out_c,
        }
    }

    fn stage_shannon(&mut self, ctx: &mut SwapCtx, level: u16) -> SEdge {
        let key = SKey {
            level,
            shannon: true,
            neq: SEdge::ZERO,
            eq: SEdge::ONE,
        };
        let k = ctx.intern(key, None);
        SEdge {
            r: SRef::Staged(k),
            c: false,
        }
    }

    /// Is `e` the regular positive literal of the level below `level`, in
    /// post-swap semantics?
    fn is_new_lit_below(&self, ctx: &SwapCtx, e: SEdge, level: u16) -> bool {
        if e.c {
            return false;
        }
        if level == 0 {
            return e == SEdge::ONE;
        }
        let below = level - 1;
        match e.r {
            SRef::Final(id) => {
                if id == 0 {
                    return false;
                }
                // Final nodes keep their semantics only below the window.
                below < ctx.l0 && {
                    let n = self.node(id);
                    n.is_shannon() && n.level() == below
                }
            }
            SRef::Staged(k) => {
                let s = &ctx.staged[k as usize];
                s.shannon && s.level == below
            }
        }
    }

    /// Register the new tuple of surviving old node `id` (pointer-
    /// preserving adoption), handling the level-migration (R2) case.
    fn claim(
        &mut self,
        ctx: &mut SwapCtx,
        id: u32,
        level: u16,
        shannon: bool,
        neq: SEdge,
        eq: SEdge,
    ) {
        if neq == eq {
            // The node's function does not depend on the new PV of `level`:
            // it migrates to the root of its (single) child, which is
            // always a regular staged node — see the module docs.
            match (neq.r, neq.c) {
                (SRef::Staged(k), false) => {
                    assert!(
                        ctx.staged[k as usize].owner.is_none(),
                        "BBDD swap: migrated node collides with an owned tuple"
                    );
                    ctx.staged[k as usize].owner = Some(id);
                }
                _ => panic!("BBDD swap: migrated node collapsed outside the staging area"),
            }
            return;
        }
        assert!(
            !eq.c,
            "BBDD swap: claim with complemented =-edge (polarity flip)"
        );
        debug_assert!(
            shannon || !(neq == eq.flip() && self.is_new_lit_below(ctx, eq, level)),
            "BBDD swap: surviving biconditional node degenerated to a literal"
        );
        let key = SKey {
            level,
            shannon,
            neq,
            eq,
        };
        ctx.intern(key, Some(id));
    }

    /// Is the edge's target strictly below the swap window?
    #[inline]
    fn below_window(&self, e: Edge, l0: u16) -> bool {
        match self.edge_level(e) {
            None => true,
            Some(l) => l < l0,
        }
    }

    fn take_swap_scratch(&mut self, l0: u16) -> SwapCtx {
        match self.swap_scratch.take() {
            Some(mut ctx) => {
                ctx.reset(l0);
                ctx
            }
            None => SwapCtx::new(l0),
        }
    }

    fn put_swap_scratch(&mut self, ctx: SwapCtx) {
        self.swap_scratch = Some(ctx);
    }

    /// Write the staged forest back: reuse owned slots, allocate fresh ones
    /// for reachable unowned nodes, refill the three subtables.
    fn commit(&mut self, ctx: &mut SwapCtx, l0: u16, l1: u16, l2: Option<u16>) {
        let staged = &ctx.staged;
        // Reachability from owned (adopted) nodes; unreferenced fresh
        // intermediates are dropped instead of becoming instant garbage.
        let mut used = vec![false; staged.len()];
        let mut stack: Vec<u32> = (0..staged.len() as u32)
            .filter(|&k| staged[k as usize].owner.is_some())
            .collect();
        while let Some(k) = stack.pop() {
            if used[k as usize] {
                continue;
            }
            used[k as usize] = true;
            for e in [staged[k as usize].neq, staged[k as usize].eq] {
                if let SRef::Staged(j) = e.r {
                    stack.push(j);
                }
            }
        }

        self.subtables[l0 as usize].clear();
        self.subtables[l1 as usize].clear();
        if let Some(l2) = l2 {
            self.subtables[l2 as usize].clear();
        }

        let mut final_id = vec![u32::MAX; staged.len()];
        for (k, s) in staged.iter().enumerate() {
            if !used[k] {
                continue;
            }
            final_id[k] = match s.owner {
                Some(id) => id,
                None => {
                    // Fresh slot for a genuinely new node.
                    if let Some(id) = self.free_slot() {
                        id
                    } else {
                        self.nodes.push(Node::terminal());
                        (self.nodes.len() - 1) as u32
                    }
                }
            };
        }

        let resolve = |e: SEdge| -> Edge {
            match e.r {
                SRef::Final(id) => Edge::new(id, e.c),
                SRef::Staged(k) => {
                    debug_assert_ne!(final_id[k as usize], u32::MAX);
                    Edge::new(final_id[k as usize], e.c)
                }
            }
        };

        for (k, s) in staged.iter().enumerate() {
            if !used[k] {
                continue;
            }
            let id = final_id[k];
            let neq = resolve(s.neq);
            let eq = resolve(s.eq);
            self.nodes[id as usize] = Node::new(s.level, s.shannon, neq, eq);
            let key = NodeKey::new(s.shannon, neq, eq);
            debug_assert!(
                self.subtables[s.level as usize].get(&key).is_none(),
                "BBDD swap: duplicate canonical tuple after commit"
            );
            self.subtables[s.level as usize].insert(key, id);
            self.stats.nodes_created += u64::from(s.owner.is_none());
        }
    }

    fn free_slot(&mut self) -> Option<u32> {
        self.pop_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcore::boolop::BoolOp;

    /// Build a moderately entangled function over `n` variables.
    fn build_mixed(mgr: &mut Bbdd, n: usize, seed: u64) -> Edge {
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let ops = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
            BoolOp::NOR,
        ];
        let mut f = vs[(seed % n as u64) as usize];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..2 * n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = ops[(state >> 33) as usize % ops.len()];
            let v = vs[(state >> 20) as usize % n];
            let _ = i;
            f = mgr.apply(op, f, v);
        }
        f
    }

    fn truth_of(mgr: &Bbdd, f: Edge, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    #[test]
    fn swap_two_variables_preserves_all_functions() {
        for seed in 0..20u64 {
            let n = 4;
            let mut mgr = Bbdd::new(n);
            let f = build_mixed(&mut mgr, n, seed);
            let g = build_mixed(&mut mgr, n, seed + 100);
            let tf = truth_of(&mgr, f, n);
            let tg = truth_of(&mgr, g, n);
            for pos in 0..n - 1 {
                mgr.swap_adjacent(pos);
                assert_eq!(truth_of(&mgr, f, n), tf, "seed {seed} pos {pos} (f)");
                assert_eq!(truth_of(&mgr, g, n), tg, "seed {seed} pos {pos} (g)");
                mgr.validate().unwrap();
            }
        }
    }

    #[test]
    fn swap_at_top_has_no_level_above() {
        let n = 3;
        let mut mgr = Bbdd::new(n);
        let f = build_mixed(&mut mgr, n, 7);
        let tf = truth_of(&mgr, f, n);
        mgr.swap_adjacent(0); // swaps the two topmost variables
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
        assert_eq!(mgr.order(), vec![1, 0, 2]);
    }

    #[test]
    fn swap_twice_restores_order_and_sizes() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        let f = build_mixed(&mut mgr, n, 3);
        let _f = mgr.pin(f);
        mgr.gc();
        let order0 = mgr.order();
        let size0 = mgr.live_nodes();
        for pos in 0..n - 1 {
            mgr.swap_adjacent(pos);
            mgr.swap_adjacent(pos);
            mgr.gc();
            assert_eq!(mgr.order(), order0, "pos {pos}");
            assert_eq!(
                mgr.live_nodes(),
                size0,
                "pos {pos}: double swap must be identity"
            );
            mgr.validate().unwrap();
        }
    }

    #[test]
    fn xor_pair_trades_places() {
        // f = x ⊕ z over order (w, x, y, z) exercises the level-migration
        // case: the (x,y)-level node and the (y,z)-level XNOR node trade
        // levels under swap(x, y).
        let mut mgr = Bbdd::new(4);
        let (x, z) = (mgr.var(1), mgr.var(3));
        let f = mgr.xor(x, z);
        let y_related = {
            let y = mgr.var(2);
            let zz = mgr.var(3);
            mgr.xor(y, zz)
        };
        let tf = truth_of(&mgr, f, 4);
        let tg = truth_of(&mgr, y_related, 4);
        mgr.swap_adjacent(1); // swap x and y
        assert_eq!(truth_of(&mgr, f, 4), tf);
        assert_eq!(truth_of(&mgr, y_related, 4), tg);
        mgr.validate().unwrap();
        // After the swap f = x⊕z is adjacent (x above z? order w,y,x,z) →
        // single XNOR node (complemented): 1 internal node.
        assert_eq!(mgr.node_count(f), 1);
    }

    #[test]
    fn literal_nodes_swap_levels() {
        let mut mgr = Bbdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ta = truth_of(&mgr, a, 3);
        let tb = truth_of(&mgr, b, 3);
        mgr.swap_adjacent(0);
        assert_eq!(truth_of(&mgr, a, 3), ta);
        assert_eq!(truth_of(&mgr, b, 3), tb);
        assert_eq!(mgr.order(), vec![1, 0, 2]);
        mgr.validate().unwrap();
    }

    #[test]
    fn random_walks_of_swaps_preserve_semantics() {
        let n = 7;
        for seed in 0..6u64 {
            let mut mgr = Bbdd::new(n);
            let f = build_mixed(&mut mgr, n, seed);
            let tf = truth_of(&mgr, f, n);
            let mut state = seed | 1;
            for step in 0..40 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pos = (state >> 33) as usize % (n - 1);
                mgr.swap_adjacent(pos);
                assert_eq!(truth_of(&mgr, f, n), tf, "seed {seed} step {step}");
                mgr.validate().unwrap();
            }
        }
    }
}

//! Higher-level function analysis and construction helpers: satisfying
//! assignments, truth-table and cube constructors — the utilities an EDA
//! client of the package reaches for first.

use crate::edge::Edge;
use crate::manager::Bbdd;

impl Bbdd {
    /// One satisfying assignment of `f`, or `None` when `f` is
    /// unsatisfiable. The assignment covers all variables (unconstrained
    /// ones default to `false`).
    ///
    /// ```
    /// use bbdd::Bbdd;
    /// let mut mgr = Bbdd::new(3);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let nb = !b;
    /// let f = mgr.and(a, nb);
    /// let sat = mgr.pick_sat(f).expect("satisfiable");
    /// assert!(mgr.eval(f, &sat));
    /// assert!(mgr.pick_sat(mgr.zero()).is_none());
    /// ```
    pub fn pick_sat(&mut self, f: Edge) -> Option<Vec<bool>> {
        if f == Edge::ZERO {
            return None;
        }
        let n = self.num_vars();
        let mut assignment = vec![false; n];
        let mut g = f;
        // Restrict variable by variable, keeping a satisfiable branch.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let g1 = self.restrict(g, v, true);
            if g1 != Edge::ZERO {
                assignment[v] = true;
                g = g1;
            } else {
                g = self.restrict(g, v, false);
                debug_assert_ne!(g, Edge::ZERO, "both cofactors unsat for sat f");
            }
        }
        debug_assert_eq!(g, Edge::ONE);
        Some(assignment)
    }

    /// Build a function from a packed truth table (the format
    /// [`Bbdd::truth_table`] produces: bit `m` of the table = value on the
    /// assignment whose bit `i` is variable `i`).
    ///
    /// # Panics
    /// Panics if `num_vars() > 24` or the table is shorter than `2^n` bits.
    pub fn from_truth_table(&mut self, table: &[u64]) -> Edge {
        let n = self.num_vars();
        assert!(n <= 24, "truth tables limited to 24 variables");
        let bits = 1usize << n;
        assert!(
            table.len() * 64 >= bits,
            "table too short for {n} variables"
        );
        self.from_tt_rec(table, 0, bits)
    }

    /// Build the function of table segment `[lo, lo+len)` over the
    /// variables `0..log2(len)` — Shannon decomposition on the highest
    /// variable of the segment.
    #[allow(clippy::wrong_self_convention)]
    fn from_tt_rec(&mut self, table: &[u64], lo: usize, len: usize) -> Edge {
        if len == 1 {
            let bit = (table[lo / 64] >> (lo % 64)) & 1 == 1;
            return if bit { Edge::ONE } else { Edge::ZERO };
        }
        let half = len / 2;
        let f0 = self.from_tt_rec(table, lo, half);
        let f1 = self.from_tt_rec(table, lo + half, half);
        if f0 == f1 {
            return f0;
        }
        // The splitting variable: bit index log2(half).
        let var = half.trailing_zeros() as usize;
        let lit = self.var(var);
        self.ite(lit, f1, f0)
    }

    /// Build the conjunction of literals described by `cube`:
    /// `Some(true)` = positive literal, `Some(false)` = negative,
    /// `None` = unconstrained.
    ///
    /// # Panics
    /// Panics if `cube.len() != num_vars()`.
    pub fn cube(&mut self, cube: &[Option<bool>]) -> Edge {
        assert_eq!(cube.len(), self.num_vars(), "cube width");
        let mut acc = Edge::ONE;
        for (v, lit) in cube.iter().enumerate() {
            if let Some(pol) = lit {
                let l = self.var(v).complement_if(!pol);
                acc = self.and(acc, l);
            }
        }
        acc
    }

    /// Number of internal nodes at each bottom-based level for the
    /// diagrams rooted at `roots` — the level profile used by reordering
    /// heuristics and reported by the original package's log output.
    #[must_use]
    pub fn level_profile(&self, roots: &[Edge]) -> Vec<usize> {
        let mut profile = vec![0usize; self.num_vars()];
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            profile[n.level() as usize] += 1;
            for child in [n.neq(), n.eq()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_sat_finds_witnesses() {
        let mut mgr = Bbdd::new(6);
        // An equality constraint with a single solution per (a, b) pair.
        let mut f = mgr.one();
        for i in 0..3 {
            let a = mgr.var(2 * i);
            let b = mgr.var(2 * i + 1);
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        let sat = mgr.pick_sat(f).unwrap();
        assert!(mgr.eval(f, &sat));
        assert_eq!(sat[0], sat[1]);
        assert_eq!(sat[2], sat[3]);
        assert_eq!(sat[4], sat[5]);
        assert!(mgr.pick_sat(Edge::ZERO).is_none());
        let everything = mgr.pick_sat(Edge::ONE).unwrap();
        assert!(mgr.eval(Edge::ONE, &everything));
    }

    #[test]
    fn from_truth_table_roundtrips() {
        let mut mgr = Bbdd::new(4);
        // maj(a, b, c) ⊕ d as a 16-bit table.
        let mut table = 0u64;
        for m in 0..16u64 {
            let (a, b, c, d) = (
                m & 1 == 1,
                m >> 1 & 1 == 1,
                m >> 2 & 1 == 1,
                m >> 3 & 1 == 1,
            );
            #[allow(clippy::nonminimal_bool)]
            let maj = (a && b) || (b && c) || (a && c);
            if maj ^ d {
                table |= 1 << m;
            }
        }
        let f = mgr.from_truth_table(&[table]);
        assert_eq!(mgr.truth_table(f), vec![table]);
        // Round-trip again through the other direction.
        let g = {
            let tt = mgr.truth_table(f);
            mgr.from_truth_table(&tt)
        };
        assert_eq!(f, g, "canonicity through table round-trip");
    }

    #[test]
    fn cube_builds_minterms() {
        let mut mgr = Bbdd::new(4);
        let c = mgr.cube(&[Some(true), None, Some(false), None]);
        assert_eq!(mgr.sat_count(c), 4);
        assert!(mgr.eval(c, &[true, false, false, true]));
        assert!(!mgr.eval(c, &[true, false, true, true]));
        let full = mgr.cube(&[None, None, None, None]);
        assert_eq!(full, Edge::ONE);
    }

    #[test]
    fn level_profile_counts_nodes() {
        let mut mgr = Bbdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let profile = mgr.level_profile(&[f]);
        assert_eq!(profile.iter().sum::<usize>(), mgr.node_count(f));
        // The XNOR node sits at the top level (bottom-based index n-1).
        assert_eq!(profile[3], 1);
    }
}

#[cfg(test)]
mod auto_reorder_tests {
    use crate::manager::Bbdd;

    #[test]
    fn auto_reorder_fires_and_rearms() {
        // Equality with a hostile order grows fast; arm the trigger low.
        let k = 6;
        let mut mgr = Bbdd::new(2 * k);
        mgr.set_auto_reorder(64);
        let mut f = mgr.one();
        for i in 0..k {
            let a = mgr.var(i);
            let b = mgr.var(i + k);
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        let before = mgr.live_nodes();
        let _pin = mgr.pin(f); // the registry, not a list, keeps f alive
        let fired = mgr.reorder_if_needed();
        assert!(fired, "threshold was crossed: {before} nodes");
        assert!(mgr.live_nodes() < before);
        assert!(mgr.validate().is_ok());
        // Re-armed above the new size: an immediate second call is a no-op.
        assert!(!mgr.reorder_if_needed());
        // Function intact.
        assert!(mgr.eval(
            f,
            &[true, false, true, false, true, false, true, false, true, false, true, false]
        ));
    }

    #[test]
    fn disarmed_managers_never_reorder() {
        let mut mgr = Bbdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(3);
        let f = mgr.xor(a, b);
        let _f = mgr.pin(f);
        assert!(!mgr.reorder_if_needed());
        assert_eq!(mgr.order(), vec![0, 1, 2, 3]);
    }
}

//! # bbdd — a Biconditional Binary Decision Diagram manipulation package
//!
//! A from-scratch Rust reproduction of
//! *L. Amarù, P.-E. Gaillardon, G. De Micheli, “An Efficient Manipulation
//! Package for Biconditional Binary Decision Diagrams”, DATE 2014.*
//!
//! **Biconditional BDDs** (BBDDs) are canonical binary decision diagrams
//! whose branching condition compares *two* variables per node: each node is
//! labelled with a primary variable `PV = v` and a secondary variable
//! `SV = w` and implements the biconditional expansion
//!
//! ```text
//! f = (v ⊕ w) · f_{v≠w}  +  (v ⊙ w) · f_{v=w}
//! ```
//!
//! Under the *chain variable order* (CVO) and reduction rules R1–R4 they are
//! canonical, remarkably compact for XOR-rich and arithmetic logic, and a
//! native abstraction for comparator-based emerging technologies.
//!
//! This crate implements the paper's four pillars:
//!
//! 1. **Strong canonical form** — hash-consed nodes in per-level unique
//!    tables with complement attributes restricted to `≠`-edges
//!    ([`Bbdd::apply`] returns equal [`Edge`]s iff functions are equal);
//! 2. **Recursive Boolean operations** — Algorithm 1 over the biconditional
//!    expansion with operator-rewriting (`updateop`) and a computed table
//!    ([`Bbdd::apply`], [`Bbdd::ite`]);
//! 3. **Performance-oriented memory management** — Cantor-pairing hashing,
//!    adaptive tables, overwrite-on-collision cache, mark-and-sweep GC
//!    ([`Bbdd::gc`]) tracing the owned-handle registry: functions held as
//!    [`BbddFn`] handles (created by [`Bbdd::fun`] and the `*_fn` ops) are
//!    roots by construction, and [`Bbdd::set_gc_threshold`] arms automatic
//!    collection for long-running sessions — no caller-maintained root
//!    lists anywhere;
//! 4. **Chain variable re-ordering** — the Fig. 2 three-level swap theory and
//!    Rudell-style sifting ([`Bbdd::swap_adjacent`], [`Bbdd::sift`]).
//!
//! ## Quick start
//!
//! ```
//! use bbdd::Bbdd;
//!
//! // A 4-variable manager; build the 2-bit equality comparator
//! // (a1=b1) ∧ (a0=b0), which BBDDs represent in 2 nodes.
//! let mut mgr = Bbdd::new(4);
//! let (a1, b1, a0, b0) = (mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3));
//! let hi = mgr.xnor(a1, b1);
//! let lo = mgr.xnor(a0, b0);
//! let eq = mgr.and(hi, lo);
//! assert_eq!(mgr.node_count(eq), 2);
//! assert_eq!(mgr.sat_count(eq), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod apply;
mod edge;
mod handle;
mod manager;
mod node;
mod ops;
mod par;
mod quant;
mod reorder;
mod serialize;
mod swap;

pub mod dot;

pub use ddcore::boolop::{BoolOp, Unary};
pub use ddcore::nary::NaryOp;
pub use edge::Edge;
pub use handle::BbddFn;
pub use manager::{Bbdd, BbddStats, NodeInfo};
pub use par::{ParBbdd, ParConfig, ParStats};
pub use reorder::SiftConfig;
pub use serialize::LoadError;

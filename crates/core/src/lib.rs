//! # bbdd — a Biconditional Binary Decision Diagram manipulation package
//!
//! A from-scratch Rust reproduction of
//! *L. Amarù, P.-E. Gaillardon, G. De Micheli, “An Efficient Manipulation
//! Package for Biconditional Binary Decision Diagrams”, DATE 2014.*
//!
//! **Biconditional BDDs** (BBDDs) are canonical binary decision diagrams
//! whose branching condition compares *two* variables per node: each node is
//! labelled with a primary variable `PV = v` and a secondary variable
//! `SV = w` and implements the biconditional expansion
//!
//! ```text
//! f = (v ⊕ w) · f_{v≠w}  +  (v ⊙ w) · f_{v=w}
//! ```
//!
//! Under the *chain variable order* (CVO) and reduction rules R1–R4 they are
//! canonical, remarkably compact for XOR-rich and arithmetic logic, and a
//! native abstraction for comparator-based emerging technologies.
//!
//! This crate implements the paper's four pillars:
//!
//! 1. **Strong canonical form** — hash-consed nodes in per-level unique
//!    tables with complement attributes restricted to `≠`-edges
//!    ([`Bbdd::apply`] returns equal [`Edge`]s iff functions are equal);
//! 2. **Recursive Boolean operations** — Algorithm 1 over the biconditional
//!    expansion with operator-rewriting (`updateop`) and a computed table
//!    ([`Bbdd::apply`], [`Bbdd::ite`]);
//! 3. **Performance-oriented memory management** — Cantor-pairing hashing,
//!    adaptive tables, overwrite-on-collision cache, mark-and-sweep GC
//!    ([`Bbdd::gc`]) tracing the owned-handle registry: functions held as
//!    [`BbddFn`] handles (created through the [`prelude`] trait API) are
//!    roots by construction, and [`Bbdd::set_gc_threshold`] arms automatic
//!    collection for long-running sessions — no caller-maintained root
//!    lists anywhere;
//! 4. **Chain variable re-ordering** — the Fig. 2 three-level swap theory and
//!    Rudell-style sifting ([`Bbdd::swap_adjacent`], [`Bbdd::sift`]).
//!
//! ## Quick start
//!
//! The [`prelude`] exposes the unified trait API ([`ddcore::api`]) shared
//! by every manager in the workspace — owned GC-safe handles with operator
//! overloads:
//!
//! ```
//! use bbdd::prelude::*;
//!
//! // A 4-variable manager; build the 2-bit equality comparator
//! // (a1=b1) ∧ (a0=b0), which BBDDs represent in 2 nodes.
//! let mgr = BbddManager::with_vars(4);
//! let (a1, b1, a0, b0) = (mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3));
//! let eq = &a1.xnor(&b1) & &a0.xnor(&b0);
//! assert_eq!(eq.node_count(), 2);
//! assert_eq!(eq.sat_count(), 4);
//! ```
//!
//! The raw edge-level API ([`Bbdd`], [`Edge`]) remains available underneath
//! (`mgr.backend_mut()`) for recursion internals and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod api;
mod apply;
mod edge;
mod manager;
mod node;
mod ops;
mod par;
mod quant;
mod reorder;
mod serialize;
mod swap;

pub mod dot;

pub use api::prelude;
pub use api::{BbddFn, BbddManager, ParBbddFn, ParBbddManager};
pub use ddcore::boolop::{BoolOp, Unary};
pub use ddcore::govern::{CancelToken, OpAbort, OpBudget};
pub use ddcore::nary::NaryOp;
pub use edge::Edge;
pub use manager::{Bbdd, BbddStats, NodeInfo};
pub use par::{ParBbdd, ParConfig, ParStats};
pub use reorder::SiftConfig;
pub use serialize::{LoadError, SaveError};

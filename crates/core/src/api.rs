//! The [`ddcore::api`] backend implementations for the BBDD package.
//!
//! Both the sequential [`Bbdd`] and the fork-join [`ParBbdd`] implement
//! [`RawManager`], which derives the full [`FunctionManager`] /
//! [`BooleanFunction`](ddcore::api::BooleanFunction) pair through the
//! shared generic machinery: [`BbddManager`] / [`ParBbddManager`] are the
//! trait-level managers, [`BbddFn`] / [`ParBbddFn`] the owned handles.
//! There is no per-crate handle code left — clone/drop refcounting, the
//! registration-before-collection pinning rule and the operator overloads
//! all live once in `ddcore::api`.
//!
//! ```
//! use bbdd::prelude::*;
//!
//! let mgr = BbddManager::with_vars(3);
//! let (a, b) = (mgr.var(0), mgr.var(1));
//! let f = &a ^ &b;
//! drop(b);            // the XOR node stays alive through `f`
//! mgr.gc();           // no root list — the registry knows
//! assert!(f.eval(&[true, false, false]));
//! ```

use crate::edge::Edge;
use crate::manager::Bbdd;
use crate::par::ParBbdd;
use ddcore::api::{ManagerRef, RawManager};
use ddcore::boolop::BoolOp;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::roots::{RootGuard, RootSet};

/// The trait-level BBDD manager: [`ManagerRef`] over the sequential
/// backend. Start here unless you need the edge-level API.
pub type BbddManager = ManagerRef<Bbdd>;

/// The trait-level multi-core BBDD manager.
pub type ParBbddManager = ManagerRef<ParBbdd>;

/// An owned, reference-counted handle to a BBDD function (the generic
/// [`ddcore::api::Function`] over the sequential backend).
pub type BbddFn = ddcore::api::Function<Bbdd>;

/// An owned handle to a function of the multi-core BBDD manager.
pub type ParBbddFn = ddcore::api::Function<ParBbdd>;

impl RawManager for Bbdd {
    type Edge = Edge;

    fn with_vars(num_vars: usize) -> Self {
        Bbdd::new(num_vars)
    }

    fn num_vars(&self) -> usize {
        Bbdd::num_vars(self)
    }

    fn root_registry(&self) -> &RootSet {
        self.root_set()
    }

    fn edge_bits(e: Edge) -> u64 {
        u64::from(e.bits())
    }

    fn constant_edge(&self, value: bool) -> Edge {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn var_edge(&mut self, var: usize) -> Edge {
        self.var(var)
    }

    fn apply_edge(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.apply(op, f, g)
    }

    fn ite_edge(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.ite(f, g, h)
    }

    fn exists_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.exists(f, vars)
    }

    fn forall_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.forall(f, vars)
    }

    fn and_exists_edge(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.and_exists(f, g, vars)
    }

    fn try_apply_edge(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_apply(op, f, g, budget)
    }

    fn try_ite_edge(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_ite(f, g, h, budget)
    }

    fn try_exists_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_exists(f, vars, budget)
    }

    fn try_forall_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_forall(f, vars, budget)
    }

    fn try_and_exists_edge(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_and_exists(f, g, vars, budget)
    }

    fn try_compose_edge(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_compose(f, var, g, budget)
    }

    fn restrict_edge(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        self.restrict(f, var, value)
    }

    fn compose_edge(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.compose(f, var, g)
    }

    fn vector_compose_edge(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        self.vector_compose(f, subs)
    }

    fn eval_edge(&self, f: Edge, assignment: &[bool]) -> bool {
        self.eval(f, assignment)
    }

    fn sat_count_edge(&self, f: Edge) -> u128 {
        self.sat_count(f)
    }

    fn sat_count_checked_edge(&self, f: Edge) -> Option<u128> {
        self.sat_count_checked(f)
    }

    fn try_sat_count_edge(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.try_sat_count(f, budget)
    }

    fn any_sat_edge(&self, f: Edge) -> Option<Vec<bool>> {
        self.any_sat(f)
    }

    fn all_sat_edge(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        self.all_sat(f, limit)
    }

    fn node_count_edge(&self, f: Edge) -> usize {
        self.node_count(f)
    }

    fn shared_node_count_edges(&self, roots: &[Edge]) -> usize {
        self.shared_node_count(roots)
    }

    fn support_edge(&mut self, f: Edge) -> Vec<usize> {
        self.support(f)
    }

    fn to_dot_edges(&self, roots: &[Edge], names: &[&str]) -> String {
        self.to_dot(roots, names)
    }

    fn level_profile_edges(&self, roots: &[Edge]) -> Option<Vec<usize>> {
        Some(self.level_profile(roots))
    }

    fn after_op(&mut self) {
        self.maybe_auto_gc();
    }

    fn gc(&mut self) -> usize {
        Bbdd::gc(self)
    }

    fn set_gc_threshold(&mut self, threshold: usize) {
        Bbdd::set_gc_threshold(self, threshold);
    }

    fn gc_threshold(&self) -> usize {
        Bbdd::gc_threshold(self)
    }

    fn live_nodes(&self) -> usize {
        Bbdd::live_nodes(self)
    }

    fn try_sift(&mut self) -> Option<usize> {
        // An installed policy's strategy takes precedence over plain
        // Rudell sifting, so `reorder()` and the scheduled firings agree
        // on the algorithm.
        match self.reorder_policy() {
            Some(p) => Some(
                self.sift_strategy(p.strategy, &mut OpBudget::unlimited())
                    .expect("unlimited budget never aborts"),
            ),
            None => Some(self.sift()),
        }
    }

    fn sift_bounded(&mut self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
        match self.reorder_policy() {
            Some(p) => Some(self.sift_strategy(p.strategy, budget)),
            None => Some(Bbdd::sift_bounded(self, budget)),
        }
    }

    fn reorder_with(
        &mut self,
        strategy: ddcore::dvo::DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        Some(self.sift_strategy(strategy, budget))
    }

    fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        Bbdd::set_reorder_policy(self, policy);
    }

    fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        Bbdd::reorder_policy(self)
    }

    fn set_auto_reorder(&mut self, threshold: usize) {
        Bbdd::set_auto_reorder(self, threshold);
    }

    fn reorder_if_needed(&mut self) -> bool {
        Bbdd::reorder_if_needed(self)
    }

    fn reorder_if_needed_bounded(&mut self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        Bbdd::reorder_if_needed_bounded(self, budget)
    }

    fn set_order(&mut self, order: &[usize]) -> bool {
        self.reorder_to(order);
        true
    }

    fn variable_order(&self) -> Vec<usize> {
        self.order()
    }

    fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "bbdd: {} apply calls, {} ite calls, {} nodes created, {} GCs ({} freed), \
             {} swaps, peak {}",
            s.apply_calls,
            s.ite_calls,
            s.nodes_created,
            s.gc_runs,
            s.nodes_freed,
            s.swaps,
            s.peak_live_nodes
        )
    }

    fn observe(&self) -> ddcore::MetricsSnapshot {
        self.metrics_snapshot()
    }

    fn note_governed(&mut self, checkpoints: u64, abort: Option<OpAbort>) {
        self.govern.note(checkpoints, abort);
    }
}

impl Bbdd {
    /// Pin a raw edge as a GC root until the returned guard drops — the
    /// edge-level liveness primitive. (Trait-level code never needs this:
    /// every [`BbddFn`] is a registered root by construction.)
    #[must_use]
    pub fn pin(&self, e: Edge) -> RootGuard {
        self.root_set().guard(u64::from(e.bits()))
    }
}

impl ddcore::session::SessionBackend for Bbdd {
    fn fork(&self) -> Self {
        self.fork_state()
    }
}

impl RawManager for ParBbdd {
    type Edge = Edge;

    /// Default-configured parallel backend; the thread count comes from
    /// `BBDD_THREADS` (falling back to 4).
    fn with_vars(num_vars: usize) -> Self {
        ParBbdd::from_env(num_vars, 4)
    }

    fn num_vars(&self) -> usize {
        ParBbdd::num_vars(self)
    }

    fn root_registry(&self) -> &RootSet {
        self.inner().root_set()
    }

    fn edge_bits(e: Edge) -> u64 {
        u64::from(e.bits())
    }

    fn constant_edge(&self, value: bool) -> Edge {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn var_edge(&mut self, var: usize) -> Edge {
        self.var(var)
    }

    fn apply_edge(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.apply(op, f, g)
    }

    fn ite_edge(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.ite(f, g, h)
    }

    fn exists_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.exists(f, vars)
    }

    fn forall_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.forall(f, vars)
    }

    fn and_exists_edge(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.and_exists(f, g, vars)
    }

    fn try_apply_edge(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_apply(op, f, g, budget)
    }

    fn try_ite_edge(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_ite(f, g, h, budget)
    }

    fn try_exists_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_exists(f, vars, budget)
    }

    fn try_forall_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_forall(f, vars, budget)
    }

    fn try_and_exists_edge(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_and_exists(f, g, vars, budget)
    }

    fn try_compose_edge(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_compose(f, var, g, budget)
    }

    // The remaining ops have no parallel phase; they run on the wrapped
    // sequential manager and are part of the same deterministic history.

    fn restrict_edge(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        self.inner_mut().restrict(f, var, value)
    }

    fn compose_edge(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.inner_mut().compose(f, var, g)
    }

    fn vector_compose_edge(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        self.inner_mut().vector_compose(f, subs)
    }

    fn eval_edge(&self, f: Edge, assignment: &[bool]) -> bool {
        self.eval(f, assignment)
    }

    fn sat_count_edge(&self, f: Edge) -> u128 {
        self.sat_count(f)
    }

    fn sat_count_checked_edge(&self, f: Edge) -> Option<u128> {
        self.sat_count_checked(f)
    }

    fn try_sat_count_edge(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.try_sat_count(f, budget)
    }

    fn any_sat_edge(&self, f: Edge) -> Option<Vec<bool>> {
        self.any_sat(f)
    }

    fn all_sat_edge(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        self.inner().all_sat(f, limit)
    }

    fn node_count_edge(&self, f: Edge) -> usize {
        self.node_count(f)
    }

    fn shared_node_count_edges(&self, roots: &[Edge]) -> usize {
        self.inner().shared_node_count(roots)
    }

    fn support_edge(&mut self, f: Edge) -> Vec<usize> {
        self.inner_mut().support(f)
    }

    fn to_dot_edges(&self, roots: &[Edge], names: &[&str]) -> String {
        self.inner().to_dot(roots, names)
    }

    fn level_profile_edges(&self, roots: &[Edge]) -> Option<Vec<usize>> {
        Some(self.inner().level_profile(roots))
    }

    /// The handle boundary of the parallel front-end: run the latched
    /// automatic GC (the result was registered first — the merge-GC pinning
    /// rule), then sync the concurrent-cache epoch so a collection through
    /// *any* path invalidates the id-keyed lossy cache.
    fn after_op(&mut self) {
        self.inner_mut().maybe_auto_gc();
        self.sync_cache_epoch();
    }

    fn gc(&mut self) -> usize {
        self.collect()
    }

    fn set_gc_threshold(&mut self, threshold: usize) {
        ParBbdd::set_gc_threshold(self, threshold);
    }

    fn gc_threshold(&self) -> usize {
        self.inner().gc_threshold()
    }

    fn live_nodes(&self) -> usize {
        ParBbdd::live_nodes(self)
    }

    /// Reordering on the parallel front-end delegates to the inner
    /// sequential manager. `&mut self` guarantees a quiescent point (no
    /// fork-join op in flight can hold overlay edges), and the sift's own
    /// collections advance the GC generation, so the epoch sync below
    /// invalidates the id-keyed concurrent cache exactly as a collection
    /// through any other path would.
    fn try_sift(&mut self) -> Option<usize> {
        let n = self.inner_mut().try_sift();
        self.sync_cache_epoch();
        n
    }

    fn sift_bounded(&mut self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
        let r = <Bbdd as RawManager>::sift_bounded(self.inner_mut(), budget);
        self.sync_cache_epoch();
        r
    }

    fn reorder_with(
        &mut self,
        strategy: ddcore::dvo::DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        let r = self.inner_mut().reorder_with(strategy, budget);
        self.sync_cache_epoch();
        r
    }

    fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        self.inner_mut().set_reorder_policy(policy);
    }

    fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        self.inner().reorder_policy()
    }

    fn set_auto_reorder(&mut self, threshold: usize) {
        self.inner_mut().set_auto_reorder(threshold);
    }

    fn reorder_if_needed(&mut self) -> bool {
        let ran = self.inner_mut().reorder_if_needed();
        self.sync_cache_epoch();
        ran
    }

    fn reorder_if_needed_bounded(&mut self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        let r = self.inner_mut().reorder_if_needed_bounded(budget);
        self.sync_cache_epoch();
        r
    }

    fn set_order(&mut self, order: &[usize]) -> bool {
        let ok = self.inner_mut().set_order(order);
        // `reorder_to` swaps without collecting, so the GC generation may
        // not have moved — collect explicitly to force the epoch bump
        // (installing an order is a cold pre-build path).
        self.collect();
        ok
    }

    fn variable_order(&self) -> Vec<usize> {
        self.inner().order()
    }

    fn stats_line(&self) -> String {
        let s = self.stats();
        let p = self.par_stats();
        format!(
            "par-bbdd: {} apply calls, {} nodes created, {} GCs, {} parallel ops \
             ({} sequential fallback), {} leaf tasks",
            s.apply_calls,
            s.nodes_created,
            s.gc_runs,
            p.ops_parallel,
            p.ops_sequential,
            p.tasks_executed
        )
    }

    fn observe(&self) -> ddcore::MetricsSnapshot {
        let mut m = ddcore::MetricsSnapshot::new("par-bbdd");
        let p = self.par_stats();
        // One unified cache.* section: the lock-free concurrent cache's
        // counters are folded into the inner sequential cache's.
        self.inner().fill_metrics(&mut m, Some(p.cache));
        m.counter("par.ops_parallel", p.ops_parallel);
        m.counter("par.ops_sequential", p.ops_sequential);
        m.counter("par.tasks_executed", p.tasks_executed);
        m.counter("par.tasks_stolen", p.tasks_stolen);
        m.counter("par.recursions", p.par_recursions);
        m.counter("par.nodes_imported", p.nodes_imported);
        m.counter("par.overlay_nodes", p.overlay_nodes);
        m.counter("par.shard_contention", p.shard_contention);
        m
    }

    fn note_governed(&mut self, checkpoints: u64, abort: Option<OpAbort>) {
        self.inner_mut().govern.note(checkpoints, abort);
    }
}

impl ParBbdd {
    /// Pin a raw edge as a GC root until the returned guard drops (see
    /// [`Bbdd::pin`]).
    #[must_use]
    pub fn pin(&self, e: Edge) -> RootGuard {
        self.inner().pin(e)
    }
}

impl ddcore::session::SessionBackend for ParBbdd {
    fn fork(&self) -> Self {
        self.fork_state()
    }
}

/// Everything needed to drive the BBDD package through the unified API:
/// the trait pair, the manager references and handle aliases, plus the
/// operator types shared by all backends.
pub mod prelude {
    pub use super::{BbddFn, BbddManager, ParBbddFn, ParBbddManager};
    pub use crate::{Bbdd, BoolOp, Edge, ParBbdd, ParConfig};
    pub use ddcore::api::{BooleanFunction, FunctionManager, ManagerRef};
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcore::api::{BooleanFunction, FunctionManager};

    #[test]
    fn handles_pin_nodes_across_gc() {
        let mgr = BbddManager::with_vars(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = &a ^ &b;
        drop(a);
        drop(b);
        assert_eq!(mgr.external_roots(), 1);
        mgr.gc();
        assert!(f.eval(&[true, false, false, false]));
        assert!(mgr.backend().validate().is_ok());
        drop(f);
        assert_eq!(mgr.external_roots(), 0);
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 0, "sink-only once all handles drop");
    }

    #[test]
    fn auto_gc_reclaims_dead_intermediates() {
        let mgr = BbddManager::with_vars(6);
        mgr.set_gc_threshold(1); // latch on every node creation
        let vs: Vec<BbddFn> = (0..6).map(|v| mgr.var(v)).collect();
        let mut acc = mgr.constant(true);
        for v in &vs {
            acc = acc.xnor(v); // old acc handle drops each round
        }
        assert!(mgr.backend().stats().gc_runs > 0, "auto-GC must have fired");
        for m in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let parity = a.iter().filter(|&&x| x).count() % 2 == 0;
            assert_eq!(acc.eval(&a), parity);
        }
        assert!(mgr.backend().validate().is_ok());
    }

    #[test]
    fn trait_ops_match_edge_ops() {
        let mgr = BbddManager::with_vars(4);
        let vs: Vec<BbddFn> = (0..4).map(|v| mgr.var(v)).collect();
        let f = &vs[0] & &vs[1];
        let g = &vs[2] | &vs[3];
        let h = vs[0].ite(&f, &g);
        let ex = h.exists(&[1]);
        let fa = h.forall(&[1]);
        let ae = f.and_exists(&g, &[2]);
        let r = h.restrict(0, true);
        let c = f.compose(0, &g);
        let nf = !&f;
        mgr.gc();
        // Mirror with raw edges (no GC in between, so raw is safe here).
        let mut b = mgr.backend_mut();
        let (a0, a1, a2, a3) = (b.var(0), b.var(1), b.var(2), b.var(3));
        let fe = b.and(a0, a1);
        let ge = b.or(a2, a3);
        let he = b.ite(a0, fe, ge);
        assert_eq!(f.edge(), fe);
        assert_eq!(g.edge(), ge);
        assert_eq!(h.edge(), he);
        assert_eq!(ex.edge(), b.exists(he, &[1]));
        assert_eq!(fa.edge(), b.forall(he, &[1]));
        assert_eq!(ae.edge(), b.and_exists(fe, ge, &[2]));
        assert_eq!(r.edge(), b.restrict(he, 0, true));
        assert_eq!(c.edge(), b.compose(fe, 0, ge));
        assert_eq!(nf.edge(), !fe);
    }

    #[test]
    fn par_manager_drives_the_same_suite() {
        let mgr = ParBbddManager::new(ParBbdd::new(4, 4));
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = &a ^ &b;
        assert!(f.eval(&[true, false, false, false]));
        assert_eq!(f.sat_count(), 8);
        mgr.gc();
        assert!(f.eval(&[false, true, false, false]));
        assert!(
            mgr.reorder().is_some(),
            "parallel backend reorders via its inner manager"
        );
        assert!(
            f.eval(&[true, false, false, false]),
            "order change is semantic-free"
        );
        mgr.set_reorder_policy(Some("pair:growth2".parse().unwrap()));
        assert_eq!(
            mgr.reorder_policy().map(|p| p.strategy),
            Some(ddcore::dvo::DvoStrategy::Pair)
        );
    }
}

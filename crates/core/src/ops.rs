//! Queries and structural operations on BBDD functions: evaluation,
//! counting, satisfiability counting, cofactoring by a single variable
//! (`restrict`), single-variable composition and semantic support.
//!
//! The cube quantification / simultaneous-composition / model-enumeration
//! suite lives in `quant.rs` (the verification ops layer).

use crate::edge::Edge;
use crate::manager::Bbdd;
use ddcore::fxhash::FxHashMap as HashMap;
use ddcore::govern::{OpAbort, OpBudget};

impl Bbdd {
    /// Evaluate `f` under a complete variable assignment
    /// (`assignment[v]` = value of variable `v`).
    ///
    /// # Panics
    /// Panics if `assignment.len() < num_vars()`.
    #[must_use]
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars(),
            "assignment must cover all {} variables",
            self.num_vars()
        );
        let mut e = f;
        loop {
            if e.is_constant() {
                return e == Edge::ONE;
            }
            let n = self.node(e.node());
            let level = n.level();
            let v = assignment[self.var_at_level[level as usize] as usize];
            let w = if n.is_shannon() {
                true // fictitious SV = 1
            } else {
                debug_assert!(level > 0, "level-0 nodes are Shannon by construction");
                assignment[self.var_at_level[level as usize - 1] as usize]
            };
            let child = if v != w { n.neq() } else { n.eq() };
            e = child.complement_if(e.is_complemented());
        }
    }

    /// Number of internal nodes reachable from `f` (the sink is not
    /// counted). This is the paper's "node count" for a single function.
    #[must_use]
    pub fn node_count(&self, f: Edge) -> usize {
        self.shared_node_count(&[f])
    }

    /// Number of distinct internal nodes reachable from any of `roots` —
    /// the size of a shared multi-output BBDD (Table I's metric).
    #[must_use]
    pub fn shared_node_count(&self, roots: &[Edge]) -> usize {
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            for child in [n.neq(), n.eq()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        seen.len()
    }

    /// Number of satisfying assignments of `f` over all `num_vars()`
    /// variables.
    ///
    /// Each biconditional branch fixes the PV relative to the SV, so a node
    /// at level `ℓ` satisfies `|f| = |f_{v≠w}| + |f_{v=w}|` over `ℓ+1`
    /// variables, with powers of two for skipped levels.
    ///
    /// # Panics
    /// Panics if `num_vars() > 127` (count would overflow `u128`). For a
    /// non-panicking variant see [`Bbdd::sat_count_checked`].
    #[must_use]
    pub fn sat_count(&self, f: Edge) -> u128 {
        let n = self.num_vars();
        assert!(n <= 127, "sat_count overflows u128 beyond 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::default();
        self.sat_edge(f, n as u32, &mut memo)
    }

    /// [`Bbdd::sat_count`], or `None` when the manager has more than 127
    /// variables (the count could overflow `u128`; `u128::MAX` itself is
    /// never a valid count at ≤ 127 variables, so `Some` values are exact).
    #[must_use]
    pub fn sat_count_checked(&self, f: Edge) -> Option<u128> {
        if self.num_vars() > 127 {
            None
        } else {
            Some(self.sat_count(f))
        }
    }

    /// [`Bbdd::sat_count`] under a resource budget: the budget is polled
    /// at every memo-miss (each counted node once), so a deadline or
    /// cancellation aborts a count over a huge diagram promptly. Counting
    /// allocates no nodes; an abort leaves no trace in the manager at all.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if `num_vars() > 127`, like [`Bbdd::sat_count`].
    pub fn try_sat_count(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        let n = self.num_vars();
        assert!(n <= 127, "sat_count overflows u128 beyond 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::default();
        self.try_sat_edge(f, n as u32, &mut memo, budget)
    }

    /// `sat_count / 2^n` as a float (usable for any variable count).
    #[must_use]
    pub fn sat_fraction(&self, f: Edge) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::default();
        fn frac(mgr: &Bbdd, e: Edge, memo: &mut HashMap<u32, f64>) -> f64 {
            if e.is_constant() {
                return if e == Edge::ONE { 1.0 } else { 0.0 };
            }
            let id = e.node();
            let raw = if let Some(&r) = memo.get(&id) {
                r
            } else {
                let n = *mgr.node(id);
                let r = 0.5 * (frac(mgr, n.neq(), memo) + frac(mgr, n.eq(), memo));
                memo.insert(id, r);
                r
            };
            if e.is_complemented() {
                1.0 - raw
            } else {
                raw
            }
        }
        frac(self, f, &mut memo)
    }

    /// Count over the `k` bottom-most variables (the sub-universe of an
    /// edge hanging below a node at level `k`).
    fn sat_edge(&self, e: Edge, k: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if e.is_constant() {
            return if e == Edge::ONE { 1u128 << k } else { 0 };
        }
        let id = e.node();
        let level = self.node(id).level() as u32;
        debug_assert!(level < k);
        let raw = if let Some(&r) = memo.get(&id) {
            r
        } else {
            let n = *self.node(id);
            // Children live over `level` variables; each branch determines
            // the PV from the SV, so the two branch counts add up.
            let r = self.sat_edge(n.neq(), level, memo) + self.sat_edge(n.eq(), level, memo);
            memo.insert(id, r);
            r
        };
        let signed = if e.is_complemented() {
            (1u128 << (level + 1)) - raw
        } else {
            raw
        };
        signed << (k - level - 1)
    }

    /// [`Bbdd::sat_edge`] with a budget checkpoint at every memo miss.
    fn try_sat_edge(
        &self,
        e: Edge,
        k: u32,
        memo: &mut HashMap<u32, u128>,
        budget: &mut OpBudget,
    ) -> Result<u128, OpAbort> {
        if e.is_constant() {
            return Ok(if e == Edge::ONE { 1u128 << k } else { 0 });
        }
        let id = e.node();
        let level = self.node(id).level() as u32;
        debug_assert!(level < k);
        let raw = if let Some(&r) = memo.get(&id) {
            r
        } else {
            budget.checkpoint()?;
            let n = *self.node(id);
            let r = self.try_sat_edge(n.neq(), level, memo, budget)?
                + self.try_sat_edge(n.eq(), level, memo, budget)?;
            memo.insert(id, r);
            r
        };
        let signed = if e.is_complemented() {
            (1u128 << (level + 1)) - raw
        } else {
            raw
        };
        Ok(signed << (k - level - 1))
    }

    /// The cofactor `f|_{var = value}` (single-variable restriction).
    ///
    /// In a BBDD a variable appears both as the PV of its own level and as
    /// the SV of the level above, so restriction rebuilds both levels by
    /// Shannon-recombining with the neighbouring literal.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn restrict(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        self.try_restrict(f, var, value, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::restrict`] under a resource budget; polled at every
    /// memo-miss. On `Err` the manager stays fully usable and any partial
    /// results are reclaimed by the next GC.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn try_restrict(
        &mut self,
        f: Edge,
        var: usize,
        value: bool,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        let lv = self.level_of_var[var] as u16;
        let mut memo: HashMap<u32, Edge> = HashMap::default();
        self.restrict_rec(f, lv, value, &mut memo, budget)
    }

    fn restrict_rec(
        &mut self,
        f: Edge,
        lv: u16,
        value: bool,
        memo: &mut HashMap<u32, Edge>,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if f.is_constant() {
            return Ok(f);
        }
        let id = f.node();
        let c = f.is_complemented();
        let n = *self.node(id);
        if n.level() < lv {
            return Ok(f); // entirely below var: independent of it
        }
        if let Some(&r) = memo.get(&id) {
            return Ok(r.complement_if(c));
        }
        budget.checkpoint()?;
        let r = if n.level() == lv {
            if n.is_shannon() {
                // The literal itself.
                if value {
                    Edge::ONE
                } else {
                    Edge::ZERO
                }
            } else {
                // Node tests (v, w): f|_{v=1} = ite(w, f_eq, f_neq),
                //                    f|_{v=0} = ite(w, f_neq, f_eq).
                let w = self.lit_below(lv);
                if value {
                    self.ite_rec(w, n.eq(), n.neq(), budget)?
                } else {
                    self.ite_rec(w, n.neq(), n.eq(), budget)?
                }
            }
        } else if n.is_shannon() {
            // A literal of a higher variable: independent of var.
            Edge::new(id, false)
        } else {
            let rd = self.restrict_rec(n.neq(), lv, value, memo, budget)?;
            let re = self.restrict_rec(n.eq(), lv, value, memo, budget)?;
            if n.level() == lv + 1 {
                // Branching condition (u, v) mentions var as SV:
                // f|_{v=1} = ite(u, E', D'),  f|_{v=0} = ite(u, D', E').
                let u = self.shannon_node(n.level());
                if value {
                    self.ite_rec(u, re, rd, budget)?
                } else {
                    self.ite_rec(u, rd, re, budget)?
                }
            } else {
                self.make_node(n.level(), rd, re)
            }
        };
        memo.insert(id, r);
        Ok(r.complement_if(c))
    }

    /// Does `f` semantically depend on `var`?
    pub fn depends_on(&mut self, f: Edge, var: usize) -> bool {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        f0 != f1
    }

    /// The semantic support of `f`: every variable it depends on.
    ///
    /// Note that unlike BDDs, the set of PVs of reachable nodes is *not*
    /// the support (an XNOR node depends on its SV too), hence the
    /// restriction-based definition.
    pub fn support(&mut self, f: Edge) -> Vec<usize> {
        (0..self.num_vars())
            .filter(|&v| self.depends_on(f, v))
            .collect()
    }

    /// Substitute `var := g` in `f` (Boolean composition), computed as
    /// `(g ∧ f|_{var=1}) ∨ (¬g ∧ f|_{var=0})`. For simultaneous
    /// substitution of several variables see [`Bbdd::vector_compose`].
    pub fn compose(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.try_compose(f, var, g, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::compose`] under a resource budget; polled at every
    /// cache/memo-miss of the underlying restrictions and `ite`. On `Err`
    /// the manager stays fully usable.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_compose(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.stats.compose_calls += 1;
        let f1 = self.try_restrict(f, var, true, budget)?;
        let f0 = self.try_restrict(f, var, false, budget)?;
        self.ite_rec(g, f1, f0, budget)
    }

    /// The complete truth table of `f` as packed 64-bit words; bit `m` of
    /// the table is `f` evaluated on the assignment whose bit `i` gives
    /// variable `i`.
    ///
    /// Intended for testing and cross-package equivalence checks.
    ///
    /// # Panics
    /// Panics if `num_vars() > 24` (table would exceed 2 MiB).
    #[must_use]
    pub fn truth_table(&self, f: Edge) -> Vec<u64> {
        let n = self.num_vars();
        assert!(n <= 24, "truth tables limited to 24 variables");
        let bits = 1usize << n;
        let words = bits.div_ceil(64);
        let mut out = vec![0u64; words];
        let mut assignment = vec![false; n];
        for m in 0..bits {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (m >> i) & 1 == 1;
            }
            if self.eval(f, &assignment) {
                out[m / 64] |= 1 << (m % 64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcore::boolop::BoolOp;

    fn majority3(mgr: &mut Bbdd) -> Edge {
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let ab = mgr.and(a, b);
        let bc = mgr.and(b, c);
        let ac = mgr.and(a, c);
        let t = mgr.or(ab, bc);
        mgr.or(t, ac)
    }

    #[test]
    fn eval_constants() {
        let mgr = Bbdd::new(2);
        assert!(mgr.eval(Edge::ONE, &[false, false]));
        assert!(!mgr.eval(Edge::ZERO, &[true, true]));
    }

    #[test]
    fn sat_count_known_functions() {
        let mut mgr = Bbdd::new(3);
        let maj = majority3(&mut mgr);
        assert_eq!(mgr.sat_count(maj), 4);
        let (a, b) = (mgr.var(0), mgr.var(1));
        let f = mgr.xor(a, b);
        assert_eq!(mgr.sat_count(f), 4); // 2 of 4 over (a,b), ×2 for c
        assert_eq!(mgr.sat_count(Edge::ONE), 8);
        assert_eq!(mgr.sat_count(Edge::ZERO), 0);
        let lit = mgr.var(2);
        assert_eq!(mgr.sat_count(lit), 4);
        assert!((mgr.sat_fraction(maj) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sat_count_matches_brute_force() {
        let mut mgr = Bbdd::new(5);
        let vs: Vec<Edge> = (0..5).map(|v| mgr.var(v)).collect();
        let t0 = mgr.xor(vs[0], vs[2]);
        let t1 = mgr.and(vs[1], t0);
        let t2 = mgr.or(t1, vs[4]);
        let f = mgr.xnor(t2, vs[3]);
        let mut brute = 0u128;
        for m in 0..32u32 {
            let a: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            if mgr.eval(f, &a) {
                brute += 1;
            }
        }
        assert_eq!(mgr.sat_count(f), brute);
    }

    #[test]
    fn restrict_pins_variables() {
        let mut mgr = Bbdd::new(3);
        let maj = majority3(&mut mgr);
        let (b, c) = (mgr.var(1), mgr.var(2));
        // maj(1, b, c) = b ∨ c ; maj(0, b, c) = b ∧ c.
        let r1 = mgr.restrict(maj, 0, true);
        let or = mgr.or(b, c);
        assert_eq!(r1, or);
        let r0 = mgr.restrict(maj, 0, false);
        let and = mgr.and(b, c);
        assert_eq!(r0, and);
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn restrict_every_var_of_random_function_exhaustive() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        // A function touching all variables with mixed operators.
        let mut f = vs[0];
        let ops = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
        ];
        for i in 1..n {
            f = mgr.apply(ops[(i - 1) % ops.len()], f, vs[i]);
        }
        for var in 0..n {
            for value in [false, true] {
                let r = mgr.restrict(f, var, value);
                for m in 0..(1u32 << n) {
                    let mut a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                    let restricted = mgr.eval(r, &a);
                    a[var] = value;
                    assert_eq!(restricted, mgr.eval(f, &a), "var {var}={value}, m={m}");
                }
                // The restriction must not depend on var any more.
                assert!(!mgr.depends_on(r, var));
            }
        }
    }

    #[test]
    fn support_is_semantic() {
        let mut mgr = Bbdd::new(4);
        let (a, c) = (mgr.var(0), mgr.var(2));
        let f = mgr.xor(a, c); // skips variable 1 entirely
        assert_eq!(mgr.support(f), vec![0, 2]);
        // XNOR node depends on its SV even though only one node exists.
        let b = mgr.var(1);
        let g = mgr.xnor(a, b);
        assert_eq!(mgr.support(g), vec![0, 1]);
    }

    #[test]
    fn quantification() {
        let mut mgr = Bbdd::new(3);
        let maj = majority3(&mut mgr);
        let ex = mgr.exists(maj, &[0]);
        let (b, c) = (mgr.var(1), mgr.var(2));
        let or = mgr.or(b, c);
        assert_eq!(ex, or, "∃a.maj = b ∨ c");
        let fa = mgr.forall(maj, &[0]);
        let and = mgr.and(b, c);
        assert_eq!(fa, and, "∀a.maj = b ∧ c");
        // Quantifying everything yields a constant.
        let all = mgr.exists(maj, &[0, 1, 2]);
        assert_eq!(all, Edge::ONE);
    }

    #[test]
    fn compose_substitutes() {
        let mut mgr = Bbdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let f = mgr.and(a, b);
        let g = mgr.or(b, c);
        let h = mgr.compose(f, 0, g); // (b ∨ c) ∧ b = b
        assert_eq!(h, b);
    }

    #[test]
    fn truth_table_packs_eval() {
        let mut mgr = Bbdd::new(3);
        let maj = majority3(&mut mgr);
        let tt = mgr.truth_table(maj);
        assert_eq!(tt.len(), 1);
        // maj(a,b,c) over bit order (a=bit0, b=bit1, c=bit2):
        // minterms {3,5,6,7} → 0b11101000.
        assert_eq!(tt[0] & 0xFF, 0b1110_1000);
    }

    #[test]
    fn node_count_shared() {
        let mut mgr = Bbdd::new(4);
        let (a, b) = (mgr.var(0), mgr.var(1));
        let f = mgr.xor(a, b);
        let g = mgr.xnor(a, b);
        assert_eq!(f, !g);
        assert_eq!(mgr.shared_node_count(&[f, g]), mgr.node_count(f));
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::manager::Bbdd;

    #[test]
    fn single_variable_manager_full_api() {
        let mut mgr = Bbdd::new(1);
        let a = mgr.var(0);
        assert_eq!(mgr.node_count(a), 1);
        assert_eq!(mgr.sat_count(a), 1);
        assert_eq!(mgr.support(a), vec![0]);
        let na = !a;
        assert_eq!(mgr.sat_count(na), 1);
        let t = mgr.xor(a, na);
        assert_eq!(t, Edge::ONE);
        let r = mgr.restrict(a, 0, true);
        assert_eq!(r, Edge::ONE);
        assert_eq!(mgr.truth_table(a), vec![0b10]);
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn eval_rejects_short_assignments() {
        let mut mgr = Bbdd::new(3);
        let a = mgr.var(0);
        let _ = mgr.eval(a, &[true]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_rejects_non_permutations() {
        let mut mgr = Bbdd::new(3);
        mgr.reorder_to(&[0, 0, 1]);
    }

    #[test]
    fn constants_through_every_query() {
        let mut mgr = Bbdd::new(4);
        assert_eq!(mgr.node_count(Edge::ONE), 0);
        assert_eq!(mgr.sat_count(Edge::ONE), 16);
        assert_eq!(mgr.sat_count(Edge::ZERO), 0);
        assert!(mgr.support(Edge::ONE).is_empty());
        assert_eq!(mgr.restrict(Edge::ZERO, 2, true), Edge::ZERO);
        let ex = mgr.exists(Edge::ONE, &[0, 1, 2, 3]);
        assert_eq!(ex, Edge::ONE);
        assert_eq!(mgr.truth_table(Edge::ZERO), vec![0]);
    }

    #[test]
    fn deep_skip_levels_are_handled() {
        // Function over the top and bottom variables only: edges skip 30
        // intermediate levels; counting must scale by the skipped powers.
        let mut mgr = Bbdd::new(32);
        let top = mgr.var(0);
        let bot = mgr.var(31);
        let f = mgr.and(top, bot);
        assert_eq!(mgr.sat_count(f), 1u128 << 30);
        assert_eq!(mgr.support(f), vec![0, 31]);
        let g = mgr.restrict(f, 31, true);
        assert_eq!(g, top);
    }
}

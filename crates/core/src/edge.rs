//! Edges with complement attributes.
//!
//! A BBDD function is referenced by an [`Edge`]: a node id plus a
//! *complement attribute*. The paper's canonicity rule (§III-D) admits only
//! the 1 sink node and allows the attribute on `PV≠SV` edges; constant 0 is
//! therefore the complemented edge to the 1 sink, and negation is a free,
//! O(1) bit flip.

/// Index of a node in the manager's arena.
pub(crate) type NodeIndex = u32;

/// A directed edge to a BBDD node, carrying the complement attribute.
///
/// `Edge` is the public handle for Boolean functions: every manager
/// operation consumes and produces edges. Edges are plain 32-bit values and
/// are only meaningful together with the [`Bbdd`](crate::Bbdd) manager that
/// created them.
///
/// ```
/// use bbdd::Edge;
/// assert_eq!(!Edge::ONE, Edge::ZERO);
/// assert_eq!(!Edge::ZERO, Edge::ONE);
/// assert!(Edge::ZERO.is_complemented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u32);

impl Edge {
    /// The constant-true function: the regular edge to the 1 sink.
    pub const ONE: Edge = Edge(0);
    /// The constant-false function: the complemented edge to the 1 sink.
    pub const ZERO: Edge = Edge(1);

    #[inline]
    pub(crate) fn new(node: NodeIndex, complemented: bool) -> Self {
        Edge((node << 1) | complemented as u32)
    }

    /// Arena index of the target node.
    #[inline]
    pub(crate) fn node(self) -> NodeIndex {
        self.0 >> 1
    }

    /// Whether the complement attribute is set.
    #[inline]
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same edge with the attribute cleared (the *regular* edge).
    #[inline]
    #[must_use]
    pub fn regular(self) -> Self {
        Edge(self.0 & !1)
    }

    /// Complement this edge if `c` is true.
    #[inline]
    #[must_use]
    pub fn complement_if(self, c: bool) -> Self {
        Edge(self.0 ^ c as u32)
    }

    /// `true` when this edge points at the 1 sink (constant function).
    #[inline]
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }

    /// The raw packed representation, used as a computed-table key.
    #[inline]
    pub(crate) fn bits(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn from_bits(bits: u32) -> Self {
        Edge(bits)
    }
}

impl std::ops::Not for Edge {
    type Output = Edge;

    /// Complement the function — a free operation thanks to edge attributes.
    #[inline]
    fn not(self) -> Edge {
        Edge(self.0 ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_complements() {
        assert_eq!(!Edge::ONE, Edge::ZERO);
        assert_eq!(Edge::ONE.node(), Edge::ZERO.node());
        assert!(Edge::ONE.is_constant() && Edge::ZERO.is_constant());
        assert!(!Edge::ONE.is_complemented());
        assert!(Edge::ZERO.is_complemented());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for id in [0u32, 1, 2, 1000, (1 << 30) - 1] {
            for c in [false, true] {
                let e = Edge::new(id, c);
                assert_eq!(e.node(), id);
                assert_eq!(e.is_complemented(), c);
                assert_eq!(e.regular().node(), id);
                assert!(!e.regular().is_complemented());
                assert_eq!(e.complement_if(true), !e);
                assert_eq!(e.complement_if(false), e);
            }
        }
    }

    #[test]
    fn double_complement_is_identity() {
        let e = Edge::new(42, true);
        assert_eq!(!!e, e);
    }
}

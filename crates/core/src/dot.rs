//! Graphviz DOT export for visual inspection of BBDDs.
//!
//! Nodes are labelled `PV⊕SV` (biconditional) or `PV` (Shannon / R4).
//! Solid arrows are `=`-edges, dashed arrows are `≠`-edges, and dotted
//! red decorations mark complement attributes, mirroring the figures of
//! the paper.

use crate::edge::Edge;
use crate::manager::Bbdd;
use std::collections::HashSet;
use std::fmt::Write as _;

impl Bbdd {
    /// Render the diagrams rooted at `roots` as a DOT digraph.
    ///
    /// `names` provides per-root labels; missing names default to `f{i}`.
    #[must_use]
    pub fn to_dot(&self, roots: &[Edge], names: &[&str]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bbdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        let _ = writeln!(out, "  one [shape=box, label=\"1\"];");

        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        for (i, r) in roots.iter().enumerate() {
            let name = names.get(i).copied().unwrap_or("");
            let label = if name.is_empty() {
                format!("f{i}")
            } else {
                name.to_string()
            };
            let _ = writeln!(out, "  root{i} [shape=plaintext, label=\"{label}\"];");
            let style = if r.is_complemented() {
                ", style=dotted, color=red"
            } else {
                ""
            };
            if r.is_constant() {
                let _ = writeln!(out, "  root{i} -> one [arrowhead=none{style}];");
            } else {
                let _ = writeln!(out, "  root{i} -> n{} [arrowhead=none{style}];", r.node());
                stack.push(r.node());
            }
        }
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            let lvl = n.level() as usize;
            let pv = self.var_at_level[lvl];
            let label = if n.is_shannon() {
                format!("x{pv}")
            } else {
                let sv = self.var_at_level[lvl - 1];
                format!("x{pv}⊕x{sv}")
            };
            let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
            for (child, dashed) in [(n.eq(), false), (n.neq(), true)] {
                let mut attrs = Vec::new();
                if dashed {
                    attrs.push("style=dashed".to_string());
                }
                if child.is_complemented() {
                    attrs.push("color=red".to_string());
                }
                let attr_s = if attrs.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", attrs.join(", "))
                };
                if child.is_constant() {
                    let _ = writeln!(out, "  n{id} -> one{attr_s};");
                } else {
                    let _ = writeln!(out, "  n{id} -> n{}{attr_s};", child.node());
                    stack.push(child.node());
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_mentions_all_nodes() {
        let mut mgr = Bbdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let t = mgr.xor(a, b);
        let f = mgr.and(t, c);
        let dot = mgr.to_dot(&[f], &["f"]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("⊕"), "biconditional label expected");
        assert!(dot.ends_with("}\n"));
        // Every reachable node appears exactly once as a definition.
        let defs = dot.matches(" [label=\"x").count();
        assert_eq!(defs, mgr.node_count(f));
    }

    #[test]
    fn dot_handles_constant_roots() {
        let mgr = Bbdd::new(1);
        let dot = mgr.to_dot(&[Edge::ONE, Edge::ZERO], &["t", "f"]);
        assert!(dot.contains("root0 -> one"));
        assert!(dot.contains("root1 -> one"));
    }
}

//! Plain-text serialization of BBDD forests.
//!
//! The format stores the manager's variable count and current order plus a
//! bottom-up node list and the root edges. Loading replays the nodes
//! through `make_node`, so a reloaded forest is re-canonicalized — loading
//! can only shrink a diagram, never corrupt it, and edge identities are
//! remapped safely.
//!
//! ```text
//! bbdd 1              # magic + format version
//! vars 4
//! order 0 1 2 3       # top-based variable order
//! node 5 0 B 1:1 0:0  # id level mode(B/S) neq(id:compl) eq(id:compl)
//! …
//! root f0 5:0
//! end
//! ```
//! Node id 0 is the 1-sink.

use crate::edge::Edge;
use crate::manager::Bbdd;
use std::collections::HashMap;
use std::fmt;

/// Problems encountered while parsing a serialized forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line number (0 when the input ended early).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BBDD load error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LoadError {}

/// Problems encountered while serializing a forest: a root (or a node
/// reachable from one) is not stored in the manager — a stale [`Edge`]
/// that survived past a GC of its function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveError {
    /// Index into the caller's `roots` slice of the offending root.
    pub root: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BBDD save error at root {}: {}", self.root, self.message)
    }
}

impl std::error::Error for SaveError {}

fn err(line: usize, message: &str) -> LoadError {
    LoadError {
        line,
        message: message.to_string(),
    }
}

impl Bbdd {
    /// Serialize the diagrams rooted at `roots` (named per `names`, or
    /// `f{i}`) into the textual format above.
    ///
    /// # Panics
    /// Panics if a root is a stale edge (its node was freed by GC). Use
    /// [`Bbdd::try_save`] to handle that case as an error instead.
    #[must_use]
    pub fn save(&self, roots: &[Edge], names: &[&str]) -> String {
        match self.try_save(roots, names) {
            Ok(text) => text,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Bbdd::save`], rejecting stale roots instead of panicking.
    ///
    /// An [`Edge`] kept as a plain value (outside an owned handle) can
    /// outlive its nodes: after a GC it indexes freed storage, and the old
    /// exporter silently wrote whatever bytes sat there. Every root is now
    /// checked against the store before any output is produced.
    ///
    /// # Errors
    /// [`SaveError`] naming the first root that is not stored.
    pub fn try_save(&self, roots: &[Edge], names: &[&str]) -> Result<String, SaveError> {
        use std::fmt::Write as _;
        for (i, e) in roots.iter().enumerate() {
            if !self.edge_is_stored(*e) {
                return Err(SaveError {
                    root: i,
                    message: format!(
                        "edge to node {} is stale (freed or never stored); \
                         hold functions as handles to keep them alive",
                        e.node()
                    ),
                });
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "bbdd 1");
        let _ = writeln!(out, "vars {}", self.num_vars());
        let order: Vec<String> = self.order().iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "order {}", order.join(" "));

        // Collect reachable nodes, emitted bottom-up (children first).
        let mut nodes: Vec<u32> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            let mut stack: Vec<u32> = roots.iter().filter_map(|e| self.edge_id(*e)).collect();
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                nodes.push(id);
                let info = self.node_info(Edge::new(id, false)).expect("reachable");
                for child in [info.neq, info.eq] {
                    if let Some(c) = self.edge_id(child) {
                        stack.push(c);
                    }
                }
            }
            nodes.sort_by_key(|&id| self.node_info(Edge::new(id, false)).expect("node").level);
        }
        let fmt_edge = |e: Edge| -> String {
            // `edge_id` is `None` exactly for constants, which the format
            // encodes as the sink id 0; every non-constant edge written
            // here hangs under a validated root, so its id is live.
            debug_assert!(self.edge_is_stored(e));
            let id = self.edge_id(e).unwrap_or(0);
            format!("{}:{}", id, u8::from(e.is_complemented()))
        };
        for &id in &nodes {
            let info = self.node_info(Edge::new(id, false)).expect("node");
            let _ = writeln!(
                out,
                "node {} {} {} {} {}",
                id,
                info.level,
                if info.shannon { 'S' } else { 'B' },
                fmt_edge(info.neq),
                fmt_edge(info.eq)
            );
        }
        for (i, r) in roots.iter().enumerate() {
            let name = names.get(i).copied().unwrap_or("");
            let label = if name.is_empty() {
                format!("f{i}")
            } else {
                name.to_string()
            };
            let _ = writeln!(out, "root {label} {}", fmt_edge(*r));
        }
        let _ = writeln!(out, "end");
        Ok(out)
    }

    /// [`Bbdd::save`] over owned handles — the GC-safe spelling for
    /// callers living in the handle world.
    #[must_use]
    pub fn save_fns(&self, roots: &[crate::BbddFn], names: &[&str]) -> String {
        let edges: Vec<Edge> = roots.iter().map(crate::BbddFn::edge).collect();
        self.save(&edges, names)
    }

    /// [`Bbdd::load`], returning a trait-level manager with the named
    /// roots as owned handles already registered — the forest is pinned
    /// from the first instant, so no collection point can strand it.
    ///
    /// # Errors
    /// Returns a [`LoadError`] for malformed input, out-of-range levels or
    /// forward references.
    pub fn load_fns(
        text: &str,
    ) -> Result<(crate::BbddManager, Vec<(String, crate::BbddFn)>), LoadError> {
        let (mgr, roots) = Bbdd::load(text)?;
        let mgr = crate::BbddManager::new(mgr);
        let handles = roots
            .into_iter()
            .map(|(name, e)| (name, mgr.lift(e)))
            .collect();
        Ok((mgr, handles))
    }

    /// Reconstruct a forest saved by [`Bbdd::save`] into a fresh manager.
    /// Returns the manager plus the named root edges in file order.
    ///
    /// # Errors
    /// Returns a [`LoadError`] for malformed input, out-of-range levels or
    /// forward references.
    pub fn load(text: &str) -> Result<(Bbdd, Vec<(String, Edge)>), LoadError> {
        let mut mgr: Option<Bbdd> = None;
        let mut saw_magic = false;
        let mut vars: Option<usize> = None;
        let mut remap: HashMap<u32, Edge> = HashMap::new();
        let mut roots: Vec<(String, Edge)> = Vec::new();
        let mut finished = false;

        let parse_edge =
            |tok: &str, remap: &HashMap<u32, Edge>, line: usize| -> Result<Edge, LoadError> {
                let (id_s, c_s) = tok
                    .split_once(':')
                    .ok_or_else(|| err(line, "edge must be id:compl"))?;
                let id: u32 = id_s.parse().map_err(|_| err(line, "bad edge id"))?;
                let c = match c_s {
                    "0" => false,
                    "1" => true,
                    _ => return Err(err(line, "edge complement must be 0 or 1")),
                };
                if id == 0 {
                    return Ok(Edge::ONE.complement_if(c));
                }
                remap
                    .get(&id)
                    .map(|e| e.complement_if(c))
                    .ok_or_else(|| err(line, &format!("node {id} referenced before definition")))
            };

        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let s = match raw.find('#') {
                Some(p) => raw[..p].trim(),
                None => raw.trim(),
            };
            if s.is_empty() || finished {
                continue;
            }
            let toks: Vec<&str> = s.split_whitespace().collect();
            match toks[0] {
                "bbdd" => {
                    if toks.get(1) != Some(&"1") {
                        return Err(err(line, "unsupported format version"));
                    }
                    saw_magic = true;
                }
                "vars" => {
                    let n: usize = toks
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line, "bad vars line"))?;
                    if n == 0 {
                        return Err(err(line, "vars must be positive"));
                    }
                    vars = Some(n);
                    mgr = Some(Bbdd::new(n));
                }
                "order" => {
                    let n = vars.ok_or_else(|| err(line, "order before vars"))?;
                    let order: Vec<usize> = toks[1..]
                        .iter()
                        .map(|t| t.parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(line, "bad order line"))?;
                    if order.len() != n {
                        return Err(err(line, "order length does not match vars"));
                    }
                    mgr.as_mut()
                        .ok_or_else(|| err(line, "order before vars"))?
                        .reorder_to(&order);
                }
                "node" => {
                    let m = mgr.as_mut().ok_or_else(|| err(line, "node before vars"))?;
                    if toks.len() != 6 {
                        return Err(err(line, "node needs: id level mode neq eq"));
                    }
                    let id: u32 = toks[1].parse().map_err(|_| err(line, "bad node id"))?;
                    let level: u16 = toks[2].parse().map_err(|_| err(line, "bad level"))?;
                    if level as usize >= m.num_vars() {
                        return Err(err(line, "level out of range"));
                    }
                    let edge = match toks[3] {
                        "S" => {
                            // Shannon nodes are exactly the level's literal.
                            let pv = m.order()[m.num_vars() - 1 - level as usize];
                            m.var(pv)
                        }
                        "B" => {
                            let neq = parse_edge(toks[4], &remap, line)?;
                            let eq = parse_edge(toks[5], &remap, line)?;
                            m.make_node(level, neq, eq)
                        }
                        _ => return Err(err(line, "mode must be B or S")),
                    };
                    remap.insert(id, edge);
                }
                "root" => {
                    if toks.len() != 3 {
                        return Err(err(line, "root needs: name edge"));
                    }
                    let e = parse_edge(toks[2], &remap, line)?;
                    roots.push((toks[1].to_string(), e));
                }
                "end" => finished = true,
                _ => return Err(err(line, &format!("unknown directive {}", toks[0]))),
            }
        }
        if !saw_magic {
            return Err(err(0, "missing bbdd magic line"));
        }
        let mgr = mgr.ok_or_else(|| err(0, "missing vars line"))?;
        if !finished {
            return Err(err(0, "missing end line"));
        }
        Ok((mgr, roots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mgr: &mut Bbdd) -> Vec<Edge> {
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let x = mgr.xor(a, b);
        let f = mgr.and(x, c);
        let g = mgr.xnor(b, c);
        vec![f, !g]
    }

    #[test]
    fn save_load_roundtrip_preserves_functions() {
        let mut mgr = Bbdd::new(4);
        let roots = sample(&mut mgr);
        let text = mgr.save(&roots, &["f", "ng"]);
        let (mut loaded, lroots) = Bbdd::load(&text).unwrap();
        assert_eq!(lroots.len(), 2);
        assert_eq!(lroots[0].0, "f");
        assert_eq!(lroots[1].0, "ng");
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            for (orig, (_, copy)) in roots.iter().zip(&lroots) {
                assert_eq!(mgr.eval(*orig, &v), loaded.eval(*copy, &v), "{v:?}");
            }
        }
        assert!(loaded.validate().is_ok());
        // Canonicity: same node counts after the round-trip.
        assert_eq!(
            mgr.shared_node_count(&roots),
            loaded.shared_node_count(&[lroots[0].1, lroots[1].1])
        );
        let pins = [loaded.pin(lroots[0].1), loaded.pin(lroots[1].1)];
        let _ = loaded.sift();
        for (orig, le) in roots.iter().zip([lroots[0].1, lroots[1].1]) {
            for m in 0..16u32 {
                let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!(mgr.eval(*orig, &v), loaded.eval(le, &v));
            }
        }
        drop(pins);
    }

    #[test]
    fn handle_save_load_roundtrip() {
        use ddcore::api::{BooleanFunction, FunctionManager};
        let mut mgr = Bbdd::new(4);
        let roots = sample(&mut mgr);
        let text = {
            let pins: Vec<_> = roots.iter().map(|&e| mgr.pin(e)).collect();
            let text = mgr.save(&roots, &["f", "ng"]);
            drop(pins);
            text
        };
        let (loaded, lroots) = Bbdd::load_fns(&text).unwrap();
        assert_eq!(loaded.external_roots(), 2, "loaded roots come pre-pinned");
        loaded.gc(); // must be a no-op for the pinned forest
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            for (orig, (_, copy)) in roots.iter().zip(&lroots) {
                assert_eq!(mgr.eval(*orig, &v), copy.eval(&v));
            }
        }
        assert!(loaded.backend().validate().is_ok());
    }

    #[test]
    fn save_load_keeps_nonidentity_orders() {
        let mut mgr = Bbdd::new(4);
        let roots = sample(&mut mgr);
        mgr.reorder_to(&[2, 0, 3, 1]);
        let text = mgr.save(&roots, &[]);
        let (loaded, lroots) = Bbdd::load(&text).unwrap();
        assert_eq!(loaded.order(), vec![2, 0, 3, 1]);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(roots[0], &v), loaded.eval(lroots[0].1, &v));
        }
    }

    #[test]
    fn constants_and_literals_roundtrip() {
        let mut mgr = Bbdd::new(2);
        let a = mgr.var(1);
        let text = mgr.save(&[Edge::ONE, Edge::ZERO, a, !a], &["t", "f", "a", "na"]);
        let (loaded, lroots) = Bbdd::load(&text).unwrap();
        assert_eq!(lroots[0].1, Edge::ONE);
        assert_eq!(lroots[1].1, Edge::ZERO);
        assert!(loaded.eval(lroots[2].1, &[false, true]));
        assert!(!loaded.eval(lroots[3].1, &[false, true]));
    }

    #[test]
    fn try_save_rejects_stale_roots() {
        let mut mgr = Bbdd::new(3);
        let roots = sample(&mut mgr);
        // Pin only the first function; GC frees the second one's nodes.
        let keep = mgr.pin(roots[0]);
        mgr.gc();
        let stale = roots[1];
        let e = mgr.try_save(&[roots[0], stale], &["f", "ng"]).unwrap_err();
        assert_eq!(e.root, 1, "second root is the stale one");
        assert!(e.message.contains("stale"), "{e}");
        // The live root alone still saves and round-trips.
        let text = mgr.try_save(&[roots[0]], &["f"]).unwrap();
        let (loaded, lroots) = Bbdd::load(&text).unwrap();
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(roots[0], &v), loaded.eval(lroots[0].1, &v));
        }
        drop(keep);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn save_panics_on_stale_roots() {
        let mut mgr = Bbdd::new(3);
        let roots = sample(&mut mgr);
        mgr.gc(); // nothing pinned: all roots stale
        let _ = mgr.save(&roots, &[]);
    }

    #[test]
    fn load_rejects_malformed_input() {
        assert!(Bbdd::load("").is_err());
        assert!(Bbdd::load("bbdd 2\nvars 1\nend\n").is_err());
        assert!(Bbdd::load("bbdd 1\nvars 0\nend\n").is_err());
        assert!(Bbdd::load("bbdd 1\nvars 2\norder 0\nend\n").is_err());
        // Forward reference.
        let fwd = "bbdd 1\nvars 2\norder 0 1\nnode 5 1 B 9:0 0:0\nend\n";
        assert!(Bbdd::load(fwd).is_err());
        // Missing end.
        assert!(Bbdd::load("bbdd 1\nvars 1\norder 0\n").is_err());
        // Unknown directive.
        assert!(Bbdd::load("bbdd 1\nvars 1\norder 0\nbogus\nend\n").is_err());
    }
}

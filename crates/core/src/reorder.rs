//! Chain variable re-ordering: Rudell's sifting algorithm extended to the
//! CVO (paper §IV-A4).
//!
//! Each variable is considered in succession (largest level first, the
//! classic heuristic); adjacent [`Bbdd::swap_adjacent`] operations move it
//! through all order positions while the sizes encountered are recorded,
//! and it is parked back at the best position seen. A growth bound aborts
//! unpromising directions early. `O(n²)` swaps in total.

use crate::edge::Edge;
use crate::manager::Bbdd;
use ddcore::govern::{OpAbort, OpBudget};

/// Tuning knobs for [`Bbdd::sift_with`].
#[derive(Debug, Clone, Copy)]
pub struct SiftConfig {
    /// Abort a direction when the diagram grows beyond
    /// `max_growth × best_size` (CUDD's classic 1.2).
    pub max_growth: f64,
    /// Number of complete sifting passes over all variables.
    pub passes: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            passes: 1,
        }
    }
}

impl Bbdd {
    /// Sift all variables once with default settings; returns the
    /// resulting live node count. Everything a live [`crate::BbddFn`]
    /// handle denotes survives — the handle registry is the root set, so
    /// there is no liveness list to forget.
    ///
    /// ```
    /// use bbdd::prelude::*;
    /// let mgr = BbddManager::with_vars(6);
    /// // Equality of (v0,v1,v2) with (v3,v4,v5): terrible in this order,
    /// // linear once sifting interleaves the operand bits.
    /// let mut f = mgr.constant(true);
    /// for i in 0..3 {
    ///     let (a, b) = (mgr.var(i), mgr.var(i + 3));
    ///     f = &f & &a.xnor(&b);
    /// }
    /// let before = f.node_count();
    /// mgr.reorder();
    /// assert!(f.node_count() <= before);
    /// ```
    pub fn sift(&mut self) -> usize {
        self.sift_with(&SiftConfig::default())
    }

    /// Sift with explicit [`SiftConfig`], tracing the handle registry.
    pub fn sift_with(&mut self, cfg: &SiftConfig) -> usize {
        self.sift_keeping(&[], cfg)
    }

    /// [`Bbdd::sift`] under a resource budget: the budget is polled before
    /// every adjacent-swap, so a node limit, deadline or cancellation stops
    /// reordering promptly. On abort, the variable currently being sifted
    /// is first parked back at the best position seen (a bounded amount of
    /// un-budgeted work, at most one sweep across the order), so the
    /// manager is left with a consistent variable order, canonical unique
    /// tables and every registered handle semantically intact — the result
    /// is simply a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded(&mut self, budget: &mut OpBudget) -> Result<usize, OpAbort> {
        self.sift_bounded_with(&SiftConfig::default(), budget)
    }

    /// [`Bbdd::sift_bounded`] with explicit [`SiftConfig`].
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded_with(
        &mut self,
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        self.sift_keeping_bounded(&[], cfg, budget)
            .map(|()| self.live_nodes())
    }

    pub(crate) fn sift_keeping(&mut self, extra: &[Edge], cfg: &SiftConfig) -> usize {
        self.sift_keeping_bounded(extra, cfg, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts");
        self.live_nodes()
    }

    fn sift_keeping_bounded(
        &mut self,
        extra: &[Edge],
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<(), OpAbort> {
        for _ in 0..cfg.passes.max(1) {
            self.gc_keeping(extra);
            let n = self.num_vars();
            if n < 2 {
                break;
            }
            // Process variables by decreasing level population.
            let mut vars: Vec<usize> = (0..n).collect();
            vars.sort_by_key(|&v| {
                std::cmp::Reverse(self.subtables[self.level_of_var[v] as usize].len())
            });
            for var in vars {
                self.sift_one(var, cfg, extra, budget)?;
            }
            self.gc_keeping(extra);
        }
        Ok(())
    }

    /// Move `var` through every position, then park it at the best one.
    ///
    /// Swaps leave behind nodes that are no longer reachable from the
    /// roots; sizes are measured after a sweep so that position decisions
    /// use exact live counts.
    fn sift_one(
        &mut self,
        var: usize,
        cfg: &SiftConfig,
        extra: &[Edge],
        budget: &mut OpBudget,
    ) -> Result<(), OpAbort> {
        let n = self.num_vars();
        let start = self.position_of(var);
        self.gc_keeping(extra);
        let mut best_size = self.live_nodes();
        let mut best_pos = start;
        let limit = |best: usize| (best as f64 * cfg.max_growth) as usize + 2;

        // Visit the nearer end first to minimize swap work.
        let down_first = start >= n / 2;
        let directions: [bool; 2] = if down_first {
            [true, false]
        } else {
            [false, true]
        };
        // On abort we fall through to the park-back loop below before
        // returning the error, so the order is always left consistent.
        let mut abort: Option<OpAbort> = None;
        'exploration: for &down in &directions {
            loop {
                let pos = self.position_of(var);
                if down && pos + 1 >= n {
                    break;
                }
                if !down && pos == 0 {
                    break;
                }
                if let Err(reason) = budget.checkpoint() {
                    abort = Some(reason);
                    break 'exploration;
                }
                if down {
                    self.swap_adjacent(pos);
                } else {
                    self.swap_adjacent(pos - 1);
                }
                self.gc_keeping(extra);
                let size = self.live_nodes();
                if size < best_size {
                    best_size = size;
                    best_pos = self.position_of(var);
                }
                if size > limit(best_size) {
                    break;
                }
            }
        }
        // Return to the best position (un-budgeted: at most one sweep).
        loop {
            let pos = self.position_of(var);
            match pos.cmp(&best_pos) {
                std::cmp::Ordering::Less => self.swap_adjacent(pos),
                std::cmp::Ordering::Greater => self.swap_adjacent(pos - 1),
                std::cmp::Ordering::Equal => break,
            }
        }
        self.gc_keeping(extra);
        match abort {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Re-order the variables to the given order `π` (top first) by
    /// adjacent swaps (insertion-sort style). Mainly used by tests and the
    /// benchmark harness to replay known-good orders.
    ///
    /// # Panics
    /// Panics if `target` is not a permutation of `0..num_vars()`.
    pub fn reorder_to(&mut self, target: &[usize]) {
        let n = self.num_vars();
        assert_eq!(target.len(), n, "order must mention every variable once");
        let mut seen = vec![false; n];
        for &v in target {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }
        for (goal_pos, &v) in target.iter().enumerate() {
            let mut pos = self.position_of(v);
            debug_assert!(pos >= goal_pos);
            while pos > goal_pos {
                self.swap_adjacent(pos - 1);
                pos -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_of(mgr: &Bbdd, f: Edge, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    /// The standard sifting showcase: equality comparator with the worst
    /// order (all A bits above all B bits) is exponential; interleaved it
    /// is linear.
    fn equality_bad_order(mgr: &mut Bbdd, k: usize) -> Edge {
        let mut f = mgr.one();
        for i in 0..k {
            let (a, b) = (mgr.var(i), mgr.var(i + k));
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        f
    }

    #[test]
    fn sifting_shrinks_equality_comparator() {
        let k = 5;
        let mut mgr = Bbdd::new(2 * k);
        let f = equality_bad_order(&mut mgr, k);
        let tf = truth_of(&mgr, f, 2 * k);
        let before = mgr.node_count(f);
        let _fh = mgr.pin(f);
        mgr.sift();
        let after = mgr.node_count(f);
        assert!(after < before, "sift must shrink: {before} -> {after}");
        // Interleaved equality is k XNOR nodes ANDed: exactly 2k-1 … allow
        // a little slack for a near-optimal order.
        assert!(after <= 2 * k, "near-linear size expected, got {after}");
        assert_eq!(truth_of(&mgr, f, 2 * k), tf, "functions preserved");
        mgr.validate().unwrap();
    }

    #[test]
    fn reorder_to_restores_identity() {
        let n = 5;
        let mut mgr = Bbdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let tf = truth_of(&mgr, f, n);
        mgr.reorder_to(&[4, 2, 0, 3, 1]);
        assert_eq!(mgr.order(), vec![4, 2, 0, 3, 1]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.reorder_to(&[0, 1, 2, 3, 4]);
        assert_eq!(mgr.order(), vec![0, 1, 2, 3, 4]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
    }

    /// Regression for the explicit-roots bug class: the old API sifted
    /// against only the caller-passed list, so edges held *elsewhere*
    /// (e.g. a second output vector) could be invalidated mid-sift. With
    /// the registry, two independently held handle sets both survive
    /// semantically intact — there is no list to get wrong.
    #[test]
    fn sift_keeps_two_independent_handle_sets_alive() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        // Pin set 1: the comparator outputs, held by one "caller".
        let f = equality_bad_order(&mut mgr, 3);
        let set1 = vec![(f, mgr.pin(f))];
        // Pin set 2: an unrelated output vector held by another caller,
        // which the first caller knows nothing about.
        let set2: Vec<(Edge, _)> = (0..3)
            .map(|i| {
                let a = mgr.var(i);
                let b = mgr.var(5 - i);
                let x = mgr.xor(a, b);
                (x, mgr.pin(x))
            })
            .collect();
        let tf: Vec<Vec<bool>> = set1.iter().map(|(e, _)| truth_of(&mgr, *e, n)).collect();
        let tg: Vec<Vec<bool>> = set2.iter().map(|(e, _)| truth_of(&mgr, *e, n)).collect();
        mgr.sift();
        for ((e, _), t) in set1.iter().zip(&tf) {
            assert_eq!(&truth_of(&mgr, *e, n), t, "set 1 must survive");
        }
        for ((e, _), t) in set2.iter().zip(&tg) {
            assert_eq!(&truth_of(&mgr, *e, n), t, "set 2 must survive");
        }
        mgr.validate().unwrap();
        // Dropping one set must not strand the other.
        drop(set1);
        mgr.sift();
        for ((e, _), t) in set2.iter().zip(&tg) {
            assert_eq!(&truth_of(&mgr, *e, n), t);
        }
        mgr.validate().unwrap();
    }

    #[test]
    fn single_variable_manager_sift_is_noop() {
        let mut mgr = Bbdd::new(1);
        let a = mgr.var(0);
        let _pin = mgr.pin(a);
        assert_eq!(mgr.sift(), 1);
        assert!(mgr.eval(a, &[true]));
    }
}

//! Chain variable re-ordering: the [`ddcore::dvo`] engine instantiated for
//! the BBDD manager (paper §IV-A4).
//!
//! The sifting algorithms themselves — classic Rudell, window-bounded and
//! the pair-aware group variant — live in [`ddcore::dvo`], generic over
//! [`ReorderBackend`]. This module implements that backend contract for
//! [`Bbdd`] (adjacent CVO swaps, registry-tracing sweeps, per-level widths
//! and the *biconditional chain affinity* that drives pair-aware sifting)
//! and keeps the manager's historical `sift*` entry points as thin
//! wrappers.
//!
//! The affinity signal is what makes pair sifting meaningful here: a
//! biconditional node at chain level `l` branches on `PV ⊕ SV`, coupling
//! the variables at order positions `p = n-1-l` and `p+1`. The fraction of
//! non-Shannon nodes at a level therefore measures how strongly the level
//! is chained to the one below — pairs above the [`PairSift`] threshold
//! move as rigid units, so sifting cannot break the chains that make the
//! BBDD compact on XOR-rich logic.

use crate::manager::Bbdd;
use ddcore::dvo::{DvoStrategy, FullSift, PairSift, ReorderBackend, ReorderStrategy};
use ddcore::govern::{OpAbort, OpBudget};

/// Tuning knobs for [`Bbdd::sift_with`] (the shared engine's parameter
/// block; re-exported under its historical name).
pub use ddcore::dvo::SiftParams as SiftConfig;

impl ReorderBackend for Bbdd {
    fn num_vars(&self) -> usize {
        Bbdd::num_vars(self)
    }

    fn position_of(&self, var: usize) -> usize {
        Bbdd::position_of(self, var)
    }

    fn var_at_position(&self, pos: usize) -> usize {
        let level = Bbdd::num_vars(self) - 1 - pos;
        self.var_at_level[level] as usize
    }

    fn swap_positions(&mut self, pos: usize) {
        self.swap_adjacent(pos);
    }

    fn sweep(&mut self) -> usize {
        self.gc_keeping(&[]);
        self.live_nodes()
    }

    fn var_width(&self, var: usize) -> usize {
        self.subtables[self.level_of_var[var] as usize].len()
    }

    /// Fraction of biconditional (non-Shannon) nodes at the level of the
    /// variable at `pos` — each one couples that variable (its PV) with
    /// the variable below (its SV).
    fn pair_affinity(&self, pos: usize) -> f64 {
        let level = Bbdd::num_vars(self) - 1 - pos;
        let table = &self.subtables[level];
        let total = table.len();
        if total == 0 {
            return 0.0;
        }
        let chained = table
            .values()
            .into_iter()
            .filter(|&idx| !self.node(idx).is_shannon())
            .count();
        chained as f64 / total as f64
    }
}

impl Bbdd {
    /// Sift all variables once with default settings; returns the
    /// resulting live node count. Everything a live [`crate::BbddFn`]
    /// handle denotes survives — the handle registry is the root set, so
    /// there is no liveness list to forget.
    ///
    /// ```
    /// use bbdd::prelude::*;
    /// let mgr = BbddManager::with_vars(6);
    /// // Equality of (v0,v1,v2) with (v3,v4,v5): terrible in this order,
    /// // linear once sifting interleaves the operand bits.
    /// let mut f = mgr.constant(true);
    /// for i in 0..3 {
    ///     let (a, b) = (mgr.var(i), mgr.var(i + 3));
    ///     f = &f & &a.xnor(&b);
    /// }
    /// let before = f.node_count();
    /// mgr.reorder();
    /// assert!(f.node_count() <= before);
    /// ```
    pub fn sift(&mut self) -> usize {
        self.sift_with(&SiftConfig::default())
    }

    /// Sift with explicit [`SiftConfig`], tracing the handle registry.
    pub fn sift_with(&mut self, cfg: &SiftConfig) -> usize {
        FullSift { params: *cfg }
            .reorder(self, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Bbdd::sift`] under a resource budget: the budget is polled before
    /// every adjacent-swap, so a node limit, deadline or cancellation stops
    /// reordering promptly. On abort, the variable currently being sifted
    /// is first parked back at the best position seen (a bounded amount of
    /// un-budgeted work, at most one sweep across the order), so the
    /// manager is left with a consistent variable order, canonical unique
    /// tables and every registered handle semantically intact — the result
    /// is simply a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded(&mut self, budget: &mut OpBudget) -> Result<usize, OpAbort> {
        self.sift_bounded_with(&SiftConfig::default(), budget)
    }

    /// [`Bbdd::sift_bounded`] with explicit [`SiftConfig`].
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded_with(
        &mut self,
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        FullSift { params: *cfg }.reorder(self, budget)
    }

    /// Run a specific [`DvoStrategy`] (full, window or pair-aware sift)
    /// under a resource budget, with the [`Bbdd::sift_bounded`] abort
    /// contract.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_strategy(
        &mut self,
        strategy: DvoStrategy,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        strategy.run(self, budget)
    }

    /// Pair-aware sifting with an explicit chain-affinity threshold (see
    /// [`PairSift`]); `sift_strategy(DvoStrategy::Pair, …)` uses the
    /// default threshold.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_pairs(
        &mut self,
        min_affinity: f64,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        PairSift {
            min_affinity,
            ..PairSift::default()
        }
        .reorder(self, budget)
    }

    /// Re-order the variables to the given order `π` (top first) by
    /// adjacent swaps (insertion-sort style). Mainly used by tests and the
    /// benchmark harness to replay known-good orders.
    ///
    /// # Panics
    /// Panics if `target` is not a permutation of `0..num_vars()`.
    pub fn reorder_to(&mut self, target: &[usize]) {
        let n = self.num_vars();
        assert_eq!(target.len(), n, "order must mention every variable once");
        let mut seen = vec![false; n];
        for &v in target {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }
        for (goal_pos, &v) in target.iter().enumerate() {
            let mut pos = self.position_of(v);
            debug_assert!(pos >= goal_pos);
            while pos > goal_pos {
                self.swap_adjacent(pos - 1);
                pos -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn truth_of(mgr: &Bbdd, f: Edge, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    /// The standard sifting showcase: equality comparator with the worst
    /// order (all A bits above all B bits) is exponential; interleaved it
    /// is linear.
    fn equality_bad_order(mgr: &mut Bbdd, k: usize) -> Edge {
        let mut f = mgr.one();
        for i in 0..k {
            let (a, b) = (mgr.var(i), mgr.var(i + k));
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        f
    }

    #[test]
    fn sifting_shrinks_equality_comparator() {
        let k = 5;
        let mut mgr = Bbdd::new(2 * k);
        let f = equality_bad_order(&mut mgr, k);
        let tf = truth_of(&mgr, f, 2 * k);
        let before = mgr.node_count(f);
        let _fh = mgr.pin(f);
        mgr.sift();
        let after = mgr.node_count(f);
        assert!(after < before, "sift must shrink: {before} -> {after}");
        // Interleaved equality is k XNOR nodes ANDed: exactly 2k-1 … allow
        // a little slack for a near-optimal order.
        assert!(after <= 2 * k, "near-linear size expected, got {after}");
        assert_eq!(truth_of(&mgr, f, 2 * k), tf, "functions preserved");
        mgr.validate().unwrap();
    }

    #[test]
    fn every_strategy_preserves_semantics_and_canonicity() {
        for strategy in [DvoStrategy::Full, DvoStrategy::Window(2), DvoStrategy::Pair] {
            let k = 4;
            let mut mgr = Bbdd::new(2 * k);
            let f = equality_bad_order(&mut mgr, k);
            let tf = truth_of(&mgr, f, 2 * k);
            let before = mgr.node_count(f);
            let _fh = mgr.pin(f);
            let after = mgr
                .sift_strategy(strategy, &mut OpBudget::unlimited())
                .expect("unlimited budget");
            assert!(after <= before + 1, "{strategy}: {before} -> {after}");
            assert_eq!(truth_of(&mgr, f, 2 * k), tf, "{strategy}");
            mgr.validate().unwrap();
            // The order is still a permutation.
            let mut order = mgr.order();
            order.sort_unstable();
            assert_eq!(order, (0..2 * k).collect::<Vec<_>>());
        }
    }

    /// On a pure biconditional chain the levels are chain-coupled, so the
    /// affinity signal must read (close to) 1 and pair sifting must not
    /// grow the diagram.
    #[test]
    fn chain_affinity_is_high_on_xor_ladders() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        let mut f = mgr.var(0);
        for v in 1..n {
            let x = mgr.var(v);
            f = mgr.xor(f, x);
        }
        let _fh = mgr.pin(f);
        mgr.gc();
        // Each biconditional chain node consumes a (PV, SV) *pair*, so the
        // populated levels alternate: boundaries (0,1), (2,3), (4,5) are
        // fully chained, the levels between them hold no nodes at all.
        let hot = (0..n - 1)
            .map(|p| ReorderBackend::pair_affinity(&mgr, p))
            .collect::<Vec<_>>();
        assert_eq!(
            hot,
            vec![1.0, 0.0, 1.0, 0.0, 1.0],
            "parity chain should be chained exactly at the pair boundaries"
        );
        let before = mgr.live_nodes();
        let tf = truth_of(&mgr, f, n);
        let after = mgr
            .sift_pairs(0.5, &mut OpBudget::unlimited())
            .expect("unlimited budget");
        assert!(
            after <= before,
            "pair sift must not grow: {before} -> {after}"
        );
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
    }

    #[test]
    fn reorder_to_restores_identity() {
        let n = 5;
        let mut mgr = Bbdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let tf = truth_of(&mgr, f, n);
        mgr.reorder_to(&[4, 2, 0, 3, 1]);
        assert_eq!(mgr.order(), vec![4, 2, 0, 3, 1]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.reorder_to(&[0, 1, 2, 3, 4]);
        assert_eq!(mgr.order(), vec![0, 1, 2, 3, 4]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
    }

    /// Regression for the explicit-roots bug class: the old API sifted
    /// against only the caller-passed list, so edges held *elsewhere*
    /// (e.g. a second output vector) could be invalidated mid-sift. With
    /// the registry, two independently held handle sets both survive
    /// semantically intact — there is no list to get wrong.
    #[test]
    fn sift_keeps_two_independent_handle_sets_alive() {
        let n = 6;
        let mut mgr = Bbdd::new(n);
        // Pin set 1: the comparator outputs, held by one "caller".
        let f = equality_bad_order(&mut mgr, 3);
        let set1 = vec![(f, mgr.pin(f))];
        // Pin set 2: an unrelated output vector held by another caller,
        // which the first caller knows nothing about.
        let set2: Vec<(Edge, _)> = (0..3)
            .map(|i| {
                let a = mgr.var(i);
                let b = mgr.var(5 - i);
                let x = mgr.xor(a, b);
                (x, mgr.pin(x))
            })
            .collect();
        let tf: Vec<Vec<bool>> = set1.iter().map(|(e, _)| truth_of(&mgr, *e, n)).collect();
        let tg: Vec<Vec<bool>> = set2.iter().map(|(e, _)| truth_of(&mgr, *e, n)).collect();
        mgr.sift();
        for ((e, _), t) in set1.iter().zip(&tf) {
            assert_eq!(&truth_of(&mgr, *e, n), t, "set 1 must survive");
        }
        for ((e, _), t) in set2.iter().zip(&tg) {
            assert_eq!(&truth_of(&mgr, *e, n), t, "set 2 must survive");
        }
        mgr.validate().unwrap();
        // Dropping one set must not strand the other.
        drop(set1);
        mgr.sift();
        for ((e, _), t) in set2.iter().zip(&tg) {
            assert_eq!(&truth_of(&mgr, *e, n), t);
        }
        mgr.validate().unwrap();
    }

    #[test]
    fn single_variable_manager_sift_is_noop() {
        let mut mgr = Bbdd::new(1);
        let a = mgr.var(0);
        let _pin = mgr.pin(a);
        assert_eq!(mgr.sift(), 1);
        assert!(mgr.eval(a, &[true]));
    }
}

//! BBDD node storage and the strong-canonical unique-table key.
//!
//! A stored node is uniquely labelled by the tuple
//! `{CVO-level, ≠-child, ≠-attribute, =-child}` (paper §IV-A1) plus one
//! *mode* bit distinguishing reduction-rule-R4 degenerate nodes (Shannon
//! nodes, `SV = 1`) from ordinary biconditional nodes: the literal `v` and
//! the function `XNOR(v, w)` both have constant children, and only the mode
//! bit tells them apart.

use crate::edge::Edge;
use ddcore::cantor::CantorHasher;
use ddcore::table::TableKey;

/// Level value reserved for the 1 sink.
pub(crate) const TERMINAL_LEVEL: u16 = u16::MAX;

const FLAG_SHANNON: u8 = 1;
const FLAG_MARK: u8 = 2;
const FLAG_FREE: u8 = 4;

/// One arena slot. 12 bytes; levels are bottom-based (level 0 = the CVO
/// level with the fictitious `SV = 1`, level `n-1` = the root level).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// The `PV ≠ SV` child (may carry the complement attribute).
    pub neq: Edge,
    /// The `PV = SV` child (always a regular edge — canonicity invariant).
    pub eq: Edge,
    /// Bottom-based CVO level of this node.
    pub level: u16,
    flags: u8,
    _pad: u8,
}

impl Node {
    pub(crate) fn terminal() -> Self {
        Node {
            neq: Edge::ONE,
            eq: Edge::ONE,
            level: TERMINAL_LEVEL,
            flags: 0,
            _pad: 0,
        }
    }

    pub(crate) fn new(level: u16, shannon: bool, neq: Edge, eq: Edge) -> Self {
        Node {
            neq,
            eq,
            level,
            flags: if shannon { FLAG_SHANNON } else { 0 },
            _pad: 0,
        }
    }

    #[inline]
    pub(crate) fn is_shannon(&self) -> bool {
        self.flags & FLAG_SHANNON != 0
    }

    #[inline]
    pub(crate) fn is_marked(&self) -> bool {
        self.flags & FLAG_MARK != 0
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_MARK;
        } else {
            self.flags &= !FLAG_MARK;
        }
    }

    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.flags & FLAG_FREE != 0
    }

    #[inline]
    pub(crate) fn set_free(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_FREE;
        } else {
            self.flags &= !FLAG_FREE;
        }
    }

    /// The unique-table key of this node (level is implied by the subtable).
    #[inline]
    pub(crate) fn key(&self) -> NodeKey {
        NodeKey {
            shannon: self.is_shannon(),
            neq: self.neq,
            eq: self.eq,
        }
    }
}

/// Unique-table key within one level's subtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NodeKey {
    pub shannon: bool,
    pub neq: Edge,
    pub eq: Edge,
}

impl TableKey for NodeKey {
    #[inline]
    fn table_hash(&self, hasher: &CantorHasher) -> u64 {
        // Nested Cantor pairing over the tuple elements (paper §IV-A3):
        // the ≠-attribute travels inside the packed edge word.
        hasher.hash3(
            self.neq.bits() as u64,
            self.eq.bits() as u64,
            self.shannon as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }

    #[test]
    fn flags_are_independent() {
        let mut n = Node::new(3, true, Edge::ZERO, Edge::ONE);
        assert!(n.is_shannon());
        assert!(!n.is_marked());
        n.set_mark(true);
        assert!(n.is_marked() && n.is_shannon());
        n.set_free(true);
        assert!(n.is_free() && n.is_marked() && n.is_shannon());
        n.set_mark(false);
        assert!(!n.is_marked() && n.is_free() && n.is_shannon());
        n.set_free(false);
        assert!(!n.is_free());
    }

    #[test]
    fn key_distinguishes_modes() {
        let bicond = Node::new(3, false, Edge::ZERO, Edge::ONE);
        let shannon = Node::new(3, true, Edge::ZERO, Edge::ONE);
        assert_ne!(bicond.key(), shannon.key());
    }
}

//! BBDD node storage and the strong-canonical unique-table key.
//!
//! A stored node is uniquely labelled by the tuple
//! `{CVO-level, ≠-child, ≠-attribute, =-child}` (paper §IV-A1) plus one
//! *mode* bit distinguishing reduction-rule-R4 degenerate nodes (Shannon
//! nodes, `SV = 1`) from ordinary biconditional nodes: the literal `v` and
//! the function `XNOR(v, w)` both have constant children, and only the mode
//! bit tells them apart.
//!
//! Storage is packed for cache locality:
//!
//! * a [`Node`] is exactly three `u32` words — the two child edge words
//!   (complement attribute folded into bit 0 of each, see
//!   [`Edge`](crate::edge::Edge)) and a meta word carrying the 16-bit level
//!   plus the Shannon/mark/free flag bits;
//! * a [`NodeKey`] is one `u64`: the `≠`-edge word in the high half and the
//!   `=`-edge word in the low half. The `=`-edge is regular by the
//!   canonical form, so its free bit 0 holds the mode bit — the key packs
//!   with zero waste and sits inline in the open-addressed unique table
//!   (16-byte slot: key + value + cached hash).

use crate::edge::Edge;
use ddcore::cantor::CantorHasher;
use ddcore::table::TableKey;

/// Level value reserved for the 1 sink.
pub(crate) const TERMINAL_LEVEL: u16 = u16::MAX;

const META_SHANNON: u32 = 1 << 16;
const META_MARK: u32 = 1 << 17;
const META_FREE: u32 = 1 << 18;

/// One arena slot: 12 bytes, three packed `u32` words. Levels are
/// bottom-based (level 0 = the CVO level with the fictitious `SV = 1`,
/// level `n-1` = the root level).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// Packed `PV ≠ SV` child edge (bit 0 = complement attribute).
    neq_bits: u32,
    /// Packed `PV = SV` child edge (always regular — canonicity invariant).
    eq_bits: u32,
    /// `level` in bits 0..16, flags above.
    meta: u32,
}

impl Node {
    pub(crate) fn terminal() -> Self {
        Node {
            neq_bits: Edge::ONE.bits(),
            eq_bits: Edge::ONE.bits(),
            meta: TERMINAL_LEVEL as u32,
        }
    }

    pub(crate) fn new(level: u16, shannon: bool, neq: Edge, eq: Edge) -> Self {
        Node {
            neq_bits: neq.bits(),
            eq_bits: eq.bits(),
            meta: level as u32 | if shannon { META_SHANNON } else { 0 },
        }
    }

    /// The `PV ≠ SV` child (may carry the complement attribute).
    #[inline]
    pub(crate) fn neq(&self) -> Edge {
        Edge::from_bits(self.neq_bits)
    }

    /// The `PV = SV` child (always a regular edge).
    #[inline]
    pub(crate) fn eq(&self) -> Edge {
        Edge::from_bits(self.eq_bits)
    }

    /// Bottom-based CVO level of this node.
    #[inline]
    pub(crate) fn level(&self) -> u16 {
        self.meta as u16
    }

    #[inline]
    pub(crate) fn is_shannon(&self) -> bool {
        self.meta & META_SHANNON != 0
    }

    #[inline]
    pub(crate) fn is_marked(&self) -> bool {
        self.meta & META_MARK != 0
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, on: bool) {
        if on {
            self.meta |= META_MARK;
        } else {
            self.meta &= !META_MARK;
        }
    }

    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.meta & META_FREE != 0
    }

    #[inline]
    pub(crate) fn set_free(&mut self, on: bool) {
        if on {
            self.meta |= META_FREE;
        } else {
            self.meta &= !META_FREE;
        }
    }

    /// The unique-table key of this node (level is implied by the subtable).
    #[inline]
    pub(crate) fn key(&self) -> NodeKey {
        NodeKey::new(self.is_shannon(), self.neq(), self.eq())
    }
}

/// Unique-table key within one level's subtable, packed into one `u64`:
/// `≠`-edge word in the high half, `=`-edge word (bit 0 = mode) in the low
/// half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub(crate) struct NodeKey(u64);

impl NodeKey {
    #[inline]
    pub(crate) fn new(shannon: bool, neq: Edge, eq: Edge) -> Self {
        debug_assert!(!eq.is_complemented(), "canonical =-edges are regular");
        NodeKey(((neq.bits() as u64) << 32) | (eq.bits() as u64) | shannon as u64)
    }

    #[inline]
    pub(crate) fn shannon(self) -> bool {
        self.0 & 1 != 0
    }

    #[inline]
    pub(crate) fn neq(self) -> Edge {
        Edge::from_bits((self.0 >> 32) as u32)
    }

    #[inline]
    pub(crate) fn eq(self) -> Edge {
        Edge::from_bits(self.0 as u32 & !1)
    }
}

impl TableKey for NodeKey {
    #[inline]
    fn table_hash(&self, hasher: &CantorHasher) -> u64 {
        // Nested Cantor pairing over the same tuple elements as the seed
        // (paper §IV-A3): the ≠-attribute travels inside the packed edge
        // word, the mode bit goes in as the third element.
        hasher.hash3(self.0 >> 32, self.0 & 0xFFFF_FFFE, self.0 & 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }

    #[test]
    fn node_key_is_8_bytes() {
        assert_eq!(std::mem::size_of::<NodeKey>(), 8);
    }

    #[test]
    fn flags_are_independent() {
        let mut n = Node::new(3, true, Edge::ZERO, Edge::ONE);
        assert!(n.is_shannon());
        assert!(!n.is_marked());
        n.set_mark(true);
        assert!(n.is_marked() && n.is_shannon());
        n.set_free(true);
        assert!(n.is_free() && n.is_marked() && n.is_shannon());
        n.set_mark(false);
        assert!(!n.is_marked() && n.is_free() && n.is_shannon());
        n.set_free(false);
        assert!(!n.is_free());
        assert_eq!(n.level(), 3);
        assert_eq!(n.neq(), Edge::ZERO);
        assert_eq!(n.eq(), Edge::ONE);
    }

    #[test]
    fn key_distinguishes_modes() {
        let bicond = Node::new(3, false, Edge::ZERO, Edge::ONE);
        let shannon = Node::new(3, true, Edge::ZERO, Edge::ONE);
        assert_ne!(bicond.key(), shannon.key());
    }

    #[test]
    fn key_roundtrips_fields() {
        let neq = Edge::new(77, true);
        let eq = Edge::new(12, false);
        for shannon in [false, true] {
            let k = NodeKey::new(shannon, neq, eq);
            assert_eq!(k.shannon(), shannon);
            assert_eq!(k.neq(), neq);
            assert_eq!(k.eq(), eq);
        }
    }
}

//! [`ParBbdd`] — the multi-core front-end of the BBDD manager.
//!
//! Recursive BBDD operations parallelize naturally (HermesBDD's
//! observation): split the recursion at the top k levels, run the
//! subproblems on a pool, share subresults through a concurrent unique
//! table and a lossy computed cache. The catch is determinism — node ids
//! handed out by racing threads depend on the interleaving, and a decision
//! diagram package's whole contract is that equal functions are equal
//! edges. `ParBbdd` therefore runs every operation in three phases:
//!
//! 1. **Split** (sequential): cofactor the operands down the top k levels
//!    of the recursion, recording the combine tree and a deduplicated list
//!    of leaf subproblems.
//! 2. **Parallel phase**: the base manager is *frozen* (workers only read
//!    its arena and unique tables via lock-free `peek`s) and the leaf
//!    subproblems run fork-join style. Result nodes are materialized in an
//!    overlay: a [`ShardedTable`] keyed by `(level, node-key)` dedupes
//!    across threads (consulting the frozen base tables first, so every
//!    Boolean function has exactly **one** edge representation — base or
//!    overlay), an [`OverlayArena`] stores the node words, and an
//!    [`AtomicCache`] memoizes subresults lossily.
//! 3. **Commit** (sequential): leaf results are imported into the base
//!    manager — a depth-first walk over the overlay graph calling the
//!    ordinary `make_node` — and the combine tree joins them.
//!
//! Because the overlay is canonical (one representation per function), the
//! overlay graph reachable from the leaf results is the *same graph* for
//! every interleaving; only the scratch ids differ. The commit walks that
//! graph in a fixed order, so the base manager's state after the operation
//! — including every node id — is **bit-identical for every thread
//! count**. The parallel phase touches work scheduling only, never
//! results.
//!
//! The sequential fallback below the node-count cutoff is part of the same
//! contract: the parallel/sequential decision depends only on operand
//! sizes, never on the thread count.

use crate::edge::Edge;
use crate::manager::{Bbdd, BbddStats};
use crate::node::NodeKey;
use ddcore::boolop::{BoolOp, Unary};
use ddcore::cantor::CantorHasher;
use ddcore::fxhash::{FxHashMap, FxHashSet};
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::optag;
use ddcore::par::{
    fork_join, threads_from_env, try_fork_join_governed, AtomicCache, OverlayArena, ShardedTable,
};
pub use ddcore::par::{ParConfig, ParStats};
use ddcore::session::OverlayFrame;
use ddcore::table::TableKey;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shannon-mode bit in an overlay node's meta word (mirrors the arena's
/// node layout: level in bits 0..16).
const SHANNON_BIT: u32 = 1 << 16;

/// Unique-table key of the overlay: the per-level [`NodeKey`] plus the
/// level itself (the base manager keeps one table per level; the sharded
/// overlay is a single key space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LevelKey {
    level: u16,
    key: NodeKey,
}

impl TableKey for LevelKey {
    fn table_hash(&self, h: &CantorHasher) -> u64 {
        h.hash4(
            u64::from(self.key.neq().bits()),
            u64::from(self.key.eq().bits()),
            u64::from(self.key.shannon()),
            u64::from(self.level),
        )
    }
}

/// Structural view of a node in the frozen-base + overlay space.
#[derive(Clone, Copy)]
struct PNode {
    neq: Edge,
    eq: Edge,
    level: u16,
    shannon: bool,
}

/// Cube-quantification context of one parallel `exists`/`forall`/
/// `and_exists` (mirror of the sequential `QuantCtx`).
#[derive(Debug, Clone)]
struct PQuant {
    /// Is the variable whose PV sits at bottom-based level `l` quantified?
    in_cube: Vec<bool>,
    min_level: u16,
    cube_bits: u64,
    combine: BoolOp,
    tag: u32,
}

/// A deduplicated leaf subproblem of the split phase.
#[derive(Debug, Clone, Copy)]
enum Task {
    Apply(BoolOp, Edge, Edge),
    Ite(Edge, Edge, Edge),
    Quant(Edge),
    AndExists(Edge, Edge),
}

/// How an inner node of the combine tree joins its children.
#[derive(Debug, Clone, Copy)]
enum Combine {
    /// `make_node(level, d, e)` — the structural join of `apply`/`ite`.
    Node(u16),
    /// `apply(op, d, e)` — quantification's case-1 join (∨ for ∃, ∧ for ∀).
    Op(BoolOp),
}

/// The combine tree recorded by the split phase.
#[derive(Debug)]
enum Plan {
    /// Resolved during the split (terminal case).
    Done(Edge),
    /// Index into the task list.
    Leaf(usize),
    /// Join of two subplans (`d` = ≠-branch, `e` = =-branch).
    Join {
        how: Combine,
        d: Box<Plan>,
        e: Box<Plan>,
    },
}

fn unary(u: Unary, x: Edge) -> Edge {
    match u {
        Unary::Zero => Edge::ZERO,
        Unary::One => Edge::ONE,
        Unary::Identity => x,
        Unary::Complement => !x,
    }
}

/// The read-only context workers run in: the frozen base manager plus the
/// overlay storage. Shared by reference across the fork-join scope.
struct PCtx<'a> {
    base: &'a Bbdd,
    /// Arena length at freeze time; ids `>= base_len` live in the overlay.
    base_len: u32,
    table: &'a ShardedTable<LevelKey>,
    arena: &'a OverlayArena,
    cache: &'a AtomicCache,
    quant: Option<&'a PQuant>,
}

impl PCtx<'_> {
    #[inline]
    fn pnode(&self, id: u32) -> PNode {
        if id < self.base_len {
            let n = &self.base.nodes[id as usize];
            PNode {
                neq: n.neq(),
                eq: n.eq(),
                level: n.level(),
                shannon: n.is_shannon(),
            }
        } else {
            let (a, b, meta) = self.arena.get(id - self.base_len);
            PNode {
                neq: Edge::from_bits(a),
                eq: Edge::from_bits(b),
                level: meta as u16,
                shannon: meta & SHANNON_BIT != 0,
            }
        }
    }

    #[inline]
    fn level_of(&self, e: Edge) -> u16 {
        self.pnode(e.node()).level
    }

    /// Find-or-create in the canonical frozen-base + overlay space: the
    /// frozen base tables are consulted first (read-only `peek`), then the
    /// sharded overlay table under exactly one shard lock. This is what
    /// guarantees one edge representation per Boolean function — the
    /// cornerstone of the determinism argument in the module docs.
    fn find_or_insert(&self, level: u16, key: NodeKey) -> u32 {
        if let Some(id) = self.base.subtables[level as usize].peek(&key) {
            return id;
        }
        self.table.get_or_insert_with(LevelKey { level, key }, || {
            let meta = u32::from(level) | if key.shannon() { SHANNON_BIT } else { 0 };
            self.base_len + self.arena.alloc(key.neq().bits(), key.eq().bits(), meta)
        })
    }

    fn shannon_node(&self, level: u16) -> Edge {
        let key = NodeKey::new(true, Edge::ZERO, Edge::ONE);
        Edge::new(self.find_or_insert(level, key), false)
    }

    fn lit_below(&self, level: u16) -> Edge {
        if level == 0 {
            Edge::ONE
        } else {
            self.shannon_node(level - 1)
        }
    }

    fn is_lit_below(&self, e: Edge, level: u16) -> bool {
        if e.is_complemented() {
            return false;
        }
        if level == 0 {
            return e == Edge::ONE;
        }
        if e.is_constant() {
            return false;
        }
        let n = self.pnode(e.node());
        n.shannon && n.level == level - 1
    }

    /// Mirror of [`Bbdd::make_node`] in the overlay space (R2, complement
    /// normalization, R4).
    fn make_node(&self, level: u16, mut neq: Edge, mut eq: Edge) -> Edge {
        if neq == eq {
            return eq;
        }
        let mut out_c = false;
        if eq.is_complemented() {
            neq = !neq;
            eq = !eq;
            out_c = true;
        }
        if neq == !eq && self.is_lit_below(eq, level) {
            return self.shannon_node(level).complement_if(out_c);
        }
        let key = NodeKey::new(false, neq, eq);
        Edge::new(self.find_or_insert(level, key), out_c)
    }

    /// Mirror of the manager's biconditional cofactors (Shannon operands
    /// expand through the lazy chain literal).
    fn cofactors(&self, e: Edge, level: u16) -> (Edge, Edge) {
        if e.is_constant() {
            return (e, e);
        }
        let n = self.pnode(e.node());
        if n.level < level {
            return (e, e);
        }
        debug_assert_eq!(n.level, level, "cofactor below the node's own level");
        let c = e.is_complemented();
        if n.shannon {
            let lw = self.lit_below(level);
            ((!lw).complement_if(c), lw.complement_if(c))
        } else {
            (n.neq.complement_if(c), n.eq.complement_if(c))
        }
    }

    /// Algorithm 1 in the overlay space — the worker-side mirror of the
    /// manager's `apply_rec`.
    fn apply_rec(&self, mut op: BoolOp, mut f: Edge, mut g: Edge, calls: &mut u64) -> Edge {
        *calls += 1;
        if f == g {
            return unary(op.on_equal_operands(), f);
        }
        if f == !g {
            return unary(op.on_complement_operands(), f);
        }
        if f.is_constant() {
            return unary(op.on_first_const(f == Edge::ONE), g);
        }
        if g.is_constant() {
            return unary(op.on_second_const(g == Edge::ONE), f);
        }
        if f.is_complemented() {
            f = !f;
            op = op.complement_first();
        }
        if g.is_complemented() {
            g = !g;
            op = op.complement_second();
        }
        if f.node() > g.node() {
            std::mem::swap(&mut f, &mut g);
            op = op.swap_operands();
        }
        let mut out_c = false;
        if op.eval(false, false) {
            op = op.complement_output();
            out_c = true;
        }
        if op == BoolOp::FALSE {
            return Edge::ZERO.complement_if(out_c);
        }
        if op == BoolOp::FIRST {
            return f.complement_if(out_c);
        }
        if op == BoolOp::SECOND {
            return g.complement_if(out_c);
        }
        let (k1, k2, tag) = (
            u64::from(f.bits()),
            u64::from(g.bits()),
            u32::from(op.table()),
        );
        if let Some(r) = self.cache.get(k1, k2, tag) {
            return Edge::from_bits(r).complement_if(out_c);
        }
        let i = self.level_of(f).max(self.level_of(g));
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let e = self.apply_rec(op, fe, ge, calls);
        let d = self.apply_rec(op, fd, gd, calls);
        let r = self.make_node(i, d, e);
        self.cache.insert(k1, k2, tag, r.bits());
        r.complement_if(out_c)
    }

    /// Worker-side mirror of the manager's `ite_rec`.
    fn ite_rec(&self, mut f: Edge, mut g: Edge, mut h: Edge, calls: &mut u64) -> Edge {
        *calls += 1;
        if f == Edge::ONE {
            return g;
        }
        if f == Edge::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return f;
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return !f;
        }
        if f == g || g == Edge::ONE {
            return self.apply_rec(BoolOp::OR, f, h, calls);
        }
        if f == !g || g == Edge::ZERO {
            return self.apply_rec(BoolOp::NOT_AND, f, h, calls);
        }
        if f == h || h == Edge::ZERO {
            return self.apply_rec(BoolOp::AND, f, g, calls);
        }
        if f == !h || h == Edge::ONE {
            return self.apply_rec(BoolOp::IMPLIES, f, g, calls);
        }
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        let mut out_c = false;
        if g.is_complemented() {
            g = !g;
            h = !h;
            out_c = true;
        }
        let k1 = u64::from(f.bits());
        let k2 = (u64::from(g.bits()) << 32) | u64::from(h.bits());
        if let Some(r) = self.cache.get(k1, k2, optag::ITE) {
            return Edge::from_bits(r).complement_if(out_c);
        }
        let mut i = self.level_of(f);
        for e in [g, h] {
            if !e.is_constant() {
                i = i.max(self.level_of(e));
            }
        }
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let (hd, he) = self.cofactors(h, i);
        let e = self.ite_rec(fe, ge, he, calls);
        let d = self.ite_rec(fd, gd, hd, calls);
        let r = self.make_node(i, d, e);
        self.cache.insert(k1, k2, optag::ITE, r.bits());
        r.complement_if(out_c)
    }

    /// Worker-side mirror of the manager's cube quantification (the three
    /// chain cases are documented in `quant.rs`).
    fn quant_rec(&self, f: Edge, q: &PQuant, calls: &mut u64) -> Edge {
        if f.is_constant() {
            return f;
        }
        let i = self.level_of(f);
        if i < q.min_level {
            return f;
        }
        *calls += 1;
        let (k1, k2) = (u64::from(f.bits()), q.cube_bits);
        if let Some(r) = self.cache.get(k1, k2, q.tag) {
            return Edge::from_bits(r);
        }
        let (fd, fe) = self.cofactors(f, i);
        let r = if q.in_cube[i as usize] {
            let a = self.quant_rec(fd, q, calls);
            let absorbing = if q.tag == optag::EXISTS {
                Edge::ONE
            } else {
                Edge::ZERO
            };
            if a == absorbing {
                absorbing
            } else {
                let b = self.quant_rec(fe, q, calls);
                self.apply_rec(q.combine, a, b, calls)
            }
        } else if i > 0 && q.in_cube[i as usize - 1] {
            let w = self.shannon_node(i - 1);
            let f1 = self.ite_rec(w, fe, fd, calls);
            let f0 = self.ite_rec(w, fd, fe, calls);
            let r1 = self.quant_rec(f1, q, calls);
            let r0 = self.quant_rec(f0, q, calls);
            let v = self.shannon_node(i);
            self.ite_rec(v, r1, r0, calls)
        } else {
            let a = self.quant_rec(fd, q, calls);
            let b = self.quant_rec(fe, q, calls);
            self.make_node(i, a, b)
        };
        self.cache.insert(k1, k2, q.tag, r.bits());
        r
    }

    /// Worker-side mirror of the manager's fused `and_exists`.
    fn and_exists_rec(&self, f: Edge, g: Edge, q: &PQuant, calls: &mut u64) -> Edge {
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Edge::ZERO;
        }
        if f == Edge::ONE {
            return self.quant_rec(g, q, calls);
        }
        if g == Edge::ONE || f == g {
            return self.quant_rec(f, q, calls);
        }
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let i = self.level_of(f).max(self.level_of(g));
        if i < q.min_level {
            return self.apply_rec(BoolOp::AND, f, g, calls);
        }
        *calls += 1;
        let k1 = u64::from(f.bits());
        let k2 = (u64::from(g.bits()) << 32) | q.cube_bits;
        if let Some(r) = self.cache.get(k1, k2, optag::AND_EXISTS) {
            return Edge::from_bits(r);
        }
        let (fd, fe) = self.cofactors(f, i);
        let (gd, ge) = self.cofactors(g, i);
        let r = if q.in_cube[i as usize] {
            let a = self.and_exists_rec(fd, gd, q, calls);
            if a == Edge::ONE {
                Edge::ONE
            } else {
                let b = self.and_exists_rec(fe, ge, q, calls);
                self.apply_rec(BoolOp::OR, a, b, calls)
            }
        } else if i > 0 && q.in_cube[i as usize - 1] {
            let w = self.shannon_node(i - 1);
            let f1 = self.ite_rec(w, fe, fd, calls);
            let f0 = self.ite_rec(w, fd, fe, calls);
            let g1 = self.ite_rec(w, ge, gd, calls);
            let g0 = self.ite_rec(w, gd, ge, calls);
            let r1 = self.and_exists_rec(f1, g1, q, calls);
            let r0 = self.and_exists_rec(f0, g0, q, calls);
            let v = self.shannon_node(i);
            self.ite_rec(v, r1, r0, calls)
        } else {
            let a = self.and_exists_rec(fd, gd, q, calls);
            let b = self.and_exists_rec(fe, ge, q, calls);
            self.make_node(i, a, b)
        };
        self.cache.insert(k1, k2, optag::AND_EXISTS, r.bits());
        r
    }

    fn run_task(&self, t: &Task) -> (Edge, u64) {
        let mut calls = 0u64;
        let r = match *t {
            Task::Apply(op, f, g) => self.apply_rec(op, f, g, &mut calls),
            Task::Ite(f, g, h) => self.ite_rec(f, g, h, &mut calls),
            Task::Quant(f) => {
                let q = self.quant.expect("quant task without quant context");
                self.quant_rec(f, q, &mut calls)
            }
            Task::AndExists(f, g) => {
                let q = self.quant.expect("and-exists task without quant context");
                self.and_exists_rec(f, g, q, &mut calls)
            }
        };
        (r, calls)
    }
}

/// A multi-core BBDD manager: the same canonical diagrams and the same
/// results as [`Bbdd`], with `apply`/`ite`/`exists`/`forall`/`and_exists`
/// executed across a fork-join worker pool when the operands are large
/// enough to pay for it.
///
/// Results are **bit-identical regardless of thread count** — see the
/// module docs for why — so a `ParBbdd` can replace a `Bbdd` anywhere
/// without changing a single edge a caller observes.
///
/// ```
/// use bbdd::{ParBbdd, BoolOp};
/// let mut mgr = ParBbdd::new(8, 4); // 8 variables, up to 4 threads
/// let (a, b) = (mgr.var(0), mgr.var(1));
/// let f = mgr.apply(BoolOp::XOR, a, b);
/// assert!(mgr.eval(f, &[true, false, false, false, false, false, false, false]));
/// ```
#[derive(Debug)]
pub struct ParBbdd {
    inner: Bbdd,
    cfg: ParConfig,
    /// The overlay scratch bundle (sharded table, append-only arena,
    /// atomic cache, GC-generation sync) — see
    /// [`ddcore::session::OverlayFrame`] for the shared lifecycle.
    frame: OverlayFrame<LevelKey>,
    stats: ParStats,
    /// Reused size-probe scratch (the cutoff check).
    probe: FxHashSet<u32>,
}

impl ParBbdd {
    /// Create a manager for `num_vars` variables running on up to
    /// `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or exceeds the 16-bit level space.
    #[must_use]
    pub fn new(num_vars: usize, threads: usize) -> Self {
        Self::with_config(
            num_vars,
            ParConfig {
                threads: threads.max(1),
                ..ParConfig::default()
            },
        )
    }

    /// Create a manager reading the thread count from the `BBDD_THREADS`
    /// environment variable (falling back to `default_threads`).
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or exceeds the 16-bit level space.
    #[must_use]
    pub fn from_env(num_vars: usize, default_threads: usize) -> Self {
        Self::new(num_vars, threads_from_env(default_threads))
    }

    /// Create a manager with explicit [`ParConfig`].
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or exceeds the 16-bit level space.
    #[must_use]
    pub fn with_config(num_vars: usize, cfg: ParConfig) -> Self {
        ParBbdd {
            inner: Bbdd::new(num_vars),
            frame: OverlayFrame::new(cfg.shards, 64, cfg.cache_ways),
            stats: ParStats::default(),
            probe: FxHashSet::default(),
            cfg,
        }
    }

    /// A private copy for the session layer: the sequential manager's node
    /// store is forked, the overlay frame starts fresh (it is per-op
    /// scratch, recycled at every parallel phase anyway).
    pub(crate) fn fork_state(&self) -> Self {
        ParBbdd {
            inner: self.inner.fork_state(),
            frame: OverlayFrame::new(self.cfg.shards, 64, self.cfg.cache_ways),
            stats: ParStats::default(),
            probe: FxHashSet::default(),
            cfg: self.cfg,
        }
    }

    /// Worker threads the manager may use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Change the worker thread count (results are unaffected by
    /// construction).
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// The wrapped sequential manager (read access).
    #[must_use]
    pub fn inner(&self) -> &Bbdd {
        &self.inner
    }

    /// The wrapped sequential manager (mutable access — anything done here
    /// is, of course, part of the deterministic history).
    pub fn inner_mut(&mut self) -> &mut Bbdd {
        &mut self.inner
    }

    /// Unwrap into the sequential manager.
    #[must_use]
    pub fn into_inner(self) -> Bbdd {
        self.inner
    }

    /// Parallel-execution counters (shard occupancy/contention, lossy
    /// cache behaviour, task distribution).
    #[must_use]
    pub fn par_stats(&self) -> ParStats {
        let mut s = self.stats.clone();
        s.cache = self.frame.cache.stats();
        s.shard_contention = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|x| x.contended)
            .sum();
        s
    }

    /// Counters of the wrapped sequential manager.
    #[must_use]
    pub fn stats(&self) -> BbddStats {
        self.inner.stats()
    }

    // ── thin delegates ────────────────────────────────────────────────

    /// Number of variables managed.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    /// Constant true.
    #[must_use]
    pub fn one(&self) -> Edge {
        self.inner.one()
    }

    /// Constant false.
    #[must_use]
    pub fn zero(&self) -> Edge {
        self.inner.zero()
    }

    /// The positive literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn var(&mut self, var: usize) -> Edge {
        self.inner.var(var)
    }

    /// The negative literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn nvar(&mut self, var: usize) -> Edge {
        self.inner.nvar(var)
    }

    /// Evaluate `f` under an assignment.
    #[must_use]
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        self.inner.eval(f, assignment)
    }

    /// Nodes reachable from `f`.
    #[must_use]
    pub fn node_count(&self, f: Edge) -> usize {
        self.inner.node_count(f)
    }

    /// Live (stored) nodes.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.inner.live_nodes()
    }

    /// Exact satisfying-assignment count (see [`Bbdd::sat_count`]).
    ///
    /// # Panics
    /// Panics if the manager has more than 127 variables.
    #[must_use]
    pub fn sat_count(&self, f: Edge) -> u128 {
        self.inner.sat_count(f)
    }

    /// One satisfying assignment, or `None` for constant false.
    #[must_use]
    pub fn any_sat(&self, f: Edge) -> Option<Vec<bool>> {
        self.inner.any_sat(f)
    }

    /// Garbage-collect, tracing the handle registry, and invalidate the
    /// concurrent cache; returns nodes reclaimed. Everything a live
    /// [`crate::ParBbddFn`] handle denotes survives.
    pub fn collect(&mut self) -> usize {
        let freed = self.inner.gc();
        self.frame.invalidate(self.inner.gc_generation());
        freed
    }

    /// Arm the automatic GC latch (see [`Bbdd::set_gc_threshold`]);
    /// collections run at trait-level operation boundaries and bump the
    /// concurrent cache epoch.
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.inner.set_gc_threshold(threshold);
    }

    // The owned-handle front-end lives in `ddcore::api` (see `crate::api`):
    // the parallel backend shares the inner manager's root registry, so a
    // `ParBbddFn` is indistinguishable from a sequential handle. The one
    // extra obligation is the *merge GC*: an automatic collection latched
    // during the deterministic commit (the overlay import runs through
    // `make_node`, a growth point) must not fire until the operation's
    // result is registered — guaranteed by the generic layer, which
    // registers first and only then runs `RawManager::after_op` (the
    // latched GC plus the cache-epoch sync below).

    /// Invalidate the concurrent cache if the inner manager collected
    /// since we last looked (node ids may have been recycled). Checked
    /// before every parallel phase and at every operation boundary, so
    /// even collections triggered through `inner_mut()` cannot leave
    /// stale id-keyed entries behind.
    pub(crate) fn sync_cache_epoch(&mut self) {
        let gen = self.inner.gc_generation();
        self.frame.sync_generation(gen);
    }

    // ── parallel operations ───────────────────────────────────────────

    /// `f ⊗ g` for an arbitrary binary operator, parallel above the
    /// cutoff.
    pub fn apply(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.apply(op, f, g);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_apply(op, f, g, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, None)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::AND, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::OR, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XOR, f, g)
    }

    /// `f ⊙ g`.
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XNOR, f, g)
    }

    /// If-then-else, parallel above the cutoff.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        if !self.worth_splitting(&[f, g, h]) {
            self.stats.ops_sequential += 1;
            return self.inner.ite(f, g, h);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_ite(f, g, h, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, None)
    }

    /// Existential cube quantification `∃ vars . f`, parallel above the
    /// cutoff.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn exists(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.quantify(f, vars, BoolOp::OR, optag::EXISTS)
    }

    /// Universal cube quantification `∀ vars . f`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn forall(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.quantify(f, vars, BoolOp::AND, optag::FORALL)
    }

    /// Fused relational product `∃ vars . (f ∧ g)`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn and_exists(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.and_exists(f, g, vars);
        }
        let Some(q) = self.build_quant(vars, BoolOp::OR, optag::EXISTS) else {
            return self.apply(BoolOp::AND, f, g);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_and_exists(f, g, &q, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, Some(&q))
    }

    // ── governed operations ───────────────────────────────────────────
    //
    // The `try_*` forms run the same three-phase pipeline under an
    // [`OpBudget`]. An *unlimited* budget short-circuits to the ordinary
    // path, so the infallible operations pay nothing. A limited one routes
    // the sequential fallback through the inner manager's governed
    // recursion and the parallel phase through the cooperative stop
    // predicate: workers consult the budget's [`StopView`] between tasks
    // (abort latency = the in-flight tasks), and the deterministic commit
    // charges every imported node. Abort safety is structural here — the
    // parallel phase only writes the overlay, which the next operation
    // recycles, and commit nodes orphaned by a mid-commit abort are
    // unreferenced, so the next GC reclaims them.
    //
    // [`StopView`]: ddcore::govern::StopView

    /// [`ParBbdd::apply`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    pub fn try_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.apply(op, f, g));
        }
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_apply(op, f, g, budget);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_apply(op, f, g, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, None, budget)
    }

    /// [`ParBbdd::ite`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    pub fn try_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.ite(f, g, h));
        }
        if !self.worth_splitting(&[f, g, h]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_ite(f, g, h, budget);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_ite(f, g, h, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, None, budget)
    }

    /// [`ParBbdd::exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_exists(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_quantify(f, vars, BoolOp::OR, optag::EXISTS, budget)
    }

    /// [`ParBbdd::forall`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_forall(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_quantify(f, vars, BoolOp::AND, optag::FORALL, budget)
    }

    /// [`ParBbdd::and_exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.and_exists(f, g, vars));
        }
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_and_exists(f, g, vars, budget);
        }
        let Some(q) = self.build_quant(vars, BoolOp::OR, optag::EXISTS) else {
            return self.try_apply(BoolOp::AND, f, g, budget);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_and_exists(f, g, &q, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, Some(&q), budget)
    }

    /// [`Bbdd::try_restrict`] on the wrapped sequential manager (no
    /// parallel phase).
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_restrict(
        &mut self,
        f: Edge,
        var: usize,
        value: bool,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.inner.try_restrict(f, var, value, budget)
    }

    /// [`Bbdd::try_compose`] on the wrapped sequential manager (no
    /// parallel phase).
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_compose(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.inner.try_compose(f, var, g, budget)
    }

    /// [`Bbdd::sat_count_checked`] on the wrapped sequential manager.
    #[must_use]
    pub fn sat_count_checked(&self, f: Edge) -> Option<u128> {
        self.inner.sat_count_checked(f)
    }

    /// [`Bbdd::try_sat_count`] on the wrapped sequential manager.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if the manager has more than 127 variables.
    pub fn try_sat_count(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.inner.try_sat_count(f, budget)
    }

    fn try_quantify(
        &mut self,
        f: Edge,
        vars: &[usize],
        combine: BoolOp,
        tag: u32,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.quantify(f, vars, combine, tag));
        }
        if !self.worth_splitting(&[f]) {
            self.stats.ops_sequential += 1;
            return if tag == optag::EXISTS {
                self.inner.try_exists(f, vars, budget)
            } else {
                self.inner.try_forall(f, vars, budget)
            };
        }
        let Some(q) = self.build_quant(vars, combine, tag) else {
            return Ok(f);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_quant(f, &q, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, Some(&q), budget)
    }

    fn quantify(&mut self, f: Edge, vars: &[usize], combine: BoolOp, tag: u32) -> Edge {
        if !self.worth_splitting(&[f]) {
            self.stats.ops_sequential += 1;
            return if tag == optag::EXISTS {
                self.inner.exists(f, vars)
            } else {
                self.inner.forall(f, vars)
            };
        }
        let Some(q) = self.build_quant(vars, combine, tag) else {
            return f;
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_quant(f, &q, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, Some(&q))
    }

    // ── pipeline internals ────────────────────────────────────────────

    /// The deterministic go/no-go: combined operand size against the
    /// cutoff. Walks at most `cutoff` nodes (early exit), so the probe
    /// costs a bounded fraction of the operation it gates; crucially it
    /// depends only on the operands, never on the thread count.
    fn worth_splitting(&mut self, roots: &[Edge]) -> bool {
        if self.cfg.cutoff == 0 {
            return true;
        }
        if self.inner.live_nodes() < self.cfg.cutoff {
            return false;
        }
        let probe = &mut self.probe;
        probe.clear();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !probe.insert(id) {
                continue;
            }
            if probe.len() >= self.cfg.cutoff {
                return true;
            }
            let n = self.inner.node(id);
            for child in [n.neq(), n.eq()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        false
    }

    fn split_depth(&self) -> u16 {
        match self.cfg.split_depth {
            Some(d) => d.max(1),
            None => {
                let t = self.cfg.threads.max(1).next_power_of_two();
                (t.trailing_zeros() as u16 + 3).min(12)
            }
        }
    }

    /// Mirror of the sequential `quant_ctx`: the level cube mask plus the
    /// canonical cube handle, built in the inner manager *before* the
    /// freeze (a deterministic prologue).
    fn build_quant(&mut self, vars: &[usize], combine: BoolOp, tag: u32) -> Option<PQuant> {
        let n = self.inner.num_vars();
        let mut in_cube = vec![false; n];
        let mut min_level = u16::MAX;
        for &v in vars {
            assert!(v < n, "quantified variable {v} out of range");
            let l = self.inner.level_of_var[v] as u16;
            in_cube[l as usize] = true;
            min_level = min_level.min(l);
        }
        if min_level == u16::MAX {
            return None;
        }
        let mut cube = Edge::ONE;
        for l in (0..n).rev() {
            if in_cube[l] {
                let lit = self.inner.shannon_node(l as u16);
                cube = self.inner.and(cube, lit);
            }
        }
        Some(PQuant {
            in_cube,
            min_level,
            cube_bits: u64::from(cube.bits()),
            combine,
            tag,
        })
    }

    fn intern_task(
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
        key: (u32, u64, u64),
        task: Task,
    ) -> Plan {
        let idx = *dedup.entry(key).or_insert_with(|| {
            tasks.push(task);
            tasks.len() - 1
        });
        Plan::Leaf(idx)
    }

    fn split_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == g {
            return Plan::Done(unary(op.on_equal_operands(), f));
        }
        if f == !g {
            return Plan::Done(unary(op.on_complement_operands(), f));
        }
        if f.is_constant() {
            return Plan::Done(unary(op.on_first_const(f == Edge::ONE), g));
        }
        if g.is_constant() {
            return Plan::Done(unary(op.on_second_const(g == Edge::ONE), f));
        }
        if depth == 0 {
            let key = (
                u32::from(op.table()),
                u64::from(f.bits()),
                u64::from(g.bits()),
            );
            return Self::intern_task(tasks, dedup, key, Task::Apply(op, f, g));
        }
        let lf = self.inner.node(f.node()).level();
        let lg = self.inner.node(g.node()).level();
        let i = lf.max(lg);
        let (fd, fe) = self.inner.cofactors(f, i);
        let (gd, ge) = self.inner.cofactors(g, i);
        let e = self.split_apply(op, fe, ge, depth - 1, tasks, dedup);
        let d = self.split_apply(op, fd, gd, depth - 1, tasks, dedup);
        Plan::Join {
            how: Combine::Node(i),
            d: Box::new(d),
            e: Box::new(e),
        }
    }

    fn split_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == Edge::ONE {
            return Plan::Done(g);
        }
        if f == Edge::ZERO {
            return Plan::Done(h);
        }
        if g == h {
            return Plan::Done(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Plan::Done(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Plan::Done(!f);
        }
        if f == g || g == Edge::ONE {
            return self.split_apply(BoolOp::OR, f, h, depth, tasks, dedup);
        }
        if f == !g || g == Edge::ZERO {
            return self.split_apply(BoolOp::NOT_AND, f, h, depth, tasks, dedup);
        }
        if f == h || h == Edge::ZERO {
            return self.split_apply(BoolOp::AND, f, g, depth, tasks, dedup);
        }
        if f == !h || h == Edge::ONE {
            return self.split_apply(BoolOp::IMPLIES, f, g, depth, tasks, dedup);
        }
        if depth == 0 {
            let key = (
                optag::ITE,
                u64::from(f.bits()),
                (u64::from(g.bits()) << 32) | u64::from(h.bits()),
            );
            return Self::intern_task(tasks, dedup, key, Task::Ite(f, g, h));
        }
        let mut i = self.inner.node(f.node()).level();
        for e in [g, h] {
            if let Some(l) = self.inner.edge_level(e) {
                i = i.max(l);
            }
        }
        let (fd, fe) = self.inner.cofactors(f, i);
        let (gd, ge) = self.inner.cofactors(g, i);
        let (hd, he) = self.inner.cofactors(h, i);
        let e = self.split_ite(fe, ge, he, depth - 1, tasks, dedup);
        let d = self.split_ite(fd, gd, hd, depth - 1, tasks, dedup);
        Plan::Join {
            how: Combine::Node(i),
            d: Box::new(d),
            e: Box::new(e),
        }
    }

    fn split_quant(
        &mut self,
        f: Edge,
        q: &PQuant,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f.is_constant() {
            return Plan::Done(f);
        }
        let i = self.inner.node(f.node()).level();
        if i < q.min_level {
            return Plan::Done(f);
        }
        let leaf = |tasks: &mut Vec<Task>, dedup: &mut _| {
            let key = (q.tag, u64::from(f.bits()), q.cube_bits);
            Self::intern_task(tasks, dedup, key, Task::Quant(f))
        };
        if depth == 0 {
            return leaf(tasks, dedup);
        }
        if q.in_cube[i as usize] {
            // Case 1: the PV is quantified away; children join with the
            // combine operator (a full parallel apply at resolve time).
            let (fd, fe) = self.inner.cofactors(f, i);
            let d = self.split_quant(fd, q, depth - 1, tasks, dedup);
            let e = self.split_quant(fe, q, depth - 1, tasks, dedup);
            Plan::Join {
                how: Combine::Op(q.combine),
                d: Box::new(d),
                e: Box::new(e),
            }
        } else if i > 0 && q.in_cube[i as usize - 1] {
            // Case 2 (SV quantified, PV not) re-expands through `ite`;
            // splitting through it would need inner mutations mid-split,
            // so the whole subproblem becomes a leaf.
            leaf(tasks, dedup)
        } else {
            let (fd, fe) = self.inner.cofactors(f, i);
            let d = self.split_quant(fd, q, depth - 1, tasks, dedup);
            let e = self.split_quant(fe, q, depth - 1, tasks, dedup);
            Plan::Join {
                how: Combine::Node(i),
                d: Box::new(d),
                e: Box::new(e),
            }
        }
    }

    fn split_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        q: &PQuant,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Plan::Done(Edge::ZERO);
        }
        if f == Edge::ONE {
            return self.split_quant(g, q, depth, tasks, dedup);
        }
        if g == Edge::ONE || f == g {
            return self.split_quant(f, q, depth, tasks, dedup);
        }
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let lf = self.inner.node(f.node()).level();
        let lg = self.inner.node(g.node()).level();
        let i = lf.max(lg);
        if i < q.min_level {
            return self.split_apply(BoolOp::AND, f, g, depth, tasks, dedup);
        }
        let leaf = |tasks: &mut Vec<Task>, dedup: &mut _| {
            let key = (
                optag::AND_EXISTS,
                u64::from(f.bits()),
                (u64::from(g.bits()) << 32) ^ q.cube_bits,
            );
            Self::intern_task(tasks, dedup, key, Task::AndExists(f, g))
        };
        if depth == 0 {
            return leaf(tasks, dedup);
        }
        if q.in_cube[i as usize] {
            let (fd, fe) = self.inner.cofactors(f, i);
            let (gd, ge) = self.inner.cofactors(g, i);
            let d = self.split_and_exists(fd, gd, q, depth - 1, tasks, dedup);
            let e = self.split_and_exists(fe, ge, q, depth - 1, tasks, dedup);
            Plan::Join {
                how: Combine::Op(BoolOp::OR),
                d: Box::new(d),
                e: Box::new(e),
            }
        } else if i > 0 && q.in_cube[i as usize - 1] {
            leaf(tasks, dedup)
        } else {
            let (fd, fe) = self.inner.cofactors(f, i);
            let (gd, ge) = self.inner.cofactors(g, i);
            let d = self.split_and_exists(fd, gd, q, depth - 1, tasks, dedup);
            let e = self.split_and_exists(fe, ge, q, depth - 1, tasks, dedup);
            Plan::Join {
                how: Combine::Node(i),
                d: Box::new(d),
                e: Box::new(e),
            }
        }
    }

    /// Phases 2 + 3: run the leaf tasks fork-join style over the frozen
    /// base, then commit deterministically (import + combine).
    fn execute(&mut self, plan: &Plan, tasks: &[Task], quant: Option<&PQuant>) -> Edge {
        // Catch any inner-manager collection this wrapper did not perform
        // itself before trusting id-keyed cache entries.
        self.sync_cache_epoch();
        if tasks.is_empty() {
            // Everything resolved during the split; the combine tree may
            // still join Done edges.
            return self.resolve(plan, &[]);
        }
        self.stats.ops_parallel += 1;
        // Freeze the base: workers read `inner` only. Recycle the overlay
        // workspace from the previous operation (cached overlay ids die
        // with the arena reset, so the cache epoch must move too).
        self.frame.recycle();
        self.frame.cache.bump_epoch();
        let base_len = u32::try_from(self.inner.nodes.len()).expect("arena fits u32");
        let results: Vec<AtomicU64> = tasks.iter().map(|_| AtomicU64::new(0)).collect();
        let recursions = AtomicU64::new(0);
        let fj = {
            let mut phase = ddcore::obs::span(ddcore::obs::Op::ParPhase);
            phase.set_arg("tasks", tasks.len() as u64);
            let ctx = PCtx {
                base: &self.inner,
                base_len,
                table: &self.frame.table,
                arena: &self.frame.arena,
                cache: &self.frame.cache,
                quant,
            };
            fork_join(self.cfg.threads, tasks.len(), |i| {
                let (r, calls) = ctx.run_task(&tasks[i]);
                results[i].store(u64::from(r.bits()), Ordering::Release);
                recursions.fetch_add(calls, Ordering::Relaxed);
            })
        };
        self.stats.tasks_executed += tasks.len() as u64;
        self.stats.tasks_stolen += fj.stolen;
        if self.stats.tasks_by_worker.len() < fj.executed.len() {
            self.stats.tasks_by_worker.resize(fj.executed.len(), 0);
        }
        for (slot, n) in self.stats.tasks_by_worker.iter_mut().zip(&fj.executed) {
            *slot += n;
        }
        self.stats.par_recursions += recursions.load(Ordering::Relaxed);
        self.stats.overlay_nodes += u64::from(self.frame.arena.len());
        self.stats.last_shard_occupancy = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|s| s.len)
            .collect();
        // Deterministic commit: import each leaf result (depth-first over
        // the canonical overlay graph, fixed task order), then resolve the
        // combine tree.
        let mut commit = ddcore::obs::span(ddcore::obs::Op::ParCommit);
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        let leaf_edges: Vec<Edge> = results
            .iter()
            .map(|slot| {
                let e = Edge::from_bits(slot.load(Ordering::Acquire) as u32);
                Self::import(&mut self.inner, &self.frame.arena, base_len, &mut memo, e)
            })
            .collect();
        self.stats.nodes_imported += memo.len() as u64;
        commit.set_arg("imported", memo.len() as u64);
        self.resolve(plan, &leaf_edges)
    }

    /// Commit one overlay edge into the base manager (memoized depth-first
    /// rebuild through the ordinary canonicalizing `make_node`).
    fn import(
        inner: &mut Bbdd,
        arena: &OverlayArena,
        base_len: u32,
        memo: &mut FxHashMap<u32, Edge>,
        e: Edge,
    ) -> Edge {
        if e.is_constant() || e.node() < base_len {
            return e;
        }
        let id = e.node();
        if let Some(&r) = memo.get(&id) {
            return r.complement_if(e.is_complemented());
        }
        let (a, b, meta) = arena.get(id - base_len);
        let level = meta as u16;
        let r = if meta & SHANNON_BIT != 0 {
            inner.shannon_node(level)
        } else {
            let neq = Self::import(inner, arena, base_len, memo, Edge::from_bits(a));
            let eq = Self::import(inner, arena, base_len, memo, Edge::from_bits(b));
            inner.make_node(level, neq, eq)
        };
        debug_assert!(
            !r.is_complemented(),
            "regular overlay nodes import to regular edges"
        );
        memo.insert(id, r);
        r.complement_if(e.is_complemented())
    }

    /// Resolve the combine tree bottom-up (=-branch first, mirroring the
    /// sequential recursion's evaluation order).
    fn resolve(&mut self, plan: &Plan, leaf_edges: &[Edge]) -> Edge {
        match plan {
            Plan::Done(e) => *e,
            Plan::Leaf(i) => leaf_edges[*i],
            Plan::Join { how, d, e } => {
                let ee = self.resolve(e, leaf_edges);
                let dd = self.resolve(d, leaf_edges);
                match how {
                    Combine::Node(level) => self.inner.make_node(*level, dd, ee),
                    Combine::Op(op) => self.apply(*op, dd, ee),
                }
            }
        }
    }

    /// Governed phases 2 + 3 — [`ParBbdd::execute`] under an [`OpBudget`].
    ///
    /// The fork-join phase stops cooperatively: workers consult the
    /// budget's stop view *between tasks* (overlay growth counts against
    /// the node headroom), so the abort latency of the parallel phase is
    /// bounded by the tasks in flight when the condition turns true. On a
    /// stop the base manager has not been touched — workers only write the
    /// overlay, which the next operation recycles — so `Err` here is
    /// trivially abort-safe. The deterministic commit charges every
    /// imported node against the budget (per-leaf, in bulk); a mid-commit
    /// abort leaves only unreferenced base nodes behind, reclaimed by the
    /// next GC.
    fn try_execute(
        &mut self,
        plan: &Plan,
        tasks: &[Task],
        quant: Option<&PQuant>,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.sync_cache_epoch();
        let view = budget.stop_view();
        if let Some(reason) = view.should_stop(0) {
            return Err(reason);
        }
        if tasks.is_empty() {
            return self.try_resolve(plan, &[], budget);
        }
        self.stats.ops_parallel += 1;
        self.frame.recycle();
        self.frame.cache.bump_epoch();
        let base_len = u32::try_from(self.inner.nodes.len()).expect("arena fits u32");
        let results: Vec<AtomicU64> = tasks.iter().map(|_| AtomicU64::new(0)).collect();
        let recursions = AtomicU64::new(0);
        let (fj, stopped) = {
            let mut phase = ddcore::obs::span(ddcore::obs::Op::ParPhase);
            phase.set_arg("tasks", tasks.len() as u64);
            let ctx = PCtx {
                base: &self.inner,
                base_len,
                table: &self.frame.table,
                arena: &self.frame.arena,
                cache: &self.frame.cache,
                quant,
            };
            let arena = &self.frame.arena;
            match try_fork_join_governed(
                self.cfg.threads,
                tasks.len(),
                || view.should_stop(u64::from(arena.len())).is_some(),
                |i| {
                    let (r, calls) = ctx.run_task(&tasks[i]);
                    results[i].store(u64::from(r.bits()), Ordering::Release);
                    recursions.fetch_add(calls, Ordering::Relaxed);
                },
            ) {
                Ok(x) => x,
                Err(p) => panic!("{p}"),
            }
        };
        self.stats.tasks_executed += fj.executed.iter().sum::<u64>();
        self.stats.tasks_stolen += fj.stolen;
        if self.stats.tasks_by_worker.len() < fj.executed.len() {
            self.stats.tasks_by_worker.resize(fj.executed.len(), 0);
        }
        for (slot, n) in self.stats.tasks_by_worker.iter_mut().zip(&fj.executed) {
            *slot += n;
        }
        self.stats.par_recursions += recursions.load(Ordering::Relaxed);
        self.stats.overlay_nodes += u64::from(self.frame.arena.len());
        self.stats.last_shard_occupancy = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|s| s.len)
            .collect();
        if stopped {
            // Unclaimed result slots hold garbage; nothing reads them.
            return Err(view
                .should_stop(u64::from(self.frame.arena.len()))
                .unwrap_or(OpAbort::Cancelled));
        }
        let mut commit = ddcore::obs::span(ddcore::obs::Op::ParCommit);
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        let mut leaf_edges: Vec<Edge> = Vec::with_capacity(results.len());
        let mut abort: Option<OpAbort> = None;
        for slot in &results {
            let e = Edge::from_bits(slot.load(Ordering::Acquire) as u32);
            let before = memo.len();
            leaf_edges.push(Self::import(
                &mut self.inner,
                &self.frame.arena,
                base_len,
                &mut memo,
                e,
            ));
            if let Err(reason) = budget.charge((memo.len() - before) as u64) {
                abort = Some(reason);
                break;
            }
        }
        self.stats.nodes_imported += memo.len() as u64;
        if let Some(reason) = abort {
            return Err(reason);
        }
        commit.set_arg("imported", memo.len() as u64);
        self.try_resolve(plan, &leaf_edges, budget)
    }

    /// Governed combine-tree resolution: structural joins poll the budget
    /// before each `make_node`, operator joins recurse through the
    /// governed apply.
    fn try_resolve(
        &mut self,
        plan: &Plan,
        leaf_edges: &[Edge],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match plan {
            Plan::Done(e) => Ok(*e),
            Plan::Leaf(i) => Ok(leaf_edges[*i]),
            Plan::Join { how, d, e } => {
                let ee = self.try_resolve(e, leaf_edges, budget)?;
                let dd = self.try_resolve(d, leaf_edges, budget)?;
                match how {
                    Combine::Node(level) => {
                        budget.checkpoint()?;
                        Ok(self.inner.make_node(*level, dd, ee))
                    }
                    Combine::Op(op) => self.try_apply(*op, dd, ee, budget),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced() -> ParConfig {
        ParConfig {
            threads: 4,
            cutoff: 0, // force the parallel pipeline on every operand size
            split_depth: Some(3),
            cache_ways: 1 << 10,
            shards: 8,
        }
    }

    fn build_mixed(
        n: usize,
        seed: u64,
        apply: &mut impl FnMut(BoolOp, Edge, Edge) -> Edge,
        vars: &[Edge],
    ) -> Edge {
        let ops = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
        ];
        let mut state = seed | 1;
        let mut f = vars[0];
        for _ in 0..3 * n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = ops[(state >> 33) as usize % ops.len()];
            let v = vars[(state >> 18) as usize % n];
            f = apply(op, f, v);
        }
        f
    }

    /// The core determinism + correctness check on one random function
    /// family: parallel results must be bit-identical across thread counts
    /// and semantically equal to the sequential manager's.
    #[test]
    fn parallel_ops_match_sequential_and_are_thread_count_invariant() {
        let n = 10;
        for seed in 0..4u64 {
            let mut reference: Option<(Edge, Edge, Edge, Edge, Edge)> = None;
            // Sequential baseline.
            let mut seq = Bbdd::new(n);
            let vs: Vec<Edge> = (0..n).map(|v| seq.var(v)).collect();
            let fs = build_mixed(n, seed, &mut |op, a, b| seq.apply(op, a, b), &vs);
            let gs = build_mixed(n, seed + 77, &mut |op, a, b| seq.apply(op, a, b), &vs);
            let seq_apply = seq.apply(BoolOp::AND, fs, gs);
            let seq_ite = seq.ite(fs, gs, seq_apply);
            let seq_ex = seq.exists(fs, &[1, 3, 4]);
            let seq_fa = seq.forall(fs, &[0, 2]);
            let seq_ae = seq.and_exists(fs, gs, &[2, 5, 6]);

            for threads in [1usize, 2, 4, 8] {
                let mut par = ParBbdd::with_config(
                    n,
                    ParConfig {
                        threads,
                        ..forced()
                    },
                );
                let vp: Vec<Edge> = (0..n).map(|v| par.var(v)).collect();
                let fp = build_mixed(n, seed, &mut |op, a, b| par.apply(op, a, b), &vp);
                let gp = build_mixed(n, seed + 77, &mut |op, a, b| par.apply(op, a, b), &vp);
                let p_apply = par.apply(BoolOp::AND, fp, gp);
                let p_ite = par.ite(fp, gp, p_apply);
                let p_ex = par.exists(fp, &[1, 3, 4]);
                let p_fa = par.forall(fp, &[0, 2]);
                let p_ae = par.and_exists(fp, gp, &[2, 5, 6]);
                let got = (p_apply, p_ite, p_ex, p_fa, p_ae);
                match reference {
                    None => reference = Some(got),
                    Some(expect) => assert_eq!(
                        got, expect,
                        "seed {seed}: thread count {threads} changed a root"
                    ),
                }
                par.inner().validate().unwrap();
                // Semantic equality against the sequential manager (and
                // canonical-size equality — same reduced diagram).
                for (p, s, name) in [
                    (p_apply, seq_apply, "apply"),
                    (p_ite, seq_ite, "ite"),
                    (p_ex, seq_ex, "exists"),
                    (p_fa, seq_fa, "forall"),
                    (p_ae, seq_ae, "and_exists"),
                ] {
                    assert_eq!(
                        par.node_count(p),
                        seq.node_count(s),
                        "seed {seed} {name}: canonical sizes differ"
                    );
                    for m in 0..(1u32 << n) {
                        let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                        assert_eq!(
                            par.eval(p, &a),
                            seq.eval(s, &a),
                            "seed {seed} {name} assignment {a:?}"
                        );
                    }
                }
                assert!(
                    par.par_stats().ops_parallel > 0,
                    "cutoff 0 must exercise the pipeline"
                );
            }
        }
    }

    #[test]
    fn sequential_fallback_below_cutoff() {
        let mut par = ParBbdd::new(6, 4); // default cutoff 2048
        let (a, b) = (par.var(0), par.var(1));
        let f = par.apply(BoolOp::AND, a, b);
        assert!(!f.is_constant());
        let st = par.par_stats();
        assert_eq!(st.ops_parallel, 0);
        assert!(st.ops_sequential > 0);
    }

    #[test]
    fn collect_keeps_roots_and_recycles() {
        let mut par = ParBbdd::with_config(8, forced());
        let vs: Vec<Edge> = (0..8).map(|v| par.var(v)).collect();
        let f = build_mixed(8, 5, &mut |op, a, b| par.apply(op, a, b), &vs);
        let tf: Vec<bool> = (0..256u32)
            .map(|m| {
                let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
                par.eval(f, &a)
            })
            .collect();
        let _pins: Vec<_> = vs.iter().chain([&f]).map(|&e| par.pin(e)).collect();
        par.collect();
        par.inner().validate().unwrap();
        for (m, want) in tf.iter().enumerate() {
            let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(par.eval(f, &a), *want);
        }
        // Post-GC operations still work (and still deterministic).
        let g = par.apply(BoolOp::XOR, f, vs[0]);
        let g2 = par.apply(BoolOp::XOR, f, vs[0]);
        assert_eq!(g, g2);
    }

    #[test]
    fn inner_mut_collections_invalidate_the_concurrent_cache() {
        // Regression (post-review): an automatic GC triggered through
        // inner_mut() handle ops runs behind the wrapper's back; unless
        // the wrapper notices (gc_generation sync), the lossy concurrent
        // cache keeps entries keyed on freed — and then recycled — node
        // ids, and a later parallel op can return a wrong edge.
        let mut par = ParBbdd::with_config(8, forced());
        let vs: Vec<Edge> = (0..8).map(|v| par.var(v)).collect();
        let f = build_mixed(8, 5, &mut |op, a, b| par.apply(op, a, b), &vs);
        let g = build_mixed(8, 6, &mut |op, a, b| par.apply(op, a, b), &vs);
        let (_fh, _gh) = (par.pin(f), par.pin(g));
        let truth: Vec<bool> = (0..256u32)
            .map(|m| {
                let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
                par.eval(f, &a) && par.eval(g, &a)
            })
            .collect();
        // Arm the latch, churn garbage-producing ops through inner_mut(),
        // and run the latched collections at the sequential manager's own
        // boundary: entirely behind the wrapper's back.
        par.set_gc_threshold(1);
        let runs0 = par.stats().gc_runs;
        for v in 0..8 {
            let a = par.inner_mut().var(v);
            let b = par.inner_mut().var((v + 1) % 8);
            let _ = par.inner_mut().xnor(a, b);
            par.inner_mut().maybe_auto_gc();
        }
        assert!(par.stats().gc_runs > runs0, "inner auto-GC must have run");
        // The parallel pipeline must re-derive, not replay stale entries.
        let h = par.apply(BoolOp::AND, f, g);
        for (m, want) in truth.iter().enumerate() {
            let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(par.eval(h, &a), *want, "assignment {m}");
        }
        par.inner().validate().unwrap();
    }

    #[test]
    fn par_stats_surface_the_machinery() {
        let mut par = ParBbdd::with_config(10, forced());
        let vs: Vec<Edge> = (0..10).map(|v| par.var(v)).collect();
        let f = build_mixed(10, 9, &mut |op, a, b| par.apply(op, a, b), &vs);
        let g = build_mixed(10, 10, &mut |op, a, b| par.apply(op, a, b), &vs);
        let _ = par.apply(BoolOp::AND, f, g);
        let st = par.par_stats();
        assert!(st.ops_parallel > 0);
        assert!(st.tasks_executed > 0);
        assert!(st.par_recursions > 0);
        assert!(st.cache.lookups > 0);
        assert_eq!(st.last_shard_occupancy.len(), 8);
        assert_eq!(
            st.tasks_executed,
            st.tasks_by_worker.iter().sum::<u64>(),
            "per-worker tallies must add up"
        );
    }
}

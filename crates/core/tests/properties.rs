//! Property-based tests of the BBDD package's core invariants:
//! construction semantics, canonicity, counting, restriction, swap and
//! sifting — all compared against brute-force evaluation of random
//! expression trees.

use bbdd::{Bbdd, BoolOp, Edge};
use proptest::prelude::*;

/// A small random expression AST over `n` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Const(bool),
    Not(Box<Expr>),
    Bin(u8, Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr(nvars: usize, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(depth, 64, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (0u8..16, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(s, a, b)| Expr::Ite(
                Box::new(s),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build(mgr: &mut Bbdd, e: &Expr) -> Edge {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Const(b) => {
            if *b {
                mgr.one()
            } else {
                mgr.zero()
            }
        }
        Expr::Not(x) => {
            let inner = build(mgr, x);
            !inner
        }
        Expr::Bin(op, a, b) => {
            let ea = build(mgr, a);
            let eb = build(mgr, b);
            mgr.apply(BoolOp::from_table(*op), ea, eb)
        }
        Expr::Ite(s, a, b) => {
            let es = build(mgr, s);
            let ea = build(mgr, a);
            let eb = build(mgr, b);
            mgr.ite(es, ea, eb)
        }
    }
}

fn eval_expr(e: &Expr, v: &[bool]) -> bool {
    match e {
        Expr::Var(i) => v[*i],
        Expr::Const(b) => *b,
        Expr::Not(x) => !eval_expr(x, v),
        Expr::Bin(op, a, b) => BoolOp::from_table(*op).eval(eval_expr(a, v), eval_expr(b, v)),
        Expr::Ite(s, a, b) => {
            if eval_expr(s, v) {
                eval_expr(a, v)
            } else {
                eval_expr(b, v)
            }
        }
    }
}

const NVARS: usize = 5;

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|m| (0..NVARS).map(|i| (m >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn build_matches_brute_force(e in arb_expr(NVARS, 5)) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        mgr.validate().unwrap();
        for v in assignments() {
            prop_assert_eq!(mgr.eval(f, &v), eval_expr(&e, &v));
        }
    }

    #[test]
    fn canonicity_equal_functions_equal_edges(e in arb_expr(NVARS, 4)) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        // Rebuild through a double negation and through ite(f, 1, 0).
        let g0 = build(&mut mgr, &Expr::Not(Box::new(Expr::Not(Box::new(e.clone())))));
        let one = mgr.one();
        let zero = mgr.zero();
        let g1 = mgr.ite(f, one, zero);
        prop_assert_eq!(f, g0);
        prop_assert_eq!(f, g1);
    }

    #[test]
    fn sat_count_matches_brute_force(e in arb_expr(NVARS, 4)) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let brute = assignments().filter(|v| eval_expr(&e, v)).count() as u128;
        prop_assert_eq!(mgr.sat_count(f), brute);
        let frac = mgr.sat_fraction(f);
        prop_assert!((frac - brute as f64 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn restrict_and_quantifiers_match(e in arb_expr(NVARS, 4), var in 0..NVARS) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let f0 = mgr.restrict(f, var, false);
        let f1 = mgr.restrict(f, var, true);
        let ex = mgr.exists(f, &[var]);
        let fa = mgr.forall(f, &[var]);
        for v in assignments() {
            let mut v0 = v.clone();
            v0[var] = false;
            let mut v1 = v.clone();
            v1[var] = true;
            let (r0, r1) = (eval_expr(&e, &v0), eval_expr(&e, &v1));
            prop_assert_eq!(mgr.eval(f0, &v), r0);
            prop_assert_eq!(mgr.eval(f1, &v), r1);
            prop_assert_eq!(mgr.eval(ex, &v), r0 || r1);
            prop_assert_eq!(mgr.eval(fa, &v), r0 && r1);
        }
    }

    #[test]
    fn swap_walks_preserve_functions(
        e in arb_expr(NVARS, 4),
        walk in proptest::collection::vec(0..NVARS - 1, 1..24),
    ) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let reference: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        for pos in walk {
            mgr.swap_adjacent(pos);
            mgr.validate().unwrap();
            let now: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
            prop_assert_eq!(&now, &reference);
        }
    }

    #[test]
    fn sift_preserves_and_never_grows(e in arb_expr(NVARS, 5)) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e);
        let reference: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        let _pin = mgr.pin(f);
        mgr.gc();
        let before = mgr.live_nodes();
        mgr.sift();
        mgr.validate().unwrap();
        prop_assert!(mgr.live_nodes() <= before, "sifting must not grow the diagram");
        let now: Vec<bool> = assignments().map(|v| mgr.eval(f, &v)).collect();
        prop_assert_eq!(&now, &reference);
    }

    #[test]
    fn gc_keeps_roots_intact(e1 in arb_expr(NVARS, 4), e2 in arb_expr(NVARS, 4)) {
        let mut mgr = Bbdd::new(NVARS);
        let f = build(&mut mgr, &e1);
        let g = build(&mut mgr, &e2);
        let fh = mgr.pin(f); // g may die; f must survive
        mgr.gc();
        let _ = &fh;
        mgr.validate().unwrap();
        for v in assignments() {
            prop_assert_eq!(mgr.eval(f, &v), eval_expr(&e1, &v));
        }
        // Rebuilding g afterwards must still be correct.
        let g2 = build(&mut mgr, &e2);
        let _ = g;
        for v in assignments() {
            prop_assert_eq!(mgr.eval(g2, &v), eval_expr(&e2, &v));
        }
    }

    #[test]
    fn compose_matches_substitution(e in arb_expr(4, 3), g in arb_expr(4, 3), var in 0..4usize) {
        let mut mgr = Bbdd::new(4);
        let ef = build(&mut mgr, &e);
        let eg = build(&mut mgr, &g);
        let h = mgr.compose(ef, var, eg);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let mut vs = v.clone();
            vs[var] = eval_expr(&g, &v);
            prop_assert_eq!(mgr.eval(h, &v), eval_expr(&e, &vs));
        }
    }
}

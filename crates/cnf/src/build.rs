//! Scheduled CNF → decision-diagram construction.
//!
//! Two entry points over the same plan semantics:
//!
//! * [`try_build_cnf`] — handle-based, generic over
//!   [`FunctionManager`]: every `CLAUSE_STRIDE` clauses it runs the
//!   manager's budgeted collection gate (`try_collect`), which is where
//!   installed DVO schedules fire mid-build, exactly like the netlist
//!   builder. This is the CLI and test path.
//! * [`try_build_cnf_raw`] — edge-based, generic over [`RawManager`]:
//!   no collection gates (the caller owns reclamation — session forks
//!   reclaim the whole overlay at drop). This is the serve path, run
//!   inside `Session::build_raw`.
//!
//! Both conjoin each plan group left to right, then merge group results
//! pairwise (balanced tree), tracking the peak intermediate conjunction
//! size for the `cnf.*` metrics.

use crate::dimacs::Cnf;
use crate::schedule::SchedulePlan;
use ddcore::api::{BooleanFunction, FunctionManager, RawManager};
use ddcore::boolop::BoolOp;
use ddcore::govern::{OpAbort, OpBudget};

/// Clauses conjoined between budgeted collection gates in the handle
/// path (each gate may fire a scheduled DVO pass).
pub const CLAUSE_STRIDE: usize = 64;

/// Counters from one construction, feeding the `cnf.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Clauses conjoined into the result.
    pub clauses_scheduled: u64,
    /// Groups in the executed plan.
    pub groups: u64,
    /// Largest node count of any intermediate conjunction result — the
    /// quantity clause scheduling exists to keep small.
    pub conj_peak_nodes: u64,
}

impl BuildStats {
    fn observe(&mut self, nodes: usize) {
        self.conj_peak_nodes = self.conj_peak_nodes.max(nodes as u64);
    }
}

/// A budgeted construction that ran out of road.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildAborted {
    /// Why the budget stopped it.
    pub reason: OpAbort,
    /// Clauses successfully conjoined before the abort.
    pub clauses_done: u64,
}

impl std::fmt::Display for BuildAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CNF build aborted ({}) after {} clauses",
            self.reason, self.clauses_done
        )
    }
}

impl std::error::Error for BuildAborted {}

/// Build the conjunction of `cnf` under `plan` with unlimited resources.
///
/// # Panics
/// Panics if the manager has fewer than `cnf.num_vars` variables or the
/// plan does not cover the instance.
pub fn build_cnf<M: FunctionManager>(
    mgr: &M,
    cnf: &Cnf,
    plan: &SchedulePlan,
) -> (M::Function, BuildStats) {
    let mut budget = OpBudget::unlimited();
    match try_build_cnf(mgr, cnf, plan, &mut budget) {
        Ok(r) => r,
        Err(e) => unreachable!("unlimited budget aborted: {e}"),
    }
}

/// Build the conjunction of `cnf` under `plan` and `budget`, running the
/// manager's collection gate (GC + scheduled DVO) every
/// [`CLAUSE_STRIDE`] clauses. On abort every intermediate handle is
/// dropped and the manager stays fully usable; the orphaned scratch
/// nodes are swept by the next collection.
///
/// # Errors
/// [`BuildAborted`] with the budget's reason and the progress made.
///
/// # Panics
/// Panics if the manager has fewer than `cnf.num_vars` variables or the
/// plan does not cover the instance.
pub fn try_build_cnf<M: FunctionManager>(
    mgr: &M,
    cnf: &Cnf,
    plan: &SchedulePlan,
    budget: &mut OpBudget,
) -> Result<(M::Function, BuildStats), BuildAborted> {
    assert!(
        mgr.num_vars() >= cnf.num_vars,
        "manager has {} vars, instance declares {}",
        mgr.num_vars(),
        cnf.num_vars
    );
    assert!(
        plan.covers_exactly(cnf.num_clauses()),
        "schedule plan does not cover the instance"
    );
    let mut stats = BuildStats {
        groups: plan.groups.len() as u64,
        ..BuildStats::default()
    };
    let abort = |reason: OpAbort, stats: &BuildStats| BuildAborted {
        reason,
        clauses_done: stats.clauses_scheduled,
    };

    let mut group_fns: Vec<M::Function> = Vec::with_capacity(plan.groups.len());
    for group in &plan.groups {
        let mut acc = mgr.constant(true);
        for &ci in group {
            let clause = match try_clause_fn(mgr, &cnf.clauses[ci], budget) {
                Ok(c) => c,
                Err(r) => return Err(abort(r, &stats)),
            };
            acc = match acc.try_and(&clause, budget) {
                Ok(f) => f,
                Err(r) => return Err(abort(r, &stats)),
            };
            stats.clauses_scheduled += 1;
            stats.observe(acc.node_count());
            if stats.clauses_scheduled.is_multiple_of(CLAUSE_STRIDE as u64) {
                // The DVO/GC gate: scheduled sifts fire here, abort-safely.
                if let Err(r) = mgr.try_collect(budget) {
                    return Err(abort(r, &stats));
                }
            }
        }
        group_fns.push(acc);
    }

    // Balanced pairwise merge of the group results.
    while group_fns.len() > 1 {
        let mut next: Vec<M::Function> = Vec::with_capacity(group_fns.len().div_ceil(2));
        let mut it = group_fns.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let merged = match a.try_and(&b, budget) {
                        Ok(f) => f,
                        Err(r) => return Err(abort(r, &stats)),
                    };
                    stats.observe(merged.node_count());
                    next.push(merged);
                }
                None => next.push(a),
            }
        }
        group_fns = next;
        if let Err(r) = mgr.try_collect(budget) {
            return Err(abort(r, &stats));
        }
    }
    let result = group_fns.pop().unwrap_or_else(|| mgr.constant(true));
    stats.observe(result.node_count());
    Ok((result, stats))
}

/// One clause as a function: the disjunction of its literals.
fn try_clause_fn<M: FunctionManager>(
    mgr: &M,
    clause: &[i32],
    budget: &mut OpBudget,
) -> Result<M::Function, OpAbort> {
    let mut acc = mgr.constant(false);
    for &l in clause {
        let v = (l.unsigned_abs() - 1) as usize;
        let lit = if l > 0 { mgr.var(v) } else { mgr.var(v).not() };
        acc = acc.try_or(&lit, budget)?;
    }
    Ok(acc)
}

// ───────────────────────── edge-level path ────────────────────────────────

/// Edge-level [`try_build_cnf`] for callers that hold a raw backend —
/// the serve layer building a DIMACS instance inside a session fork. No
/// collection gates run (a fork reclaims its whole overlay at drop, and
/// GC without root registration would sweep the intermediates).
///
/// # Errors
/// The budget's abort reason; the backend keeps every node it allocated
/// (the caller's reclamation policy applies).
///
/// # Panics
/// Panics if the backend has fewer than `cnf.num_vars` variables or the
/// plan does not cover the instance.
pub fn try_build_cnf_raw<B: RawManager>(
    mgr: &mut B,
    cnf: &Cnf,
    plan: &SchedulePlan,
    budget: &mut OpBudget,
) -> Result<(B::Edge, BuildStats), OpAbort> {
    assert!(mgr.num_vars() >= cnf.num_vars);
    assert!(plan.covers_exactly(cnf.num_clauses()));
    let mut stats = BuildStats {
        groups: plan.groups.len() as u64,
        ..BuildStats::default()
    };
    let tru = mgr.constant_edge(true);
    let fls = mgr.constant_edge(false);
    let mut group_edges: Vec<B::Edge> = Vec::with_capacity(plan.groups.len());
    for group in &plan.groups {
        let mut acc = tru;
        for &ci in group {
            let mut clause = fls;
            for &l in &cnf.clauses[ci] {
                let v = (l.unsigned_abs() - 1) as usize;
                let x = mgr.var_edge(v);
                let lit = if l > 0 {
                    x
                } else {
                    mgr.try_apply_edge(BoolOp::XOR, x, tru, budget)?
                };
                clause = mgr.try_apply_edge(BoolOp::OR, clause, lit, budget)?;
            }
            acc = mgr.try_apply_edge(BoolOp::AND, acc, clause, budget)?;
            stats.clauses_scheduled += 1;
            stats.observe(mgr.node_count_edge(acc));
        }
        group_edges.push(acc);
    }
    while group_edges.len() > 1 {
        let mut next: Vec<B::Edge> = Vec::with_capacity(group_edges.len().div_ceil(2));
        let mut it = group_edges.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let merged = mgr.try_apply_edge(BoolOp::AND, a, b, budget)?;
                    stats.observe(mgr.node_count_edge(merged));
                    next.push(merged);
                }
                None => next.push(a),
            }
        }
        group_edges = next;
    }
    let result = group_edges.pop().unwrap_or(tru);
    stats.observe(mgr.node_count_edge(result));
    Ok((result, stats))
}

//! DIMACS CNF representation, strict parser and writer.
//!
//! The parser is deliberately strict: SAT-competition archives are full of
//! silently-truncated and hand-edited files, and a model counter that
//! guesses at malformed input produces *wrong numbers*, not error
//! messages. Every rejection carries the 1-based line number and a
//! machine-distinguishable [`DimacsErrorKind`].

use std::fmt;

/// One clause: a disjunction of non-zero DIMACS literals. Literal `v`
/// (1-based, positive) is the variable `v - 1`; `-v` is its negation.
pub type Clause = Vec<i32>;

/// A CNF formula over the declared variable universe `0..num_vars`.
///
/// `num_vars` is the *declared* count from the `p cnf` header — the
/// semantics of model counting. Variables may be absent from every
/// clause; they still double the model count each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Declared number of variables (the DIMACS header's first field).
    pub num_vars: usize,
    /// The clauses, in file order.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty formula (no clauses — constant true) over `num_vars`
    /// variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Append a clause.
    ///
    /// # Panics
    /// Panics if any literal is zero or names a variable `≥ num_vars`.
    pub fn add_clause(&mut self, lits: &[i32]) {
        for &l in lits {
            assert!(l != 0, "clause literal must be non-zero");
            assert!(
                l.unsigned_abs() as usize <= self.num_vars,
                "literal {l} out of range for {} variables",
                self.num_vars
            );
        }
        self.clauses.push(lits.to_vec());
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluate under a full assignment (`assignment[v]` = value of
    /// variable `v`). Reference semantics for the brute-force oracle.
    ///
    /// # Panics
    /// Panics if the assignment is shorter than `num_vars`.
    #[must_use]
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                assignment[v] == (l > 0)
            })
        })
    }

    /// Brute-force model count over the declared universe — the oracle
    /// the diagram-based counters are tested against. `None` when
    /// `num_vars > 24` (2^24 assignments is the sane testing ceiling).
    #[must_use]
    pub fn brute_force_count(&self) -> Option<u128> {
        if self.num_vars > 24 {
            return None;
        }
        let mut count = 0u128;
        let mut assignment = vec![false; self.num_vars];
        for bits in 0u64..(1u64 << self.num_vars) {
            for (v, slot) in assignment.iter_mut().enumerate() {
                *slot = (bits >> v) & 1 == 1;
            }
            if self.eval(&assignment) {
                count += 1;
            }
        }
        Some(count)
    }

    /// Per-variable occurrence counts (both polarities pooled).
    #[must_use]
    pub fn occurrences(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.num_vars];
        for c in &self.clauses {
            for &l in c {
                occ[(l.unsigned_abs() - 1) as usize] += 1;
            }
        }
        occ
    }

    /// Serialize as DIMACS text (header, one clause per line, `0`
    /// terminators), with an optional `c` comment block on top. Output
    /// round-trips through [`parse_dimacs`].
    #[must_use]
    pub fn to_dimacs(&self, comment: &str) -> String {
        let mut out = String::new();
        for line in comment.lines() {
            out.push_str("c ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("p cnf {} {}\n", self.num_vars, self.clauses.len()));
        for c in &self.clauses {
            for &l in c {
                out.push_str(&l.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

// ───────────────────────── errors ─────────────────────────────────────────

/// What exactly the parser rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsErrorKind {
    /// Clause data (or EOF) before any `p cnf` header.
    MissingHeader,
    /// A `p` line that is not `p cnf <vars> <clauses>` with both counts
    /// non-negative integers.
    BadHeader(String),
    /// A second `p` line.
    DuplicateHeader,
    /// A token that is not an integer literal.
    BadToken(String),
    /// A literal naming a variable outside `1..=num_vars`.
    LiteralOutOfRange(i64),
    /// EOF inside a clause — the final `0` terminator is missing.
    MissingTerminator,
    /// The file holds a different number of clauses than the header
    /// declared.
    ClauseCountMismatch {
        /// Count from the `p cnf` header.
        declared: usize,
        /// Clauses actually present.
        found: usize,
    },
}

/// A parse rejection: the kind plus the 1-based line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// What was rejected.
    pub kind: DimacsErrorKind,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            DimacsErrorKind::MissingHeader => write!(f, "missing 'p cnf <vars> <clauses>' header"),
            DimacsErrorKind::BadHeader(h) => write!(f, "malformed header '{h}'"),
            DimacsErrorKind::DuplicateHeader => write!(f, "duplicate 'p' header"),
            DimacsErrorKind::BadToken(t) => write!(f, "expected integer literal, got '{t}'"),
            DimacsErrorKind::LiteralOutOfRange(l) => {
                write!(f, "literal {l} out of declared variable range")
            }
            DimacsErrorKind::MissingTerminator => {
                write!(f, "unterminated clause (missing trailing 0)")
            }
            DimacsErrorKind::ClauseCountMismatch { declared, found } => {
                write!(f, "header declared {declared} clauses, file has {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

// ───────────────────────── parser ─────────────────────────────────────────

/// Parse DIMACS CNF text.
///
/// Accepted grammar: any number of `c` comment lines and blank lines,
/// exactly one `p cnf <vars> <clauses>` header, then whitespace-separated
/// integer literals with each clause closed by a `0`. Clauses may span
/// lines and several may share one line. Everything else — clause data
/// before the header, a second header, non-integer tokens, literals
/// outside the declared range, a missing final terminator, or a clause
/// count that contradicts the header — is an error with a line number.
///
/// # Errors
/// A [`DimacsError`] pinpointing the first rejected line.
pub fn parse_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let mut header: Option<(usize, usize)> = None;
    let mut clauses: Vec<Clause> = Vec::new();
    let mut current: Clause = Vec::new();
    let mut last_data_line = 1;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if header.is_some() {
                return Err(DimacsError {
                    line: lineno,
                    kind: DimacsErrorKind::DuplicateHeader,
                });
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                ["cnf", v, c] => v.parse::<usize>().ok().zip(c.parse::<usize>().ok()),
                _ => None,
            };
            match parsed {
                Some(vc) => header = Some(vc),
                None => {
                    return Err(DimacsError {
                        line: lineno,
                        kind: DimacsErrorKind::BadHeader(line.to_string()),
                    })
                }
            }
            continue;
        }
        let Some((num_vars, _)) = header else {
            return Err(DimacsError {
                line: lineno,
                kind: DimacsErrorKind::MissingHeader,
            });
        };
        last_data_line = lineno;
        for tok in line.split_whitespace() {
            let lit: i64 = tok.parse().map_err(|_| DimacsError {
                line: lineno,
                kind: DimacsErrorKind::BadToken(tok.to_string()),
            })?;
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if lit.unsigned_abs() > num_vars as u64 || lit.unsigned_abs() > i32::MAX as u64 {
                    return Err(DimacsError {
                        line: lineno,
                        kind: DimacsErrorKind::LiteralOutOfRange(lit),
                    });
                }
                current.push(lit as i32);
            }
        }
    }

    let Some((num_vars, declared)) = header else {
        return Err(DimacsError {
            line: last_data_line,
            kind: DimacsErrorKind::MissingHeader,
        });
    };
    if !current.is_empty() {
        return Err(DimacsError {
            line: last_data_line,
            kind: DimacsErrorKind::MissingTerminator,
        });
    }
    if clauses.len() != declared {
        return Err(DimacsError {
            line: last_data_line,
            kind: DimacsErrorKind::ClauseCountMismatch {
                declared,
                found: clauses.len(),
            },
        });
    }
    Ok(Cnf { num_vars, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_instance() {
        let cnf = parse_dimacs("c toy\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn clauses_span_and_share_lines() {
        let cnf = parse_dimacs("p cnf 4 3\n1 2\n-3 0 4 0\n-1 -4 0\n").unwrap();
        assert_eq!(cnf.clauses, vec![vec![1, 2, -3], vec![4], vec![-1, -4]]);
    }

    #[test]
    fn empty_clause_is_allowed_and_unsatisfiable() {
        let cnf = parse_dimacs("p cnf 2 1\n0\n").unwrap();
        assert_eq!(cnf.clauses, vec![Vec::<i32>::new()]);
        assert_eq!(cnf.brute_force_count(), Some(0));
    }

    #[test]
    fn zero_clause_formula_counts_full_universe() {
        let cnf = parse_dimacs("p cnf 5 0\n").unwrap();
        assert_eq!(cnf.brute_force_count(), Some(32));
    }

    #[test]
    fn round_trips_through_writer() {
        let text = "p cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let again = parse_dimacs(&cnf.to_dimacs("round trip")).unwrap();
        assert_eq!(cnf, again);
    }

    // ── rejection corpus ────────────────────────────────────────────────

    fn kind_of(text: &str) -> DimacsErrorKind {
        parse_dimacs(text).unwrap_err().kind
    }

    #[test]
    fn rejects_garbage_headers() {
        assert!(matches!(
            kind_of("p dnf 3 2\n1 0\n"),
            DimacsErrorKind::BadHeader(_)
        ));
        assert!(matches!(
            kind_of("p cnf three 2\n"),
            DimacsErrorKind::BadHeader(_)
        ));
        assert!(matches!(
            kind_of("p cnf 3\n"),
            DimacsErrorKind::BadHeader(_)
        ));
        assert!(matches!(
            kind_of("p cnf -3 2\n"),
            DimacsErrorKind::BadHeader(_)
        ));
        assert!(matches!(
            kind_of("p cnf 3 2 extra\n"),
            DimacsErrorKind::BadHeader(_)
        ));
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(kind_of("1 -2 0\n"), DimacsErrorKind::MissingHeader);
        assert_eq!(kind_of(""), DimacsErrorKind::MissingHeader);
        assert_eq!(kind_of("c only comments\n"), DimacsErrorKind::MissingHeader);
    }

    #[test]
    fn rejects_duplicate_header() {
        assert_eq!(
            kind_of("p cnf 2 1\np cnf 2 1\n1 0\n"),
            DimacsErrorKind::DuplicateHeader
        );
    }

    #[test]
    fn rejects_out_of_range_literals() {
        assert_eq!(
            kind_of("p cnf 3 1\n4 0\n"),
            DimacsErrorKind::LiteralOutOfRange(4)
        );
        assert_eq!(
            kind_of("p cnf 3 1\n-9 0\n"),
            DimacsErrorKind::LiteralOutOfRange(-9)
        );
        // Bigger than i32 entirely.
        assert!(matches!(
            kind_of("p cnf 3 1\n99999999999 0\n"),
            DimacsErrorKind::LiteralOutOfRange(_)
        ));
    }

    #[test]
    fn rejects_missing_terminator() {
        let err = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3\n").unwrap_err();
        assert_eq!(err.kind, DimacsErrorKind::MissingTerminator);
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(matches!(
            kind_of("p cnf 3 1\n1 x 0\n"),
            DimacsErrorKind::BadToken(_)
        ));
    }

    #[test]
    fn rejects_clause_count_mismatch() {
        assert_eq!(
            kind_of("p cnf 3 2\n1 0\n"),
            DimacsErrorKind::ClauseCountMismatch {
                declared: 2,
                found: 1
            }
        );
        assert_eq!(
            kind_of("p cnf 3 1\n1 0\n2 0\n"),
            DimacsErrorKind::ClauseCountMismatch {
                declared: 1,
                found: 2
            }
        );
    }

    #[test]
    fn error_carries_line_numbers() {
        let err = parse_dimacs("c a\nc b\np cnf 3 1\n1 zz 0\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("line 4"));
    }
}

//! Exact model counting, whole and sliced.
//!
//! **Whole**: build the instance under a schedule, then count over the
//! declared variable universe ([`count_cnf`]).
//!
//! **Sliced**: pick a splitting set `S` of `k` variables, and for each of
//! the `2^k` assignments `α` to `S` count the *cofactor instance*
//! `F|α ∧ α` — the clauses simplified under `α` (satisfied clauses
//! dropped, falsified literals stripped) conjoined with unit clauses
//! pinning `α` itself. The `2^k` slice counts are taken over the same
//! declared universe, their model sets partition the models of `F`
//! (every model of `F` sets `S` in exactly one way), so the slice counts
//! **sum bit-exactly to the whole count**. Each slice runs under its own
//! budget in its own manager; a slice that blows its budget is recorded
//! as aborted and the recombined verdict degrades from exact to
//! `partial` (a lower bound) instead of failing the whole instance.
//!
//! Slices are independent by construction, so [`count_sliced_par`] fans
//! them out on the `ddcore::par` fork-join pool, one private manager per
//! slice, with deterministic results for every thread count.

use crate::build::{try_build_cnf, BuildStats};
use crate::dimacs::Cnf;
use crate::schedule::ClauseSchedule;
use ddcore::api::{BooleanFunction, FunctionManager};
use ddcore::govern::{OpAbort, OpBudget};
use std::sync::Mutex;

/// Why a whole-instance count produced no number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountError {
    /// The budget stopped the build or the count.
    Aborted {
        /// The budget's abort reason.
        reason: OpAbort,
        /// Clauses conjoined before the abort.
        clauses_done: u64,
    },
    /// The count is not exactly representable in `u128` (more than 127
    /// declared or manager variables).
    Unrepresentable,
}

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountError::Aborted {
                reason,
                clauses_done,
            } => write!(f, "count aborted ({reason}) after {clauses_done} clauses"),
            CountError::Unrepresentable => write!(f, "count not representable in u128"),
        }
    }
}

impl std::error::Error for CountError {}

/// Build `cnf` under `schedule` in `mgr` and model-count it over the
/// declared `cnf.num_vars` universe, all under one budget.
///
/// # Errors
/// [`CountError::Aborted`] when the budget runs out,
/// [`CountError::Unrepresentable`] past the 127-variable `u128` ceiling.
pub fn count_cnf<M: FunctionManager, S: ClauseSchedule>(
    mgr: &M,
    cnf: &Cnf,
    schedule: &S,
    budget: &mut OpBudget,
) -> Result<(u128, BuildStats), CountError> {
    let plan = schedule.plan(cnf);
    let (f, stats) = try_build_cnf(mgr, cnf, &plan, budget).map_err(|e| CountError::Aborted {
        reason: e.reason,
        clauses_done: e.clauses_done,
    })?;
    let count = f
        .try_sat_count_over(cnf.num_vars, budget)
        .map_err(|reason| CountError::Aborted {
            reason,
            clauses_done: stats.clauses_scheduled,
        })?
        .ok_or(CountError::Unrepresentable)?;
    Ok((count, stats))
}

// ───────────────────────── slicing ────────────────────────────────────────

/// The splitting set for `k`-way slicing: the `k` most frequently
/// occurring variables (ties by ascending index), clamped to the
/// variables that actually occur. Splitting on a hot variable simplifies
/// the most clauses per slice.
#[must_use]
pub fn splitting_set(cnf: &Cnf, k: usize) -> Vec<usize> {
    let occ = cnf.occurrences();
    let mut vars: Vec<usize> = (0..cnf.num_vars).filter(|&v| occ[v] > 0).collect();
    vars.sort_by_key(|&v| (std::cmp::Reverse(occ[v]), v));
    vars.truncate(k);
    vars.sort_unstable();
    vars
}

/// The cofactor instance `F|α ∧ α` for a fixed partial assignment:
/// satisfied clauses dropped, falsified literals stripped, and one unit
/// clause per fixed variable so the slice's models are exactly the
/// models of `F` extending `α`. The declared universe is unchanged.
#[must_use]
pub fn cofactor_cnf(cnf: &Cnf, fixed: &[(usize, bool)]) -> Cnf {
    let mut value = vec![None::<bool>; cnf.num_vars];
    for &(v, b) in fixed {
        value[v] = Some(b);
    }
    let mut out = Cnf::new(cnf.num_vars);
    for c in &cnf.clauses {
        let mut kept: Vec<i32> = Vec::with_capacity(c.len());
        let mut satisfied = false;
        for &l in c {
            let v = (l.unsigned_abs() - 1) as usize;
            match value[v] {
                Some(b) if b == (l > 0) => {
                    satisfied = true;
                    break;
                }
                Some(_) => {} // falsified literal: strip
                None => kept.push(l),
            }
        }
        if !satisfied {
            out.clauses.push(kept);
        }
    }
    for &(v, b) in fixed {
        let lit = (v + 1) as i32;
        out.clauses.push(vec![if b { lit } else { -lit }]);
    }
    out
}

/// One slice's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOutcome {
    /// Which of the `2^k` assignments (bit `i` = value of the `i`-th
    /// splitting variable).
    pub index: usize,
    /// The slice's exact count, when it finished.
    pub count: Option<u128>,
    /// The abort reason, when it did not.
    pub aborted: Option<OpAbort>,
    /// Build counters for this slice.
    pub stats: BuildStats,
}

/// The recombined verdict of a sliced count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedCount {
    /// Sum of the completed slices' counts: the exact total when
    /// `partial` is false, otherwise an exact *lower bound*.
    pub total: u128,
    /// True when at least one slice aborted — the total covers only the
    /// completed region of the assignment space.
    pub partial: bool,
    /// The splitting set used (ascending variable indices).
    pub splitting: Vec<usize>,
    /// Per-slice outcomes, index order.
    pub slices: Vec<SliceOutcome>,
}

impl SlicedCount {
    /// Slices that finished.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.slices.iter().filter(|s| s.count.is_some()).count()
    }

    /// Slices that aborted.
    #[must_use]
    pub fn aborted(&self) -> usize {
        self.slices.len() - self.completed()
    }

    /// Peak intermediate conjunction size over all slices.
    #[must_use]
    pub fn peak_nodes(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| s.stats.conj_peak_nodes)
            .max()
            .unwrap_or(0)
    }

    fn from_outcomes(splitting: Vec<usize>, slices: Vec<SliceOutcome>) -> Self {
        let total = slices.iter().filter_map(|s| s.count).sum();
        let partial = slices.iter().any(|s| s.count.is_none());
        SlicedCount {
            total,
            partial,
            splitting,
            slices,
        }
    }
}

fn count_one_slice<M: FunctionManager, S: ClauseSchedule>(
    mgr: &M,
    cnf: &Cnf,
    splitting: &[usize],
    schedule: &S,
    index: usize,
    budget: &mut OpBudget,
) -> SliceOutcome {
    let fixed: Vec<(usize, bool)> = splitting
        .iter()
        .enumerate()
        .map(|(bit, &v)| (v, (index >> bit) & 1 == 1))
        .collect();
    let slice = cofactor_cnf(cnf, &fixed);
    match count_cnf(mgr, &slice, schedule, budget) {
        Ok((count, stats)) => SliceOutcome {
            index,
            count: Some(count),
            aborted: None,
            stats,
        },
        Err(CountError::Aborted { reason, .. }) => SliceOutcome {
            index,
            count: None,
            aborted: Some(reason),
            stats: BuildStats::default(),
        },
        // Representability (> 127 declared vars) fails every slice
        // identically; callers should check it up front, so a slice that
        // still hits it is recorded as not-completed.
        Err(CountError::Unrepresentable) => SliceOutcome {
            index,
            count: None,
            aborted: Some(OpAbort::Cancelled),
            stats: BuildStats::default(),
        },
    }
}

/// Sequential sliced count: `2^k` cofactor instances (splitting set from
/// [`splitting_set`]), each built and counted in a fresh manager from
/// `make_mgr` under a fresh per-slice budget from `make_budget`, then
/// recombined. Aborted slices degrade the verdict to `partial` instead
/// of failing the instance.
pub fn count_sliced<M, S, FM, FB>(
    make_mgr: FM,
    make_budget: FB,
    cnf: &Cnf,
    schedule: &S,
    k: usize,
) -> SlicedCount
where
    M: FunctionManager,
    S: ClauseSchedule,
    FM: Fn() -> M,
    FB: Fn() -> OpBudget,
{
    let splitting = splitting_set(cnf, k);
    let n_slices = 1usize << splitting.len();
    let slices = (0..n_slices)
        .map(|i| {
            let mgr = make_mgr();
            let mut budget = make_budget();
            count_one_slice(&mgr, cnf, &splitting, schedule, i, &mut budget)
        })
        .collect();
    SlicedCount::from_outcomes(splitting, slices)
}

/// [`count_sliced`] fanned out on the `ddcore::par` fork-join pool:
/// each worker builds its slices in private managers, so no
/// synchronization touches the diagrams and the recombined total is
/// identical for every thread count.
pub fn count_sliced_par<M, S, FM, FB>(
    threads: usize,
    make_mgr: FM,
    make_budget: FB,
    cnf: &Cnf,
    schedule: &S,
    k: usize,
) -> SlicedCount
where
    M: FunctionManager,
    S: ClauseSchedule + Sync,
    FM: Fn() -> M + Sync,
    FB: Fn() -> OpBudget + Sync,
{
    let splitting = splitting_set(cnf, k);
    let n_slices = 1usize << splitting.len();
    let results: Mutex<Vec<Option<SliceOutcome>>> = Mutex::new(vec![None; n_slices]);
    let _stats = ddcore::par::fork_join(threads.max(1), n_slices, |i| {
        let mgr = make_mgr();
        let mut budget = make_budget();
        let outcome = count_one_slice(&mgr, cnf, &splitting, schedule, i, &mut budget);
        results.lock().expect("slice results poisoned")[i] = Some(outcome);
    });
    let slices = results
        .into_inner()
        .expect("slice results poisoned")
        .into_iter()
        .map(|s| s.expect("fork_join ran every slice"))
        .collect();
    SlicedCount::from_outcomes(splitting, slices)
}

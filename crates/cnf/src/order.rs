//! Static variable ordering for CNF instances.
//!
//! Two deterministic heuristics over the clause/variable incidence
//! hypergraph, selected by [`CnfOrder`] and installed through
//! `FunctionManager::set_order` before construction:
//!
//! * **freq** — variables by descending occurrence count (ties by index):
//!   the classic "most constrained variable on top" rule.
//! * **force** — the FORCE heuristic (Aloul–Markov–Sakallah): iterative
//!   center-of-gravity placement on the hypergraph whose hyperedges are
//!   the clauses, minimizing total clause span. Span correlates with the
//!   width of the clause-conjunction frontier, which bounds intermediate
//!   BDD growth during scheduled construction.

use crate::dimacs::Cnf;
use std::str::FromStr;

/// Which static variable order to install before building.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CnfOrder {
    /// Keep the DIMACS variable numbering.
    #[default]
    None,
    /// Descending occurrence count.
    Freq,
    /// FORCE hypergraph placement.
    Force,
}

impl std::fmt::Display for CnfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CnfOrder::None => "none",
            CnfOrder::Freq => "freq",
            CnfOrder::Force => "force",
        })
    }
}

impl FromStr for CnfOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CnfOrder::None),
            "freq" => Ok(CnfOrder::Freq),
            "force" => Ok(CnfOrder::Force),
            other => Err(format!(
                "unknown static order '{other}' (expected none|freq|force)"
            )),
        }
    }
}

impl CnfOrder {
    /// The variable permutation this heuristic proposes (top of the order
    /// first), or `None` for [`CnfOrder::None`]. Always a permutation of
    /// `0..cnf.num_vars`, and deterministic for a given instance.
    #[must_use]
    pub fn permutation(&self, cnf: &Cnf) -> Option<Vec<usize>> {
        match self {
            CnfOrder::None => None,
            CnfOrder::Freq => Some(freq_order(cnf)),
            CnfOrder::Force => Some(force_order(cnf)),
        }
    }
}

/// Variables by descending occurrence count, ties by ascending index.
#[must_use]
pub fn freq_order(cnf: &Cnf) -> Vec<usize> {
    let occ = cnf.occurrences();
    let mut vars: Vec<usize> = (0..cnf.num_vars).collect();
    vars.sort_by_key(|&v| (std::cmp::Reverse(occ[v]), v));
    vars
}

/// FORCE placement over the clause hypergraph: start from the identity
/// placement, repeatedly move every variable to the mean center of
/// gravity of its clauses, and keep the iteration with the smallest total
/// clause span. Deterministic: fixed iteration count, stable sorts.
#[must_use]
pub fn force_order(cnf: &Cnf) -> Vec<usize> {
    let n = cnf.num_vars;
    if n == 0 {
        return Vec::new();
    }
    // var -> clause indices it appears in.
    let mut in_clauses: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in cnf.clauses.iter().enumerate() {
        for &l in c {
            let v = (l.unsigned_abs() - 1) as usize;
            if in_clauses[v].last() != Some(&ci) {
                in_clauses[v].push(ci);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut pos: Vec<f64> = (0..n).map(|v| v as f64).collect();
    let mut best = order.clone();
    let mut best_span = total_span(cnf, &order);
    let iters = (usize::BITS - n.leading_zeros()) as usize * 2 + 6;
    for _ in 0..iters {
        // Clause centers of gravity under the current placement.
        let cogs: Vec<f64> = cnf
            .clauses
            .iter()
            .map(|c| {
                if c.is_empty() {
                    0.0
                } else {
                    c.iter()
                        .map(|&l| pos[(l.unsigned_abs() - 1) as usize])
                        .sum::<f64>()
                        / c.len() as f64
                }
            })
            .collect();
        // Each variable moves to the mean of its clauses' centers.
        let keys: Vec<f64> = (0..n)
            .map(|v| {
                if in_clauses[v].is_empty() {
                    pos[v]
                } else {
                    in_clauses[v].iter().map(|&ci| cogs[ci]).sum::<f64>()
                        / in_clauses[v].len() as f64
                }
            })
            .collect();
        order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap().then(a.cmp(&b)));
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p as f64;
        }
        let span = total_span(cnf, &order);
        if span < best_span {
            best_span = span;
            best = order.clone();
        }
    }
    best
}

/// Sum over clauses of (max var position − min var position) under the
/// given placement — the quantity FORCE minimizes.
fn total_span(cnf: &Cnf, order: &[usize]) -> u64 {
    let mut pos = vec![0usize; order.len()];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    let mut span = 0u64;
    for c in &cnf.clauses {
        let ps = c.iter().map(|&l| pos[(l.unsigned_abs() - 1) as usize]);
        if let (Some(lo), Some(hi)) = (ps.clone().min(), ps.max()) {
            span += (hi - lo) as u64;
        }
    }
    span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs::parse_dimacs;

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&v| {
                if v < n && !seen[v] {
                    seen[v] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn freq_puts_hot_variable_first() {
        let cnf = parse_dimacs("p cnf 4 3\n2 3 0\n-2 4 0\n2 -1 0\n").unwrap();
        let ord = freq_order(&cnf);
        assert_eq!(ord[0], 1); // variable 2 (index 1) appears 3 times
        assert!(is_permutation(&ord, 4));
    }

    #[test]
    fn force_is_a_permutation_and_never_worse_than_identity() {
        let cnf = parse_dimacs("p cnf 6 5\n1 6 0\n2 5 0\n3 4 0\n1 2 0\n5 6 0\n").unwrap();
        let ord = force_order(&cnf);
        assert!(is_permutation(&ord, 6));
        let identity: Vec<usize> = (0..6).collect();
        assert!(total_span(&cnf, &ord) <= total_span(&cnf, &identity));
    }

    #[test]
    fn force_handles_degenerate_instances() {
        assert_eq!(force_order(&Cnf::new(0)), Vec::<usize>::new());
        let empty_clause = parse_dimacs("p cnf 3 1\n0\n").unwrap();
        assert!(is_permutation(&force_order(&empty_clause), 3));
    }

    #[test]
    fn order_enum_round_trips() {
        for o in [CnfOrder::None, CnfOrder::Freq, CnfOrder::Force] {
            assert_eq!(o.to_string().parse::<CnfOrder>().unwrap(), o);
        }
        assert!("bogus".parse::<CnfOrder>().is_err());
    }
}

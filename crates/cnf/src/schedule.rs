//! Clause scheduling: in what order, and in what grouping, the clauses of
//! a CNF are conjoined into a decision diagram.
//!
//! Conjunction order dominates intermediate diagram size — the same
//! instance can be linear or exponential depending on when structurally
//! related clauses meet. The seam is one trait, [`ClauseSchedule`],
//! producing a [`SchedulePlan`]: an ordered list of clause groups. The
//! builder conjoins the clauses of each group left to right, then merges
//! the group results with a balanced binary tree, so a plan expresses
//! both clustering ("these clauses belong together") and global shape
//! ("merge clusters pairwise, not as one long chain").

use crate::dimacs::Cnf;
use crate::order::force_order;
use std::str::FromStr;

/// An ordered grouping of clause indices — the builder's work list.
///
/// Every clause index of the instance appears in exactly one group;
/// groups are conjoined internally in order, then pairwise-merged
/// balanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Groups of clause indices into [`Cnf::clauses`].
    pub groups: Vec<Vec<usize>>,
}

impl SchedulePlan {
    /// Total clauses scheduled (the sum of group lengths).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Debug check: the plan covers `0..n` exactly once each.
    #[must_use]
    pub fn covers_exactly(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for g in &self.groups {
            for &ci in g {
                if ci >= n || seen[ci] {
                    return false;
                }
                seen[ci] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// A clause-scheduling heuristic: instance in, [`SchedulePlan`] out.
///
/// Implementations must be deterministic (same instance, same plan) and
/// must cover every clause exactly once — the slicing recombination
/// argument and the abort-resume accounting both rely on it.
pub trait ClauseSchedule {
    /// Stable name for CLI flags, logs and metrics.
    fn name(&self) -> &'static str;

    /// Produce the work list for `cnf`.
    fn plan(&self, cnf: &Cnf) -> SchedulePlan;
}

/// The built-in schedules, selectable by name (`--schedule` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// File order, one linear chain — the baseline every heuristic must
    /// beat.
    Input,
    /// Bucket clustering: clauses grouped by their lowest variable (the
    /// bucket-elimination grouping), buckets merged as a balanced tree.
    #[default]
    Bucket,
    /// FORCE-style clause order: clauses sorted by center of gravity
    /// under the FORCE variable placement, conjoined in that order.
    Force,
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(ClauseSchedule::name(self))
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "input" => Ok(Schedule::Input),
            "bucket" => Ok(Schedule::Bucket),
            "force" => Ok(Schedule::Force),
            other => Err(format!(
                "unknown schedule '{other}' (expected input|bucket|force)"
            )),
        }
    }
}

impl ClauseSchedule for Schedule {
    fn name(&self) -> &'static str {
        match self {
            Schedule::Input => "input",
            Schedule::Bucket => "bucket",
            Schedule::Force => "force",
        }
    }

    fn plan(&self, cnf: &Cnf) -> SchedulePlan {
        match self {
            Schedule::Input => SchedulePlan {
                groups: vec![(0..cnf.clauses.len()).collect()],
            },
            Schedule::Bucket => bucket_plan(cnf),
            Schedule::Force => force_plan(cnf),
        }
    }
}

/// Bucket clustering: clauses keyed by their minimum variable index,
/// buckets emitted in ascending key order; clauses without variables
/// (empty clauses) land in a bucket of their own at the front.
fn bucket_plan(cnf: &Cnf) -> SchedulePlan {
    let m = cnf.clauses.len();
    // key = min var index + 1, 0 for empty clauses.
    let mut keyed: Vec<(usize, usize)> = (0..m)
        .map(|ci| {
            let key = cnf.clauses[ci]
                .iter()
                .map(|&l| l.unsigned_abs() as usize)
                .min()
                .unwrap_or(0);
            (key, ci)
        })
        .collect();
    keyed.sort(); // stable: by key, then by clause index
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut last_key = usize::MAX;
    for (key, ci) in keyed {
        if key != last_key {
            groups.push(Vec::new());
            last_key = key;
        }
        groups.last_mut().expect("group pushed above").push(ci);
    }
    SchedulePlan { groups }
}

/// FORCE clause order: place variables with [`force_order`], then sort
/// clauses by their center of gravity under that placement (ties by
/// clause index). One ordered group — the point is the order itself.
fn force_plan(cnf: &Cnf) -> SchedulePlan {
    let placement = force_order(cnf);
    let mut pos = vec![0usize; cnf.num_vars];
    for (p, &v) in placement.iter().enumerate() {
        pos[v] = p;
    }
    let m = cnf.clauses.len();
    let mut order: Vec<usize> = (0..m).collect();
    let cog = |ci: usize| -> f64 {
        let c = &cnf.clauses[ci];
        if c.is_empty() {
            -1.0
        } else {
            c.iter()
                .map(|&l| pos[(l.unsigned_abs() - 1) as usize] as f64)
                .sum::<f64>()
                / c.len() as f64
        }
    };
    order.sort_by(|&a, &b| cog(a).partial_cmp(&cog(b)).unwrap().then(a.cmp(&b)));
    SchedulePlan {
        groups: vec![order],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs::parse_dimacs;

    fn toy() -> Cnf {
        parse_dimacs("p cnf 4 5\n3 4 0\n1 2 0\n-1 3 0\n0\n2 -4 0\n").unwrap()
    }

    #[test]
    fn input_is_one_group_in_file_order() {
        let plan = Schedule::Input.plan(&toy());
        assert_eq!(plan.groups, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn every_schedule_covers_every_clause_once() {
        let cnf = toy();
        for s in [Schedule::Input, Schedule::Bucket, Schedule::Force] {
            let plan = s.plan(&cnf);
            assert!(plan.covers_exactly(cnf.num_clauses()), "{s}");
            assert_eq!(plan.num_clauses(), cnf.num_clauses(), "{s}");
        }
    }

    #[test]
    fn bucket_groups_by_min_var() {
        let plan = Schedule::Bucket.plan(&toy());
        // empty clause (index 3) first, then min-var-1 clauses {1, 2},
        // then min-var-2 clause {4}, then min-var-3 clause {0}.
        assert_eq!(plan.groups, vec![vec![3], vec![1, 2], vec![4], vec![0]]);
    }

    #[test]
    fn schedule_enum_round_trips() {
        for s in [Schedule::Input, Schedule::Bucket, Schedule::Force] {
            assert_eq!(s.to_string().parse::<Schedule>().unwrap(), s);
        }
        assert!("bogus".parse::<Schedule>().is_err());
    }

    #[test]
    fn plans_are_deterministic() {
        let cnf = toy();
        for s in [Schedule::Input, Schedule::Bucket, Schedule::Force] {
            assert_eq!(s.plan(&cnf), s.plan(&cnf));
        }
    }
}

//! The CNF/DIMACS front door: SAT-shaped workloads for the decision
//! diagram suite.
//!
//! Everything upstream of this crate is circuit-shaped (BLIF, structural
//! Verilog, generated netlists). This crate adds the other canonical
//! industrial workload — CNF — end to end:
//!
//! * [`dimacs`] — a strict DIMACS CNF parser (line-numbered rejections:
//!   garbage headers, out-of-range literals, missing `0` terminators,
//!   clause-count mismatches) and a round-tripping writer.
//! * [`schedule`] — clause scheduling behind the [`ClauseSchedule`] seam:
//!   file order, bucket clustering with balanced-tree conjunction, and a
//!   FORCE-style clause order.
//! * [`order`] — static *variable* orders for CNF (occurrence frequency,
//!   FORCE hypergraph placement), installed via
//!   `FunctionManager::set_order` before building.
//! * [`build`] — scheduled construction on the budgeted `try_*` API,
//!   with the manager's collection gate (and therefore any installed DVO
//!   schedule) firing every [`build::CLAUSE_STRIDE`] clauses; plus an
//!   edge-level variant for session forks.
//! * [`mod@slice`] — exact model counting over the *declared* variable
//!   universe (`sat_count_over` normalization), whole or sliced: `2^k`
//!   cofactor sub-instances counted independently — sequentially or on
//!   the fork-join pool — and recombined bit-exactly, with per-slice
//!   budget aborts degrading the verdict to `partial` instead of failing
//!   the instance.
//!
//! The CLI surface is `bbdd-cli count <file.cnf>`; the serve protocol
//! speaks `load_cnf`/`count`. See `DESIGN.md` § "CNF front door".
//!
//! ```
//! use cnf::{parse_dimacs, Schedule};
//!
//! let instance = cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
//! assert_eq!(instance.num_vars, 3);
//! assert_eq!(instance.brute_force_count(), Some(4));
//! // Plans are deterministic and cover every clause exactly once.
//! use cnf::schedule::ClauseSchedule;
//! let plan = Schedule::Bucket.plan(&instance);
//! assert!(plan.covers_exactly(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dimacs;
pub mod order;
pub mod schedule;
pub mod slice;

pub use build::{build_cnf, try_build_cnf, try_build_cnf_raw, BuildAborted, BuildStats};
pub use dimacs::{parse_dimacs, Clause, Cnf, DimacsError, DimacsErrorKind};
pub use order::CnfOrder;
pub use schedule::{ClauseSchedule, Schedule, SchedulePlan};
pub use slice::{
    cofactor_cnf, count_cnf, count_sliced, count_sliced_par, splitting_set, CountError,
    SliceOutcome, SlicedCount,
};

//! The datapath benchmarks of Table II: adder, equality comparator,
//! magnitude comparator and barrel shifter, in 32- and 64-bit operand
//! widths, with the paper's exact PI/PO counts.

use crate::arith;
use logicnet::{Network, Signal};

/// One Table-II benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datapath {
    /// `n + n → n+1` ripple adder (Table II "Adder").
    Adder {
        /// Operand width.
        width: usize,
    },
    /// `n = n` equality comparator (Table II "Equality").
    Equality {
        /// Operand width.
        width: usize,
    },
    /// `n > n` magnitude comparator (Table II "Magnitude").
    Magnitude {
        /// Operand width.
        width: usize,
    },
    /// Barrel shifter (Table II "Barrel"). The 32-bit variant has
    /// direction/arithmetic controls (39 inputs); the 64-bit variant is a
    /// rotate-left (70 inputs), matching the paper's I/O counts.
    Barrel {
        /// Data width.
        width: usize,
    },
}

impl Datapath {
    /// The implementation a commercial synthesis tool instantiates for the
    /// operator (its "identified arithmetic building block", §V-B): a
    /// carry-lookahead adder for `+`, a subtractor-based comparator for
    /// `>`, the XNOR/AND reduction for `==` and the mux cascade for
    /// shifts. Functionally identical to [`Datapath::generate`], with the
    /// same interface — the netlist both Table-II flows consume.
    #[must_use]
    pub fn commercial_implementation(&self) -> Network {
        match *self {
            Datapath::Adder { width } => adder_cla(width),
            Datapath::Equality { width } => equality(width),
            Datapath::Magnitude { width } => magnitude_via_subtractor(width),
            Datapath::Barrel { width } => barrel(width),
        }
    }

    /// The eight rows of Table II, in paper order.
    #[must_use]
    pub fn table2() -> Vec<Datapath> {
        vec![
            Datapath::Adder { width: 32 },
            Datapath::Adder { width: 64 },
            Datapath::Equality { width: 32 },
            Datapath::Equality { width: 64 },
            Datapath::Magnitude { width: 32 },
            Datapath::Magnitude { width: 64 },
            Datapath::Barrel { width: 32 },
            Datapath::Barrel { width: 64 },
        ]
    }

    /// Row label as printed in Table II.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Datapath::Adder { width } => format!("Adder {width}"),
            Datapath::Equality { width } => format!("Equality {width}"),
            Datapath::Magnitude { width } => format!("Magnitude {width}"),
            Datapath::Barrel { width } => format!("Barrel {width}"),
        }
    }

    /// Generate the RTL-level network.
    #[must_use]
    pub fn generate(&self) -> Network {
        match *self {
            Datapath::Adder { width } => adder(width),
            Datapath::Equality { width } => equality(width),
            Datapath::Magnitude { width } => magnitude(width),
            Datapath::Barrel { width } => barrel(width),
        }
    }
}

fn operand(net: &mut Network, prefix: &str, n: usize) -> Vec<Signal> {
    (0..n)
        .map(|i| net.add_input(&format!("{prefix}{i}")))
        .collect()
}

/// Declare two operands bit-sliced MSB-first (`a31, b31, a30, b30, …`) —
/// the flattening order of `input [31:0] a, b` in RTL. Decision-diagram
/// packages take the file order as the initial order (§IV-B); the
/// slice-interleaved MSB-first order keeps adders and comparators linear,
/// exactly like the original benchmark files (shared carry/compare state
/// lives *below* the slice that consumes it).
fn operands_interleaved(
    net: &mut Network,
    pa: &str,
    pb: &str,
    n: usize,
) -> (Vec<Signal>, Vec<Signal>) {
    let mut a = vec![None; n];
    let mut b = vec![None; n];
    for i in (0..n).rev() {
        a[i] = Some(net.add_input(&format!("{pa}{i}")));
        b[i] = Some(net.add_input(&format!("{pb}{i}")));
    }
    (
        a.into_iter().map(Option::unwrap).collect(),
        b.into_iter().map(Option::unwrap).collect(),
    )
}

/// `width`-bit ripple adder: `2·width` inputs, `width+1` outputs.
#[must_use]
pub fn adder(width: usize) -> Network {
    let mut net = Network::new(&format!("adder{width}"));
    let (a, b) = operands_interleaved(&mut net, "a", "b", width);
    let (sum, cout) = arith::ripple_add(&mut net, &a, &b, None);
    for (i, s) in sum.iter().enumerate() {
        net.set_output(&format!("s{i}"), *s);
    }
    net.set_output("cout", cout);
    net.check().expect("adder generator");
    net
}

/// `width`-bit equality comparator: `2·width` inputs, 1 output.
#[must_use]
pub fn equality(width: usize) -> Network {
    let mut net = Network::new(&format!("equality{width}"));
    let (a, b) = operands_interleaved(&mut net, "a", "b", width);
    let eq = arith::equality(&mut net, &a, &b);
    net.set_output("eq", eq);
    net.check().expect("equality generator");
    net
}

/// `width`-bit magnitude comparator (`a > b`): `2·width` inputs, 1 output.
#[must_use]
pub fn magnitude(width: usize) -> Network {
    let mut net = Network::new(&format!("magnitude{width}"));
    let (a, b) = operands_interleaved(&mut net, "a", "b", width);
    let gt = arith::greater_than(&mut net, &a, &b);
    net.set_output("gt", gt);
    net.check().expect("magnitude generator");
    net
}

/// Barrel shifter with the paper's I/O counts: 32-bit → full left/right
/// logical/arithmetic shifter (32 + 5 + 2 = 39 inputs); 64-bit →
/// rotate-left (64 + 6 = 70 inputs).
///
/// # Panics
/// Panics unless `width` is a power of two ≥ 4.
#[must_use]
pub fn barrel(width: usize) -> Network {
    assert!(
        width.is_power_of_two() && width >= 4,
        "width must be 2^k ≥ 4"
    );
    let stages = width.trailing_zeros() as usize;
    let mut net = Network::new(&format!("barrel{width}"));
    // Shift controls first: decision diagrams branch on the select tree
    // before reaching the data literals (the natural file order).
    let sh = operand(&mut net, "sh", stages);
    let out = if width <= 32 {
        let dir = net.add_input("dir");
        let arith_in = net.add_input("arith");
        let data = operand(&mut net, "d", width);
        arith::barrel_shift(&mut net, &data, &sh, dir, arith_in)
    } else {
        let data = operand(&mut net, "d", width);
        arith::barrel_rotate_left(&mut net, &data, &sh)
    };
    for (i, s) in out.iter().enumerate() {
        net.set_output(&format!("o{i}"), *s);
    }
    net.check().expect("barrel generator");
    net
}

/// Carry-lookahead adder in 4-bit groups (generate/propagate logic, group
/// carries rippled) — the delay-oriented structure arithmetic generators
/// instantiate for `a + b`.
#[must_use]
pub fn adder_cla(width: usize) -> Network {
    use logicnet::GateOp;
    let mut net = Network::new(&format!("adder_cla{width}"));
    let (a, b) = operands_interleaved(&mut net, "a", "b", width);
    let g: Vec<Signal> = (0..width)
        .map(|i| net.add_gate(GateOp::And, &[a[i], b[i]]))
        .collect();
    let p: Vec<Signal> = (0..width)
        .map(|i| net.add_gate(GateOp::Xor, &[a[i], b[i]]))
        .collect();
    let mut carry = net.add_gate(GateOp::Const0, &[]);
    let mut carries: Vec<Signal> = Vec::with_capacity(width + 1);
    carries.push(carry);
    for group in (0..width).step_by(4) {
        let hi = (group + 4).min(width);
        // Lookahead within the group: c_{i+1} = g_i | p_i·g_{i-1} | … |
        // p_i…p_group·c_in.
        for i in group..hi {
            let mut terms: Vec<Signal> = vec![g[i]];
            for j in (group..i).rev() {
                let mut ps: Vec<Signal> = (j + 1..=i).map(|k| p[k]).collect();
                ps.push(g[j]);
                terms.push(net.add_gate(GateOp::And, &ps));
            }
            let mut ps: Vec<Signal> = (group..=i).map(|k| p[k]).collect();
            ps.push(carries[group]);
            terms.push(net.add_gate(GateOp::And, &ps));
            carry = if terms.len() == 1 {
                terms[0]
            } else {
                net.add_gate(GateOp::Or, &terms)
            };
            carries.push(carry);
        }
    }
    for i in 0..width {
        let s = net.add_gate(GateOp::Xor, &[p[i], carries[i]]);
        net.set_output(&format!("s{i}"), s);
    }
    net.set_output("cout", carries[width]);
    net.check().expect("CLA generator");
    net
}

/// Magnitude comparison implemented through a subtractor (`a > b` ⇔
/// borrow of `b − a`) — the structure comparator operators expand into.
#[must_use]
pub fn magnitude_via_subtractor(width: usize) -> Network {
    use logicnet::GateOp;
    let mut net = Network::new(&format!("magnitude_sub{width}"));
    let (a, b) = operands_interleaved(&mut net, "a", "b", width);
    // b - a = b + ¬a + 1; carry-out == 1 ⇔ b ≥ a, so gt = ¬carry.
    let na: Vec<Signal> = a.iter().map(|&x| net.add_gate(GateOp::Not, &[x])).collect();
    let one = net.add_gate(GateOp::Const1, &[]);
    let (_diff, cout) = arith::ripple_add(&mut net, &b, &na, Some(one));
    let gt = net.add_gate(GateOp::Not, &[cout]);
    net.set_output("gt", gt);
    net.check().expect("subtractor-comparator generator");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_io_counts_match_paper() {
        // (label, inputs, outputs) as printed in Table II.
        let expect = [
            ("Adder 32", 64, 33),
            ("Adder 64", 128, 65),
            ("Equality 32", 64, 1),
            ("Equality 64", 128, 1),
            ("Magnitude 32", 64, 1),
            ("Magnitude 64", 128, 1),
            ("Barrel 32", 39, 32),
            ("Barrel 64", 70, 64),
        ];
        for (dp, (label, pi, po)) in Datapath::table2().iter().zip(expect) {
            let net = dp.generate();
            assert_eq!(dp.label(), label);
            assert_eq!(net.num_inputs(), pi, "{label} inputs");
            assert_eq!(net.num_outputs(), po, "{label} outputs");
        }
    }

    /// Input vector in declaration order (`a_{w-1}, b_{w-1}, …, a0, b0`).
    fn ivec(x: u64, y: u64, w: usize) -> Vec<bool> {
        (0..w)
            .rev()
            .flat_map(|i| [(x >> i) & 1 == 1, (y >> i) & 1 == 1])
            .collect()
    }

    #[test]
    fn commercial_implementations_are_equivalent_to_rtl() {
        for dp in Datapath::table2() {
            // Equivalence only needs moderate widths to be convincing and
            // cheap; reuse the generator functions directly.
            let (r, c) = match dp {
                Datapath::Adder { .. } => (adder(8), adder_cla(8)),
                Datapath::Equality { .. } => (equality(8), equality(8)),
                Datapath::Magnitude { .. } => (magnitude(8), magnitude_via_subtractor(8)),
                Datapath::Barrel { .. } => (barrel(8), barrel(8)),
            };
            assert_eq!(
                logicnet::sim::exhaustive_equivalence(&r, &c),
                logicnet::sim::Equivalence::Indistinguishable,
                "{}",
                dp.label()
            );
        }
    }

    #[test]
    fn cla_matches_ripple_on_32_bits() {
        let r = adder(32);
        let c = adder_cla(32);
        assert_eq!(
            logicnet::sim::random_equivalence(&r, &c, 32, 0xC1A),
            logicnet::sim::Equivalence::Indistinguishable
        );
    }

    #[test]
    fn adder_adds_spot_checks() {
        let net = adder(8);
        let cases = [(3u64, 5u64), (255, 1), (128, 127), (77, 200)];
        for (x, y) in cases {
            let v = ivec(x, y, 8);
            let out = net.simulate(&v);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn comparators_spot_checks() {
        let eqn = equality(8);
        let mgn = magnitude(8);
        for (x, y) in [(5u64, 5u64), (5, 6), (200, 100), (0, 0), (255, 254)] {
            let v = ivec(x, y, 8);
            assert_eq!(eqn.simulate(&v)[0], x == y, "{x}=={y}");
            assert_eq!(mgn.simulate(&v)[0], x > y, "{x}>{y}");
        }
    }

    #[test]
    fn barrel64_rotates() {
        let net = barrel(64);
        let data = 0xDEAD_BEEF_0BAD_F00Du64;
        for sh in [0u64, 1, 7, 33, 63] {
            let mut v: Vec<bool> = (0..6).map(|i| (sh >> i) & 1 == 1).collect();
            v.extend((0..64).map(|i| (data >> i) & 1 == 1));
            let out = net.simulate(&v);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
            assert_eq!(got, data.rotate_left(sh as u32), "rot by {sh}");
        }
    }
}

//! Reusable arithmetic building blocks (bit vectors are LSB-first).

use logicnet::{GateOp, Network, Signal};

/// Full adder; returns `(sum, carry)`.
pub fn full_adder(net: &mut Network, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
    let ab = net.add_gate(GateOp::Xor, &[a, b]);
    let sum = net.add_gate(GateOp::Xor, &[ab, c]);
    let carry = net.add_gate(GateOp::Maj, &[a, b, c]);
    (sum, carry)
}

/// Ripple-carry addition of equal-width vectors; returns `(sum, carry_out)`.
///
/// # Panics
/// Panics if the widths differ or are zero.
pub fn ripple_add(
    net: &mut Network,
    a: &[Signal],
    b: &[Signal],
    cin: Option<Signal>,
) -> (Vec<Signal>, Signal) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "zero-width addition");
    let mut carry = match cin {
        Some(c) => c,
        None => net.add_gate(GateOp::Const0, &[]),
    };
    let mut sum = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c) = full_adder(net, a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b` via `a + ¬b + 1`; returns
/// `(difference, carry_out)` (carry-out set ⇔ no borrow ⇔ `a ≥ b`).
pub fn ripple_sub(net: &mut Network, a: &[Signal], b: &[Signal]) -> (Vec<Signal>, Signal) {
    let nb: Vec<Signal> = b.iter().map(|&x| net.add_gate(GateOp::Not, &[x])).collect();
    let one = net.add_gate(GateOp::Const1, &[]);
    ripple_add(net, a, &nb, Some(one))
}

/// Word equality: `AND` of per-bit `XNOR`s.
///
/// # Panics
/// Panics if the widths differ or are zero.
pub fn equality(net: &mut Network, a: &[Signal], b: &[Signal]) -> Signal {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let bits: Vec<Signal> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| net.add_gate(GateOp::Xnor, &[x, y]))
        .collect();
    match bits.len() {
        1 => bits[0],
        _ => net.add_gate(GateOp::And, &bits),
    }
}

/// Unsigned magnitude comparison `a > b` (LSB-first ripple).
pub fn greater_than(net: &mut Network, a: &[Signal], b: &[Signal]) -> Signal {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    // gt_i = (a_i & !b_i) | (a_i ≡ b_i) & gt_{i-1}, rippled from the LSB.
    let mut gt = net.add_gate(GateOp::Const0, &[]);
    for i in 0..a.len() {
        let nb = net.add_gate(GateOp::Not, &[b[i]]);
        let here = net.add_gate(GateOp::And, &[a[i], nb]);
        let same = net.add_gate(GateOp::Xnor, &[a[i], b[i]]);
        let keep = net.add_gate(GateOp::And, &[same, gt]);
        gt = net.add_gate(GateOp::Or, &[here, keep]);
    }
    gt
}

/// Rotate-left barrel network: stage `j` rotates by `2^j` when `sh[j]`.
///
/// # Panics
/// Panics unless `data.len() == 2^sh.len()`.
pub fn barrel_rotate_left(net: &mut Network, data: &[Signal], sh: &[Signal]) -> Vec<Signal> {
    assert_eq!(data.len(), 1usize << sh.len(), "width must be 2^stages");
    let n = data.len();
    let mut cur: Vec<Signal> = data.to_vec();
    for (j, &s) in sh.iter().enumerate() {
        let k = 1usize << j;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            // Rotated-left output bit i comes from input bit (i - k) mod n.
            let src = (i + n - k) % n;
            next.push(net.add_gate(GateOp::Mux, &[s, cur[src], cur[i]]));
        }
        cur = next;
    }
    cur
}

/// Logical/arithmetic left/right barrel shifter.
///
/// `dir = 0`: shift left (fill 0); `dir = 1`: shift right, filling with 0
/// (`arith = 0`) or the sign bit (`arith = 1`).
pub fn barrel_shift(
    net: &mut Network,
    data: &[Signal],
    sh: &[Signal],
    dir: Signal,
    arith: Signal,
) -> Vec<Signal> {
    assert_eq!(data.len(), 1usize << sh.len(), "width must be 2^stages");
    let n = data.len();
    let zero = net.add_gate(GateOp::Const0, &[]);
    let msb = data[n - 1];
    let fill_right = net.add_gate(GateOp::Mux, &[arith, msb, zero]);
    let mut cur: Vec<Signal> = data.to_vec();
    for (j, &s) in sh.iter().enumerate() {
        let k = 1usize << j;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            // Left-shift source: bit i-k (0 fill); right-shift: bit i+k.
            let left_src = if i >= k { cur[i - k] } else { zero };
            let right_src = if i + k < n { cur[i + k] } else { fill_right };
            let shifted = net.add_gate(GateOp::Mux, &[dir, right_src, left_src]);
            next.push(net.add_gate(GateOp::Mux, &[s, shifted, cur[i]]));
        }
        cur = next;
    }
    cur
}

/// `2^k`-output one-hot decoder with enable.
pub fn decoder(net: &mut Network, sel: &[Signal], en: Signal) -> Vec<Signal> {
    let k = sel.len();
    let nsel: Vec<Signal> = sel
        .iter()
        .map(|&s| net.add_gate(GateOp::Not, &[s]))
        .collect();
    (0..1usize << k)
        .map(|m| {
            let mut lits: Vec<Signal> = Vec::with_capacity(k + 1);
            for j in 0..k {
                lits.push(if (m >> j) & 1 == 1 { sel[j] } else { nsel[j] });
            }
            lits.push(en);
            net.add_gate(GateOp::And, &lits)
        })
        .collect()
}

/// Population count as a binary word (adder-tree construction).
pub fn popcount(net: &mut Network, bits: &[Signal]) -> Vec<Signal> {
    // Reduce triples with full adders until every weight has ≤ 1 signal.
    let mut columns: Vec<Vec<Signal>> = vec![bits.to_vec()];
    loop {
        let mut done = true;
        let mut next: Vec<Vec<Signal>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, c) = full_adder_ref(net, col[i], col[i + 1], col[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                i += 3;
                done = false;
            }
            if col.len() - i == 2 {
                let s = net.add_gate(GateOp::Xor, &[col[i], col[i + 1]]);
                let c = net.add_gate(GateOp::And, &[col[i], col[i + 1]]);
                next[w].push(s);
                next[w + 1].push(c);
                done = false;
            } else if col.len() - i == 1 {
                next[w].push(col[i]);
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
        if done {
            break;
        }
    }
    columns
        .into_iter()
        .map(|col| {
            debug_assert!(col.len() <= 1);
            col.first().copied().unwrap_or_else(|| {
                // impossible: empty columns were trimmed
                unreachable!("empty popcount column")
            })
        })
        .collect()
}

fn full_adder_ref(net: &mut Network, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
    full_adder(net, a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(net: &mut Network, prefix: &str, n: usize) -> Vec<Signal> {
        (0..n)
            .map(|i| net.add_input(&format!("{prefix}{i}")))
            .collect()
    }

    fn to_bits(x: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn ripple_add_small_exhaustive() {
        let w = 4;
        let mut net = Network::new("add");
        let a = inputs(&mut net, "a", w);
        let b = inputs(&mut net, "b", w);
        let (sum, cout) = ripple_add(&mut net, &a, &b, None);
        for (i, s) in sum.iter().enumerate() {
            net.set_output(&format!("s{i}"), *s);
        }
        net.set_output("cout", cout);
        net.check().unwrap();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut v = to_bits(x, w);
                v.extend(to_bits(y, w));
                let out = net.simulate(&v);
                let got = from_bits(&out);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtraction_and_borrow() {
        let w = 4;
        let mut net = Network::new("sub");
        let a = inputs(&mut net, "a", w);
        let b = inputs(&mut net, "b", w);
        let (diff, no_borrow) = ripple_sub(&mut net, &a, &b);
        for (i, s) in diff.iter().enumerate() {
            net.set_output(&format!("d{i}"), *s);
        }
        net.set_output("nb", no_borrow);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut v = to_bits(x, w);
                v.extend(to_bits(y, w));
                let out = net.simulate(&v);
                let d = from_bits(&out[..w]);
                assert_eq!(d, (x.wrapping_sub(y)) & 0xF, "{x}-{y}");
                assert_eq!(out[w], x >= y, "borrow for {x}-{y}");
            }
        }
    }

    #[test]
    fn comparators() {
        let w = 4;
        let mut net = Network::new("cmp");
        let a = inputs(&mut net, "a", w);
        let b = inputs(&mut net, "b", w);
        let eq = equality(&mut net, &a, &b);
        let gt = greater_than(&mut net, &a, &b);
        net.set_output("eq", eq);
        net.set_output("gt", gt);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut v = to_bits(x, w);
                v.extend(to_bits(y, w));
                let out = net.simulate(&v);
                assert_eq!(out[0], x == y);
                assert_eq!(out[1], x > y);
            }
        }
    }

    #[test]
    fn rotate_left_matches_reference() {
        let mut net = Network::new("rot");
        let d = inputs(&mut net, "d", 8);
        let s = inputs(&mut net, "s", 3);
        let r = barrel_rotate_left(&mut net, &d, &s);
        for (i, x) in r.iter().enumerate() {
            net.set_output(&format!("r{i}"), *x);
        }
        for data in [0x5Au64, 0x01, 0x80, 0xF3] {
            for sh in 0..8u64 {
                let mut v = to_bits(data, 8);
                v.extend(to_bits(sh, 3));
                let out = from_bits(&net.simulate(&v));
                let expect = ((data << sh) | (data >> (8 - sh))) & 0xFF;
                let expect = if sh == 0 { data } else { expect };
                assert_eq!(out, expect, "rot {data:#x} by {sh}");
            }
        }
    }

    #[test]
    fn barrel_shift_directions() {
        let mut net = Network::new("bs");
        let d = inputs(&mut net, "d", 8);
        let s = inputs(&mut net, "s", 3);
        let dir = net.add_input("dir");
        let arith = net.add_input("ar");
        let r = barrel_shift(&mut net, &d, &s, dir, arith);
        for (i, x) in r.iter().enumerate() {
            net.set_output(&format!("r{i}"), *x);
        }
        for data in [0xB4u64, 0x81] {
            for sh in 0..8u64 {
                for (dirv, arithv) in [(false, false), (true, false), (true, true)] {
                    let mut v = to_bits(data, 8);
                    v.extend(to_bits(sh, 3));
                    v.push(dirv);
                    v.push(arithv);
                    let out = from_bits(&net.simulate(&v));
                    let expect = if !dirv {
                        (data << sh) & 0xFF
                    } else if arithv {
                        let x = data as u8 as i8;
                        ((x >> sh) as u8) as u64
                    } else {
                        data >> sh
                    };
                    assert_eq!(out, expect, "data {data:#x} sh {sh} dir {dirv} ar {arithv}");
                }
            }
        }
    }

    #[test]
    fn decoder_one_hot() {
        let mut net = Network::new("dec");
        let sel = inputs(&mut net, "s", 3);
        let en = net.add_input("en");
        let outs = decoder(&mut net, &sel, en);
        for (i, o) in outs.iter().enumerate() {
            net.set_output(&format!("o{i}"), *o);
        }
        for m in 0..8u64 {
            for e in [false, true] {
                let mut v = to_bits(m, 3);
                v.push(e);
                let out = net.simulate(&v);
                for (i, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, e && i as u64 == m);
                }
            }
        }
    }

    #[test]
    fn popcount_counts() {
        let mut net = Network::new("pc");
        let bits = inputs(&mut net, "b", 9);
        let cnt = popcount(&mut net, &bits);
        assert_eq!(cnt.len(), 4, "9 bits count to 4-bit result");
        for (i, c) in cnt.iter().enumerate() {
            net.set_output(&format!("c{i}"), *c);
        }
        for m in 0..512u64 {
            let v = to_bits(m, 9);
            let out = from_bits(&net.simulate(&v));
            assert_eq!(out, m.count_ones() as u64, "popcount {m:#b}");
        }
    }
}

//! Seeded PLA-style two-level network generator — the stand-in for MCNC
//! control benchmarks whose exact functions are not public (`seq`, `frg1`,
//! `misex1`, `misex3`).
//!
//! The generator draws a fixed number of product terms (cubes) with a
//! 2-in-3 chance of each input being a don't-care and shares cubes across
//! outputs, mimicking the structure of two-level PLA dumps. Everything is
//! deterministic in the seed.

use logicnet::sim::SplitMix64;
use logicnet::{GateOp, Network, Signal};

/// Shape parameters of a synthetic PLA.
#[derive(Debug, Clone, Copy)]
pub struct PlaSpec {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Product terms.
    pub cubes: usize,
    /// RNG seed (the benchmark identity).
    pub seed: u64,
    /// Number of cube *templates*. Real MCNC control logic is far more
    /// structured than uniformly random cubes: product terms cluster into
    /// families that differ in a few literals. `0` disables templating
    /// (fully random cubes).
    pub templates: usize,
    /// The first `xor_outputs` outputs are the XOR of two cube groups —
    /// the parity-flavoured outputs typical of sequential-control dumps
    /// such as `seq`.
    pub xor_outputs: usize,
    /// Per-cube probability (in percent) of swapping a literal pair for a
    /// *comparison factor* over an adjacent input pair (`x ⊙ y` / `x ⊕ y`).
    /// Control logic compares state fields against encodings, which is
    /// where real MCNC benchmarks get the adjacent-variable affinity that
    /// biconditional diagrams absorb.
    pub pair_factor_pct: u64,
}

/// Generate the two-level network for `spec`.
///
/// # Panics
/// Panics if any dimension is zero.
#[must_use]
pub fn generate_pla(name: &str, spec: &PlaSpec) -> Network {
    assert!(spec.inputs > 0 && spec.outputs > 0 && spec.cubes > 0);
    let mut rng = SplitMix64::new(spec.seed ^ PLA_MAGIC);
    let mut net = Network::new(name);
    let ins: Vec<Signal> = (0..spec.inputs)
        .map(|i| net.add_input(&format!("x{i}")))
        .collect();
    let nins: Vec<Signal> = ins
        .iter()
        .map(|&s| net.add_gate(GateOp::Not, &[s]))
        .collect();

    // Product plane. Cube encoding per input: 0 = positive literal,
    // 1 = negative literal, 2 = don't care.
    let draw_mask = |rng: &mut SplitMix64| -> Vec<u8> {
        (0..spec.inputs)
            .map(|_| (rng.next_u64() % 3) as u8)
            .collect()
    };
    let templates: Vec<Vec<u8>> = (0..spec.templates).map(|_| draw_mask(&mut rng)).collect();
    let mut terms: Vec<Signal> = Vec::with_capacity(spec.cubes);
    for _ in 0..spec.cubes {
        let mask: Vec<u8> = if templates.is_empty() {
            draw_mask(&mut rng)
        } else {
            // Mutate a template in a couple of positions: cube families
            // share most of their literals, like real control PLAs.
            let mut m = templates[(rng.next_u64() % templates.len() as u64) as usize].clone();
            let mutations = 1 + (rng.next_u64() % 3) as usize;
            for _ in 0..mutations {
                let pos = (rng.next_u64() % spec.inputs as u64) as usize;
                m[pos] = (rng.next_u64() % 3) as u8;
            }
            m
        };
        let mut lits: Vec<Signal> = Vec::new();
        let mut i = 0usize;
        while i < mask.len() {
            // Comparison factor over the adjacent pair (i, i+1)?
            if i + 1 < mask.len() && mask[i] != 2 && rng.next_u64() % 100 < spec.pair_factor_pct {
                let op = if rng.next_u64() & 1 == 0 {
                    GateOp::Xnor
                } else {
                    GateOp::Xor
                };
                lits.push(net.add_gate(op, &[ins[i], ins[i + 1]]));
                i += 2;
                continue;
            }
            match mask[i] {
                0 => lits.push(ins[i]),
                1 => lits.push(nins[i]),
                _ => {}
            }
            i += 1;
        }
        let t = match lits.len() {
            0 => net.add_gate(GateOp::Const1, &[]),
            1 => lits[0],
            _ => net.add_gate(GateOp::And, &lits),
        };
        terms.push(t);
    }

    // Or plane: every output picks ~ cubes/3 terms (at least one); the
    // first `xor_outputs` outputs combine two groups with XOR.
    fn pick_group(net: &mut Network, terms: &[Signal], rng: &mut SplitMix64) -> Signal {
        let chosen: Vec<Signal> = terms
            .iter()
            .copied()
            .filter(|_| rng.next_u64().is_multiple_of(3))
            .collect();
        match chosen.len() {
            0 => terms[(rng.next_u64() % terms.len() as u64) as usize],
            1 => chosen[0],
            _ => net.add_gate(GateOp::Or, &chosen),
        }
    }
    for o in 0..spec.outputs {
        let g1 = pick_group(&mut net, &terms, &mut rng);
        let out = if o < spec.xor_outputs {
            let g2 = pick_group(&mut net, &terms, &mut rng);
            if g1 == g2 {
                g1
            } else {
                net.add_gate(GateOp::Xor, &[g1, g2])
            }
        } else {
            g1
        };
        net.set_output(&format!("y{o}"), out);
    }
    net.check().expect("generated PLA must be valid");
    net
}

/// Domain-separation constant so PLA seeds do not collide with other
/// seeded generators in the workspace.
const PLA_MAGIC: u64 = 0x504C_4147_454E_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let spec = PlaSpec {
            inputs: 8,
            outputs: 7,
            cubes: 20,
            seed: 42,
            templates: 4,
            xor_outputs: 2,
            pair_factor_pct: 30,
        };
        let a = generate_pla("p", &spec);
        let b = generate_pla("p", &spec);
        assert_eq!(a.num_gates(), b.num_gates());
        for m in 0..256u32 {
            let v: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.simulate(&v), b.simulate(&v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            generate_pla(
                "p",
                &PlaSpec {
                    inputs: 8,
                    outputs: 4,
                    cubes: 16,
                    seed,
                    templates: 0,
                    xor_outputs: 0,
                    pair_factor_pct: 0,
                },
            )
        };
        let a = mk(1);
        let b = mk(2);
        let mut differs = false;
        for m in 0..256u32 {
            let v: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            if a.simulate(&v) != b.simulate(&v) {
                differs = true;
                break;
            }
        }
        assert!(differs, "seeds should give distinct functions");
    }

    #[test]
    fn interface_matches_spec() {
        let net = generate_pla(
            "iface",
            &PlaSpec {
                inputs: 14,
                outputs: 14,
                cubes: 40,
                seed: 9,
                templates: 5,
                xor_outputs: 3,
                pair_factor_pct: 25,
            },
        );
        assert_eq!(net.num_inputs(), 14);
        assert_eq!(net.num_outputs(), 14);
    }
}

//! Deterministic CNF instance generators for the DIMACS front door.
//!
//! Three families, mirroring the workloads the `cnf` crate is measured
//! on:
//!
//! * [`parity_chain`] — Tseitin-encoded XOR chains, the BBDD headline
//!   case: biconditional expansion targets exactly this structure, and
//!   the model count is known in closed form (`2^(n-1)` over the
//!   `2n - 1` declared variables).
//! * [`random3`] — uniform random 3-CNF at a caller-chosen clause/var
//!   ratio, the classic hardness dial.
//! * [`product_config`] — a product-configuration-style instance:
//!   option groups with at-most-one constraints, dependency (requires)
//!   clauses and cross-group conflicts, always satisfiable.
//!
//! Everything is deterministic: the same parameters produce the same
//! instance, and every instance round-trips through the strict DIMACS
//! parser.

use cnf::Cnf;
use logicnet::sim::SplitMix64;

/// Domain-separation constant for this module's RNG streams.
const CNF_MAGIC: u64 = 0xC4F_D1AC5;

/// Tseitin-encoded odd-parity chain over `n ≥ 1` data variables:
/// `x1 ⊕ x2 ⊕ … ⊕ xn = 1`.
///
/// Data variables are `1..=n`; chain variables `t_i = x1 ⊕ … ⊕ x_{i+1}`
/// are `n+1..=2n-1`, each defined by the four XOR-equality clauses, with
/// a final unit clause asserting the last chain variable. Every model
/// assigns the chain variables functionally, so the count over the
/// declared `2n - 1` variables is exactly `2^(n-1)`.
///
/// # Panics
/// Panics if `n` is zero.
#[must_use]
pub fn parity_chain(n: usize) -> Cnf {
    assert!(n > 0, "parity chain needs at least one variable");
    if n == 1 {
        let mut out = Cnf::new(1);
        out.add_clause(&[1]);
        return out;
    }
    let mut out = Cnf::new(2 * n - 1);
    // t ↔ a ⊕ b as four clauses.
    let mut xor_eq = |t: i32, a: i32, b: i32| {
        out.add_clause(&[-t, a, b]);
        out.add_clause(&[-t, -a, -b]);
        out.add_clause(&[t, -a, b]);
        out.add_clause(&[t, a, -b]);
    };
    let t = |i: usize| (n + i) as i32; // chain var i, 1-based, i ∈ 1..n
    xor_eq(t(1), 1, 2);
    for i in 2..n {
        xor_eq(t(i), t(i - 1), (i + 1) as i32);
    }
    out.add_clause(&[t(n - 1)]);
    out
}

/// Uniform random 3-CNF: `clauses` clauses over `n_vars ≥ 3` variables,
/// each on three distinct variables with independent random polarities.
/// Deterministic in `seed`.
///
/// # Panics
/// Panics if `n_vars < 3`.
#[must_use]
pub fn random3(n_vars: usize, clauses: usize, seed: u64) -> Cnf {
    assert!(n_vars >= 3, "random 3-CNF needs at least three variables");
    let mut rng = SplitMix64::new(seed ^ CNF_MAGIC);
    let mut out = Cnf::new(n_vars);
    for _ in 0..clauses {
        let mut vars: Vec<usize> = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = (rng.next_u64() % n_vars as u64) as usize;
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits: Vec<i32> = vars
            .into_iter()
            .map(|v| {
                let lit = (v + 1) as i32;
                if rng.next_u64() & 1 == 1 {
                    -lit
                } else {
                    lit
                }
            })
            .collect();
        out.add_clause(&lits);
    }
    out
}

/// A product-configuration-style instance over `features ≥ 6` feature
/// variables, deterministic in `seed`:
///
/// * the first `⌊features/3⌋` triples of features are *option groups*
///   with pairwise at-most-one clauses; the first group additionally
///   requires at least one member (a mandatory selection);
/// * every feature outside the groups *requires* one pseudo-random
///   earlier feature (`¬f ∨ dep`);
/// * one cross-group *conflict* clause (`¬a ∨ ¬b`) per group pair,
///   between pseudo-random members.
///
/// Always satisfiable: pick one member of the mandatory group, leave
/// everything else unselected.
///
/// # Panics
/// Panics if `features < 6`.
#[must_use]
pub fn product_config(features: usize, seed: u64) -> Cnf {
    assert!(features >= 6, "product config needs at least six features");
    let mut rng = SplitMix64::new(seed ^ CNF_MAGIC.rotate_left(17));
    let mut out = Cnf::new(features);
    let groups = features / 3;
    let lit = |v: usize| (v + 1) as i32;
    // Option groups over features [3g, 3g+3).
    for g in 0..groups {
        let (a, b, c) = (3 * g, 3 * g + 1, 3 * g + 2);
        out.add_clause(&[-lit(a), -lit(b)]);
        out.add_clause(&[-lit(a), -lit(c)]);
        out.add_clause(&[-lit(b), -lit(c)]);
        if g == 0 {
            out.add_clause(&[lit(a), lit(b), lit(c)]);
        }
    }
    // Dependencies for the tail features.
    for f in 3 * groups..features {
        let dep = (rng.next_u64() % (3 * groups) as u64) as usize;
        out.add_clause(&[-lit(f), lit(dep)]);
    }
    // One conflict per group pair.
    for g in 0..groups {
        for h in g + 1..groups {
            let a = 3 * g + (rng.next_u64() % 3) as usize;
            let b = 3 * h + (rng.next_u64() % 3) as usize;
            out.add_clause(&[-lit(a), -lit(b)]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::parse_dimacs;

    #[test]
    fn parity_chain_has_closed_form_count() {
        for n in 1..=8 {
            let inst = parity_chain(n);
            assert_eq!(
                inst.brute_force_count(),
                Some(1u128 << (n - 1)),
                "parity_chain({n})"
            );
        }
    }

    #[test]
    fn parity_chain_shape() {
        let inst = parity_chain(8);
        assert_eq!(inst.num_vars, 15);
        assert_eq!(inst.num_clauses(), 4 * 7 + 1);
    }

    #[test]
    fn generators_emit_valid_dimacs() {
        for inst in [parity_chain(8), random3(12, 51, 7), product_config(12, 3)] {
            let parsed = parse_dimacs(&inst.to_dimacs("generated")).unwrap();
            assert_eq!(parsed, inst);
        }
    }

    #[test]
    fn random3_is_deterministic_and_shaped() {
        let a = random3(20, 85, 42);
        let b = random3(20, 85, 42);
        assert_eq!(a, b);
        assert_ne!(a, random3(20, 85, 43));
        assert!(a.clauses.iter().all(|c| c.len() == 3));
        assert_eq!(a.num_clauses(), 85);
    }

    #[test]
    fn product_config_is_satisfiable() {
        for seed in 0..4 {
            let inst = product_config(15, seed);
            let count = inst.brute_force_count().unwrap();
            assert!(count > 0, "seed {seed} produced an unsatisfiable config");
        }
    }
}

//! # benchgen — benchmark circuits for the BBDD reproduction
//!
//! Two families, matching the paper's two experiments:
//!
//! * [`mcnc`] — stand-ins for the 17 MCNC benchmarks of Table I, with the
//!   exact PI/PO counts of the paper and the documented function class of
//!   each original (XOR-dominated ECC logic for the `C*` circuits,
//!   arithmetic for `my_adder`/`comp`/`z4ml`, symmetric/decoder/parity
//!   functions, and seeded PLA-style control logic where the original
//!   function is not public — see `DESIGN.md` §5 for the substitution
//!   table);
//! * [`datapath`] — the adder / equality / magnitude / barrel-shifter
//!   datapaths of Table II in 32- and 64-bit operand widths;
//! * [`cnf`] — DIMACS CNF instances for the SAT-shaped front door:
//!   Tseitin parity chains (the BBDD headline case), random 3-CNF, and a
//!   product-configuration family.
//!
//! All generators are deterministic; PLA stand-ins take an explicit seed.
//!
//! ```
//! let net = benchgen::mcnc::generate("parity").unwrap();
//! assert_eq!(net.num_inputs(), 16);
//! assert_eq!(net.num_outputs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod cnf;
pub mod datapath;
pub mod mcnc;
pub mod pla;

//! Stand-ins for the 17 MCNC benchmarks of Table I.
//!
//! Every generator matches the paper's PI/PO counts exactly and realizes
//! the documented function class of the original circuit (see `DESIGN.md`
//! §5 for the per-benchmark substitution notes). Where the original
//! function is public (`C17`, `parity`, `9symml`, arithmetic circuits) the
//! function class is exact; control PLAs (`seq`, `frg1`, `misex*`) are
//! seeded synthetic PLAs.

use crate::arith;
use crate::pla::{generate_pla, PlaSpec};
use logicnet::{GateOp, Network, Signal};

/// Descriptor of one Table-I row.
#[derive(Debug, Clone, Copy)]
pub struct McncBench {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Primary inputs (paper's "Inputs" column).
    pub inputs: usize,
    /// Primary outputs (paper's "Outputs" column).
    pub outputs: usize,
}

/// The 17 benchmarks of Table I in paper order.
pub const TABLE1: [McncBench; 17] = [
    McncBench {
        name: "C1355",
        inputs: 41,
        outputs: 32,
    },
    McncBench {
        name: "C1908",
        inputs: 33,
        outputs: 25,
    },
    McncBench {
        name: "C499",
        inputs: 41,
        outputs: 32,
    },
    McncBench {
        name: "seq",
        inputs: 41,
        outputs: 35,
    },
    McncBench {
        name: "my_adder",
        inputs: 33,
        outputs: 17,
    },
    McncBench {
        name: "frg1",
        inputs: 28,
        outputs: 3,
    },
    McncBench {
        name: "misex3",
        inputs: 14,
        outputs: 14,
    },
    McncBench {
        name: "misex1",
        inputs: 8,
        outputs: 7,
    },
    McncBench {
        name: "comp",
        inputs: 32,
        outputs: 3,
    },
    McncBench {
        name: "count",
        inputs: 35,
        outputs: 16,
    },
    McncBench {
        name: "cordic",
        inputs: 23,
        outputs: 2,
    },
    McncBench {
        name: "alu4",
        inputs: 14,
        outputs: 8,
    },
    McncBench {
        name: "C17",
        inputs: 5,
        outputs: 2,
    },
    McncBench {
        name: "9symml",
        inputs: 9,
        outputs: 1,
    },
    McncBench {
        name: "z4ml",
        inputs: 7,
        outputs: 4,
    },
    McncBench {
        name: "decod",
        inputs: 5,
        outputs: 16,
    },
    McncBench {
        name: "parity",
        inputs: 16,
        outputs: 1,
    },
];

/// Generate a benchmark by name; `None` for unknown names.
#[must_use]
pub fn generate(name: &str) -> Option<Network> {
    let net = match name {
        "C1355" => c499_like("C1355", true),
        "C499" => c499_like("C499", false),
        "C1908" => c1908(),
        "seq" => generate_pla(
            "seq",
            &PlaSpec {
                inputs: 41,
                outputs: 35,
                cubes: 120,
                seed: 0x5EC,
                templates: 10,
                xor_outputs: 14,
                pair_factor_pct: 0,
            },
        ),
        "my_adder" => my_adder(),
        "frg1" => generate_pla(
            "frg1",
            &PlaSpec {
                inputs: 28,
                outputs: 3,
                cubes: 60,
                seed: 0xF261,
                templates: 6,
                xor_outputs: 1,
                pair_factor_pct: 0,
            },
        ),
        "misex3" => generate_pla(
            "misex3",
            &PlaSpec {
                inputs: 14,
                outputs: 14,
                cubes: 80,
                seed: 0x3153,
                templates: 8,
                xor_outputs: 2,
                pair_factor_pct: 0,
            },
        ),
        "misex1" => generate_pla(
            "misex1",
            &PlaSpec {
                inputs: 8,
                outputs: 7,
                cubes: 20,
                seed: 0x3151,
                templates: 4,
                xor_outputs: 1,
                pair_factor_pct: 0,
            },
        ),
        "comp" => comp(),
        "count" => count(),
        "cordic" => cordic(),
        "alu4" => alu4(),
        "C17" => c17(),
        "9symml" => sym9(),
        "z4ml" => z4ml(),
        "decod" => decod(),
        "parity" => parity(),
        _ => return None,
    };
    net.check().expect("generated benchmark must be valid");
    Some(net)
}

/// XOR with optional expansion into the 4-NAND netlist (C1355 is C499 with
/// XORs expanded; the function is identical, the netlist finer).
fn xor2(net: &mut Network, a: Signal, b: Signal, nand_expanded: bool) -> Signal {
    if nand_expanded {
        let nab = net.add_gate(GateOp::Nand, &[a, b]);
        let t1 = net.add_gate(GateOp::Nand, &[a, nab]);
        let t2 = net.add_gate(GateOp::Nand, &[b, nab]);
        net.add_gate(GateOp::Nand, &[t1, t2])
    } else {
        net.add_gate(GateOp::Xor, &[a, b])
    }
}

fn xor_tree(net: &mut Network, bits: &[Signal], nand_expanded: bool) -> Signal {
    assert!(!bits.is_empty());
    let mut layer: Vec<Signal> = bits.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                xor2(net, pair[0], pair[1], nand_expanded)
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Distinct non-zero 8-bit codewords for the 32 data positions of the
/// SEC-decoder stand-ins.
fn codeword(i: usize) -> u8 {
    ((i & 0x1F) as u8) | ((((i % 7) + 1) as u8) << 5)
}

/// C499/C1355 stand-in: 32-bit single-error-correcting decoder.
/// Inputs: 32 data, 8 checks, 1 enable; outputs: 32 corrected bits.
fn c499_like(name: &str, nand_expanded: bool) -> Network {
    let mut net = Network::new(name);
    let d: Vec<Signal> = (0..32).map(|i| net.add_input(&format!("d{i}"))).collect();
    let p: Vec<Signal> = (0..8).map(|i| net.add_input(&format!("p{i}"))).collect();
    let en = net.add_input("en");
    // Syndrome bits: parity of the data positions whose codeword has bit j.
    let syndrome: Vec<Signal> = (0..8)
        .map(|j| {
            let mut taps: Vec<Signal> = vec![p[j]];
            for (i, &di) in d.iter().enumerate() {
                if (codeword(i) >> j) & 1 == 1 {
                    taps.push(di);
                }
            }
            xor_tree(&mut net, &taps, nand_expanded)
        })
        .collect();
    let nsyndrome: Vec<Signal> = syndrome
        .iter()
        .map(|&s| net.add_gate(GateOp::Not, &[s]))
        .collect();
    // Correct data bit i when the syndrome equals its codeword.
    #[allow(clippy::needless_range_loop)]
    for i in 0..32 {
        let cw = codeword(i);
        let mut lits: Vec<Signal> = (0..8)
            .map(|j| {
                if (cw >> j) & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        lits.push(en);
        let hit = net.add_gate(GateOp::And, &lits);
        let corrected = xor2(&mut net, d[i], hit, nand_expanded);
        net.set_output(&format!("o{i}"), corrected);
    }
    net
}

/// C1908 stand-in: 16-bit SEC/DED-style decoder.
/// Inputs: 16 data, 8 checks, 9 controls; outputs: 16 corrected + 8
/// syndromes + error flag.
fn c1908() -> Network {
    let mut net = Network::new("C1908");
    let d: Vec<Signal> = (0..16).map(|i| net.add_input(&format!("d{i}"))).collect();
    let p: Vec<Signal> = (0..8).map(|i| net.add_input(&format!("p{i}"))).collect();
    let ctl: Vec<Signal> = (0..9).map(|i| net.add_input(&format!("c{i}"))).collect();
    let code = |i: usize| -> u8 { ((i & 0xF) as u8) | ((((i % 5) + 1) as u8) << 4) };
    let syndrome: Vec<Signal> = (0..8)
        .map(|j| {
            let mut taps: Vec<Signal> = vec![p[j], ctl[j]];
            for (i, &di) in d.iter().enumerate() {
                if (code(i) >> j) & 1 == 1 {
                    taps.push(di);
                }
            }
            xor_tree(&mut net, &taps, false)
        })
        .collect();
    let nsyndrome: Vec<Signal> = syndrome
        .iter()
        .map(|&s| net.add_gate(GateOp::Not, &[s]))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for i in 0..16 {
        let cw = code(i);
        let mut lits: Vec<Signal> = (0..8)
            .map(|j| {
                if (cw >> j) & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        lits.push(ctl[8]);
        let hit = net.add_gate(GateOp::And, &lits);
        let corrected = net.add_gate(GateOp::Xor, &[d[i], hit]);
        net.set_output(&format!("o{i}"), corrected);
    }
    for (j, &s) in syndrome.iter().enumerate() {
        net.set_output(&format!("s{j}"), s);
    }
    let err = net.add_gate(GateOp::Or, &syndrome);
    net.set_output("err", err);
    net
}

/// my_adder: 16 + 16 + cin ripple adder (exact function class).
fn my_adder() -> Network {
    let mut net = Network::new("my_adder");
    // Bit-sliced MSB-first declaration order (a15, b15, …, a0, b0, cin) as
    // in the original benchmark file — the initial order for the packages.
    let mut a: Vec<Option<Signal>> = vec![None; 16];
    let mut b: Vec<Option<Signal>> = vec![None; 16];
    for i in (0..16).rev() {
        a[i] = Some(net.add_input(&format!("a{i}")));
        b[i] = Some(net.add_input(&format!("b{i}")));
    }
    let a: Vec<Signal> = a.into_iter().map(Option::unwrap).collect();
    let b: Vec<Signal> = b.into_iter().map(Option::unwrap).collect();
    let cin = net.add_input("cin");
    let (sum, cout) = arith::ripple_add(&mut net, &a, &b, Some(cin));
    for (i, s) in sum.iter().enumerate() {
        net.set_output(&format!("s{i}"), *s);
    }
    net.set_output("cout", cout);
    net
}

/// comp: 16-bit magnitude comparator with <, =, > outputs.
fn comp() -> Network {
    let mut net = Network::new("comp");
    let mut ao: Vec<Option<Signal>> = vec![None; 16];
    let mut bo: Vec<Option<Signal>> = vec![None; 16];
    for i in (0..16).rev() {
        ao[i] = Some(net.add_input(&format!("a{i}")));
        bo[i] = Some(net.add_input(&format!("b{i}")));
    }
    let a: Vec<Signal> = ao.into_iter().map(Option::unwrap).collect();
    let b: Vec<Signal> = bo.into_iter().map(Option::unwrap).collect();
    let eq = arith::equality(&mut net, &a, &b);
    let gt = arith::greater_than(&mut net, &a, &b);
    let ge = net.add_gate(GateOp::Or, &[gt, eq]);
    let lt = net.add_gate(GateOp::Not, &[ge]);
    net.set_output("lt", lt);
    net.set_output("eq", eq);
    net.set_output("gt", gt);
    net
}

/// count: 16-bit conditional counter stage — each slice propagates a
/// carry while the data bit matches its enable and toggles on carry
/// (comparator-flavoured chain logic, the character of the original
/// counter benchmark). Inputs: 3 controls + 16×(data, enable) interleaved;
/// outputs: 16.
fn count() -> Network {
    let mut net = Network::new("count");
    let ctl: Vec<Signal> = (0..3).map(|i| net.add_input(&format!("c{i}"))).collect();
    let mut x: Vec<Signal> = Vec::new();
    let mut en: Vec<Signal> = Vec::new();
    for i in 0..16 {
        x.push(net.add_input(&format!("x{i}")));
        en.push(net.add_input(&format!("e{i}")));
    }
    let boost = net.add_gate(GateOp::And, &[ctl[1], ctl[2]]);
    let mut carry = net.add_gate(GateOp::Or, &[ctl[0], boost]);
    for i in 0..16 {
        let out = net.add_gate(GateOp::Xor, &[x[i], carry]);
        net.set_output(&format!("o{i}"), out);
        let match_ = net.add_gate(GateOp::Xnor, &[x[i], en[i]]);
        carry = net.add_gate(GateOp::And, &[carry, match_]);
    }
    net
}

/// cordic stand-in: rotation-quadrant decision logic — two outputs derived
/// from angle comparisons (the original MCNC `cordic` has tiny decision
/// diagrams; an iterative datapath would not, so the stand-in keeps the
/// paper's comparator-flavoured scale). Inputs: 2×10-bit angle words,
/// interleaved, + 3 mode bits; outputs: 2.
fn cordic() -> Network {
    let mut net = Network::new("cordic");
    let mode: Vec<Signal> = (0..3).map(|i| net.add_input(&format!("m{i}"))).collect();
    let mut x: Vec<Option<Signal>> = vec![None; 10];
    let mut y: Vec<Option<Signal>> = vec![None; 10];
    for i in (0..10).rev() {
        x[i] = Some(net.add_input(&format!("x{i}")));
        y[i] = Some(net.add_input(&format!("y{i}")));
    }
    let x: Vec<Signal> = x.into_iter().map(Option::unwrap).collect();
    let y: Vec<Signal> = y.into_iter().map(Option::unwrap).collect();
    let gt = arith::greater_than(&mut net, &x, &y);
    let eq = arith::equality(&mut net, &x, &y);
    // Quadrant selection mixes the comparison with rotation mode bits.
    let sgn = net.add_gate(GateOp::Xor, &[x[9], y[9]]);
    let rot = net.add_gate(GateOp::Xor, &[mode[0], mode[1]]);
    let q0 = net.add_gate(GateOp::Xor, &[gt, sgn]);
    let o0 = net.add_gate(GateOp::Mux, &[mode[2], q0, rot]);
    let ge = net.add_gate(GateOp::Or, &[gt, eq]);
    let o1 = net.add_gate(GateOp::Xor, &[ge, rot]);
    net.set_output("sx", o0);
    net.set_output("sy", o1);
    net
}

/// alu4: a 74181-style 4-bit ALU. Logic mode applies the 4-bit select
/// word as a per-bit LUT on (a, b); arithmetic mode computes
/// `A + LUT_S(A,B) + Cn`. Outputs: F[4], carry, A=B, group P, group G.
fn alu4() -> Network {
    let mut net = Network::new("alu4");
    let a: Vec<Signal> = (0..4).map(|i| net.add_input(&format!("a{i}"))).collect();
    let b: Vec<Signal> = (0..4).map(|i| net.add_input(&format!("b{i}"))).collect();
    let s: Vec<Signal> = (0..4).map(|i| net.add_input(&format!("s{i}"))).collect();
    let m = net.add_input("m");
    let cn = net.add_input("cn");
    // Per-bit LUT: t_i = Σ_j s_j · minterm_j(a_i, b_i).
    let lut: Vec<Signal> = (0..4)
        .map(|i| {
            let na = net.add_gate(GateOp::Not, &[a[i]]);
            let nb = net.add_gate(GateOp::Not, &[b[i]]);
            let m0 = net.add_gate(GateOp::And, &[s[0], na, nb]);
            let m1 = net.add_gate(GateOp::And, &[s[1], na, b[i]]);
            let m2 = net.add_gate(GateOp::And, &[s[2], a[i], nb]);
            let m3 = net.add_gate(GateOp::And, &[s[3], a[i], b[i]]);
            let t01 = net.add_gate(GateOp::Or, &[m0, m1]);
            let t23 = net.add_gate(GateOp::Or, &[m2, m3]);
            net.add_gate(GateOp::Or, &[t01, t23])
        })
        .collect();
    // Arithmetic: A + LUT + Cn.
    let (sum, cout) = arith::ripple_add(&mut net, &a, &lut, Some(cn));
    // F = m ? LUT : sum.
    let f: Vec<Signal> = (0..4)
        .map(|i| net.add_gate(GateOp::Mux, &[m, lut[i], sum[i]]))
        .collect();
    for (i, &fi) in f.iter().enumerate() {
        net.set_output(&format!("f{i}"), fi);
    }
    net.set_output("cout", cout);
    let aeqb = net.add_gate(GateOp::And, &f);
    net.set_output("aeqb", aeqb);
    // Group propagate / generate over (a, b).
    let props: Vec<Signal> = (0..4)
        .map(|i| net.add_gate(GateOp::Or, &[a[i], b[i]]))
        .collect();
    let gens: Vec<Signal> = (0..4)
        .map(|i| net.add_gate(GateOp::And, &[a[i], b[i]]))
        .collect();
    let p = net.add_gate(GateOp::And, &props);
    let g = net.add_gate(GateOp::Or, &gens);
    net.set_output("p", p);
    net.set_output("g", g);
    net
}

/// The actual 6-NAND C17 netlist (public domain, ISCAS-85).
fn c17() -> Network {
    let mut net = Network::new("C17");
    let i1 = net.add_input("G1");
    let i2 = net.add_input("G2");
    let i3 = net.add_input("G3");
    let i6 = net.add_input("G6");
    let i7 = net.add_input("G7");
    let g10 = net.add_gate(GateOp::Nand, &[i1, i3]);
    let g11 = net.add_gate(GateOp::Nand, &[i3, i6]);
    let g16 = net.add_gate(GateOp::Nand, &[i2, g11]);
    let g19 = net.add_gate(GateOp::Nand, &[g11, i7]);
    let g22 = net.add_gate(GateOp::Nand, &[g10, g16]);
    let g23 = net.add_gate(GateOp::Nand, &[g16, g19]);
    net.set_output("G22", g22);
    net.set_output("G23", g23);
    net
}

/// 9sym: output 1 iff the input weight is in {3, 4, 5, 6} (exact).
fn sym9() -> Network {
    let mut net = Network::new("9symml");
    let bits: Vec<Signal> = (0..9).map(|i| net.add_input(&format!("x{i}"))).collect();
    let cnt = arith::popcount(&mut net, &bits);
    // cnt is 4 bits (0..=9): weight ≥ 3 and ≤ 6.
    // ≥3: cnt[1]&cnt[0] | cnt[2] | cnt[3] ; ≤6: ¬(cnt[3] | cnt[2]&cnt[1]).
    let ge3a = net.add_gate(GateOp::And, &[cnt[1], cnt[0]]);
    let ge3b = net.add_gate(GateOp::Or, &[cnt[2], cnt[3]]);
    let ge3 = net.add_gate(GateOp::Or, &[ge3a, ge3b]);
    let is7 = net.add_gate(GateOp::And, &[cnt[2], cnt[1], cnt[0]]);
    let gt6 = net.add_gate(GateOp::Or, &[cnt[3], is7]);
    let le6 = net.add_gate(GateOp::Not, &[gt6]);
    let out = net.add_gate(GateOp::And, &[ge3, le6]);
    net.set_output("y", out);
    net
}

/// z4ml: 3 + 3 + cin adder with 4 sum outputs (exact class).
fn z4ml() -> Network {
    let mut net = Network::new("z4ml");
    let a: Vec<Signal> = (0..3).map(|i| net.add_input(&format!("a{i}"))).collect();
    let b: Vec<Signal> = (0..3).map(|i| net.add_input(&format!("b{i}"))).collect();
    let cin = net.add_input("cin");
    let (sum, cout) = arith::ripple_add(&mut net, &a, &b, Some(cin));
    for (i, s) in sum.iter().enumerate() {
        net.set_output(&format!("s{i}"), *s);
    }
    net.set_output("s3", cout);
    net
}

/// decod: 4-to-16 one-hot decoder with enable.
fn decod() -> Network {
    let mut net = Network::new("decod");
    let sel: Vec<Signal> = (0..4).map(|i| net.add_input(&format!("s{i}"))).collect();
    let en = net.add_input("en");
    let outs = arith::decoder(&mut net, &sel, en);
    for (i, o) in outs.iter().enumerate() {
        net.set_output(&format!("o{i}"), *o);
    }
    net
}

/// parity: 16-input odd parity (exact).
fn parity() -> Network {
    let mut net = Network::new("parity");
    let bits: Vec<Signal> = (0..16).map(|i| net.add_input(&format!("x{i}"))).collect();
    let out = xor_tree(&mut net, &bits, false);
    net.set_output("y", out);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bench_matches_paper_io_counts() {
        for b in TABLE1 {
            let net = generate(b.name).unwrap_or_else(|| panic!("missing {}", b.name));
            assert_eq!(net.num_inputs(), b.inputs, "{} inputs", b.name);
            assert_eq!(net.num_outputs(), b.outputs, "{} outputs", b.name);
            net.check().unwrap();
        }
        assert!(generate("nonexistent").is_none());
    }

    #[test]
    fn c1355_and_c499_are_equivalent() {
        let a = generate("C499").unwrap();
        let b = generate("C1355").unwrap();
        assert_eq!(
            logicnet::sim::random_equivalence(&a, &b, 8, 1234),
            logicnet::sim::Equivalence::Indistinguishable,
            "C1355 is the NAND expansion of C499"
        );
        // And C1355 must be a strictly finer netlist.
        assert!(b.num_gates() > a.num_gates());
    }

    #[test]
    fn c499_corrects_single_errors() {
        let net = generate("C499").unwrap();
        // With en=0 data passes through when checks equal the data parity…
        // simpler: en=0 → hit=0 → outputs = data.
        let mut v = vec![false; 41];
        v[3] = true;
        v[17] = true;
        let out = net.simulate(&v);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, v[i], "pass-through with en=0");
        }
    }

    #[test]
    fn c17_truth_spot_checks() {
        let net = generate("C17").unwrap();
        // All-zero input: g11 = 1, g16 = nand(0,1) = 1, g10 = 1,
        // g22 = nand(1,1) = 0; g19 = nand(1,0) = 1, g23 = nand(1,1) = 0.
        assert_eq!(net.simulate(&[false; 5]), vec![false, false]);
        // All-one input: g10 = 0, g11 = 0, g16 = 1, g19 = 1, g22 = 1,
        // g23 = 0.
        assert_eq!(net.simulate(&[true; 5]), vec![true, false]);
    }

    #[test]
    fn sym9_is_symmetric_and_correct() {
        let net = generate("9symml").unwrap();
        for m in 0..512u32 {
            let v: Vec<bool> = (0..9).map(|i| (m >> i) & 1 == 1).collect();
            let w = m.count_ones();
            assert_eq!(net.simulate(&v)[0], (3..=6).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn parity_is_odd_parity() {
        let net = generate("parity").unwrap();
        for m in [0u32, 1, 0b11, 0xFFFF, 0x8421] {
            let v: Vec<bool> = (0..16).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.simulate(&v)[0], m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn comp_flags_are_exclusive_and_exhaustive() {
        let net = generate("comp").unwrap();
        let rng_pairs = [(0u64, 0u64), (5, 9), (65535, 65534), (1234, 1234)];
        for (x, y) in rng_pairs {
            // Inputs are declared bit-sliced MSB-first: a15, b15, …
            let v: Vec<bool> = (0..16)
                .rev()
                .flat_map(|i| [(x >> i) & 1 == 1, (y >> i) & 1 == 1])
                .collect();
            let o = net.simulate(&v);
            assert_eq!(o[0], x < y, "lt");
            assert_eq!(o[1], x == y, "eq");
            assert_eq!(o[2], x > y, "gt");
            assert_eq!(o.iter().filter(|&&b| b).count(), 1, "one-hot");
        }
    }

    #[test]
    fn my_adder_and_z4ml_add() {
        let net = generate("my_adder").unwrap();
        let (x, y, c) = (40000u64, 30000u64, 1u64);
        let mut v: Vec<bool> = (0..16)
            .rev()
            .flat_map(|i| [(x >> i) & 1 == 1, (y >> i) & 1 == 1])
            .collect();
        v.push(c == 1);
        let out = net.simulate(&v);
        let got = out
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
        assert_eq!(got, x + y + c);

        let z = generate("z4ml").unwrap();
        for xa in 0..8u64 {
            for xb in 0..8u64 {
                for cin in 0..2u64 {
                    let mut v: Vec<bool> = (0..3).map(|i| (xa >> i) & 1 == 1).collect();
                    v.extend((0..3).map(|i| (xb >> i) & 1 == 1));
                    v.push(cin == 1);
                    let out = z.simulate(&v);
                    let got = out
                        .iter()
                        .enumerate()
                        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
                    assert_eq!(got, xa + xb + cin);
                }
            }
        }
    }

    #[test]
    fn decod_is_one_hot() {
        let net = generate("decod").unwrap();
        for m in 0..16u32 {
            let mut v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            v.push(true);
            let out = net.simulate(&v);
            assert_eq!(out.iter().filter(|&&b| b).count(), 1);
            assert!(out[m as usize]);
        }
    }

    #[test]
    fn codewords_are_distinct_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            let c = codeword(i);
            assert_ne!(c, 0);
            assert!(seen.insert(c), "codeword collision at {i}");
        }
    }
}

//! Property-based tests of the network substrate: random networks must
//! survive both file-format round trips and agree across every algebra
//! backend.

use bbdd::prelude::*;
use logicnet::build::build_network;
use logicnet::sim::{exhaustive_equivalence, simulate_words, Equivalence};
use logicnet::{blif, verilog, GateOp, Network, Signal};
use proptest::prelude::*;
use robdd::prelude::*;

/// Construction plan for a random network: a list of (op, input picks).
#[derive(Debug, Clone)]
struct Plan {
    n_inputs: usize,
    gates: Vec<(u8, [u8; 3])>,
    outputs: Vec<u8>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (2usize..6, 1usize..24).prop_flat_map(|(n_inputs, n_gates)| {
        (
            proptest::collection::vec((0u8..12, any::<[u8; 3]>()), n_gates),
            proptest::collection::vec(any::<u8>(), 1..6),
        )
            .prop_map(move |(gates, outputs)| Plan {
                n_inputs,
                gates,
                outputs,
            })
    })
}

fn realize(plan: &Plan) -> Network {
    let mut net = Network::new("random");
    let mut sigs: Vec<Signal> = (0..plan.n_inputs)
        .map(|i| net.add_input(&format!("i{i}")))
        .collect();
    for (opcode, picks) in &plan.gates {
        let op = match opcode % 12 {
            0 => GateOp::And,
            1 => GateOp::Or,
            2 => GateOp::Nand,
            3 => GateOp::Nor,
            4 => GateOp::Xor,
            5 => GateOp::Xnor,
            6 => GateOp::Not,
            7 => GateOp::Buf,
            8 => GateOp::Maj,
            9 => GateOp::Mux,
            10 => GateOp::Const0,
            _ => GateOp::Const1,
        };
        let pick = |k: u8| sigs[k as usize % sigs.len()];
        let inputs: Vec<Signal> = match op {
            GateOp::Const0 | GateOp::Const1 => vec![],
            GateOp::Not | GateOp::Buf => vec![pick(picks[0])],
            GateOp::Maj | GateOp::Mux => {
                vec![pick(picks[0]), pick(picks[1]), pick(picks[2])]
            }
            _ => vec![pick(picks[0]), pick(picks[1])],
        };
        let out = net.add_gate(op, &inputs);
        sigs.push(out);
    }
    for (k, pick) in plan.outputs.iter().enumerate() {
        net.set_output(&format!("o{k}"), sigs[*pick as usize % sigs.len()]);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verilog_roundtrip_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        net.check().unwrap();
        let text = verilog::write_verilog(&net);
        let parsed = verilog::parse_verilog(&text)
            .unwrap_or_else(|e| panic!("failed to re-parse emitted Verilog: {e}\n{text}"));
        prop_assert_eq!(exhaustive_equivalence(&net, &parsed), Equivalence::Indistinguishable);
    }

    #[test]
    fn blif_roundtrip_preserves_function(plan in arb_plan()) {
        let net = realize(&plan);
        let text = blif::write_blif(&net);
        let parsed = blif::parse_blif(&text)
            .unwrap_or_else(|e| panic!("failed to re-parse emitted BLIF: {e}\n{text}"));
        prop_assert_eq!(exhaustive_equivalence(&net, &parsed), Equivalence::Indistinguishable);
    }

    #[test]
    fn algebra_backends_agree(plan in arb_plan()) {
        let net = realize(&plan);
        let n = net.num_inputs();
        // Word simulation with exhaustive lanes (n ≤ 5 ⟹ ≤ 32 lanes).
        let input_words: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for lane in 0..(1u64 << n) {
                    if (lane >> i) & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                w
            })
            .collect();
        let word_out = simulate_words(&net, &input_words);
        let bb = BbddManager::with_vars(n);
        let bb_out = build_network(&bb, &net);
        let bd = RobddManager::with_vars(n);
        let bd_out = build_network(&bd, &net);
        for m in 0..(1u32 << n) {
            let v: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let sim = net.simulate(&v);
            for (o, expect) in sim.iter().enumerate() {
                prop_assert_eq!((word_out[o] >> m) & 1 == 1, *expect);
                prop_assert_eq!(bb_out[o].eval(&v), *expect);
                prop_assert_eq!(bd_out[o].eval(&v), *expect);
            }
        }
    }
}

//! # logicnet — combinational logic networks for the BBDD reproduction
//!
//! The DATE 2014 BBDD package consumes "a Verilog description of a
//! combinational logic network, flattened onto primitive Boolean operations
//! (XOR, AND, OR, INV, BUF)", while the CUDD baseline consumes BLIF
//! (§IV-B). This crate provides the corresponding substrate:
//!
//! * a gate-level **network IR** ([`Network`], [`Gate`], [`GateOp`]) with
//!   structural validation and topological evaluation;
//! * a **BLIF** reader/writer ([`blif`]);
//! * a flattened **structural-Verilog** reader/writer ([`verilog`]);
//! * **bit-parallel simulation** (64 vectors per word) and randomized
//!   equivalence checking ([`sim`]);
//! * a **combinational equivalence checker** ([`cec`]) proving two
//!   networks equal through XOR miters + existential quantification on
//!   either decision-diagram backend;
//! * generic **decision-diagram builders**: the [`build::BoolAlgebra`]
//!   trait is implemented for both [`bbdd::Bbdd`] and [`robdd::Robdd`], so
//!   one traversal builds either diagram (plus a truth-table algebra used
//!   for cross-checks).
//!
//! ```
//! use logicnet::{Network, GateOp};
//! use logicnet::build::build_network;
//!
//! let mut net = Network::new("toy");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(GateOp::Xor, &[a, b]);
//! net.set_output("y", g);
//! net.check().unwrap();
//!
//! let mut mgr = bbdd::Bbdd::new(net.num_inputs());
//! let outs = build_network(&mut mgr, &net); // Vec<bbdd::BbddFn> — owned, GC-safe
//! assert!(mgr.eval(outs[0].edge(), &[true, false]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
pub mod build;
pub mod cec;
mod ir;
pub mod sim;
pub mod verilog;

pub use ir::{Gate, GateOp, Network, NetworkError, Signal};

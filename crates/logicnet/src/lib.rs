//! # logicnet — combinational logic networks for the BBDD reproduction
//!
//! The DATE 2014 BBDD package consumes "a Verilog description of a
//! combinational logic network, flattened onto primitive Boolean operations
//! (XOR, AND, OR, INV, BUF)", while the CUDD baseline consumes BLIF
//! (§IV-B). This crate provides the corresponding substrate:
//!
//! * a gate-level **network IR** ([`Network`], [`Gate`], [`GateOp`]) with
//!   structural validation and topological evaluation;
//! * a **BLIF** reader/writer ([`blif`]);
//! * a flattened **structural-Verilog** reader/writer ([`verilog`]);
//! * **bit-parallel simulation** (64 vectors per word) and randomized
//!   equivalence checking ([`sim`]);
//! * a **combinational equivalence checker** ([`cec`]) proving two
//!   networks equal through XOR miters + existential quantification on
//!   any decision-diagram backend;
//! * **static variable-ordering heuristics** ([`order`]): FORCE and
//!   fan-in DFS computed from network structure before any node is built;
//! * one generic **decision-diagram builder** ([`build::build_network`]),
//!   written against the [`ddcore::api`] trait family and therefore
//!   driving all four managers in the workspace — exactly one traversal,
//!   backend chosen by the caller;
//! * a **library publisher** ([`publish::publish_networks`]) building one
//!   or more networks over a shared variable space and freezing them into
//!   an immutable `ddcore::session::SharedBase` snapshot, the entry point
//!   of the MVCC serving layer.
//!
//! ```
//! use logicnet::{Network, GateOp};
//! use logicnet::build::build_network;
//! use bbdd::prelude::*;
//!
//! let mut net = Network::new("toy");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(GateOp::Xor, &[a, b]);
//! net.set_output("y", g);
//! net.check().unwrap();
//!
//! let mgr = BbddManager::with_vars(net.num_inputs());
//! let outs = build_network(&mgr, &net); // Vec<BbddFn> — owned, GC-safe
//! assert!(outs[0].eval(&[true, false]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
pub mod build;
pub mod cec;
mod ir;
pub mod order;
pub mod publish;
pub mod sim;
pub mod verilog;

pub use ir::{Gate, GateOp, Network, NetworkError, Signal};
pub use order::{apply_static_order, fanin_order, force_order, static_order, StaticOrder};

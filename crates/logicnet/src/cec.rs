//! Combinational equivalence checking (CEC) over decision diagrams.
//!
//! The driver builds *two* networks into **one** manager (shared variable
//! space, inputs aligned by name), forms the per-output miter
//! `m_k = f_k ⊕ g_k`, and proves each output by existentially quantifying
//! every input: `∃X. m_k` is the constant **false** exactly when the
//! outputs agree on all assignments. On a refuted output the miter itself
//! yields a concrete distinguishing assignment
//! ([`BooleanFunction::any_sat`]) and the number of distinguishing
//! assignments.
//!
//! Canonicity alone would let the check be a pointer comparison
//! (`f_k == g_k`); routing the proof through XOR + quantification keeps
//! the driver generic over backends whose representation is *not*
//! canonical and exercises the quantification path end-to-end — the same
//! structure used by SAT-based CEC, where the miter goes to a solver
//! instead.
//!
//! ```
//! use logicnet::{Network, GateOp};
//! use logicnet::cec::{check_equivalence, CecVerdict};
//!
//! // Two XOR implementations: native, and AND/OR decomposed.
//! let mut a = Network::new("xor_native");
//! let (x, y) = (a.add_input("x"), a.add_input("y"));
//! let g = a.add_gate(GateOp::Xor, &[x, y]);
//! a.set_output("f", g);
//!
//! let mut b = Network::new("xor_decomposed");
//! let (x, y) = (b.add_input("x"), b.add_input("y"));
//! let nx = b.add_gate(GateOp::Not, &[x]);
//! let ny = b.add_gate(GateOp::Not, &[y]);
//! let t1 = b.add_gate(GateOp::And, &[x, ny]);
//! let t2 = b.add_gate(GateOp::And, &[nx, y]);
//! let g = b.add_gate(GateOp::Or, &[t1, t2]);
//! b.set_output("f", g);
//!
//! let mgr = bbdd::BbddManager::with_vars(2);
//! assert_eq!(check_equivalence(&mgr, &a, &b), CecVerdict::Equivalent);
//! ```

use crate::build::build_network_with_inputs;
use crate::ir::Network;
use ddcore::api::{BooleanFunction, FunctionManager};
use std::collections::HashMap;

/// Number of satisfying assignments of `f`, or `None` when the manager's
/// variable count makes the exact count unrepresentable in 128 bits.
fn model_count<M: FunctionManager>(mgr: &M, f: &M::Function) -> Option<u128> {
    (mgr.num_vars() <= 127).then(|| f.sat_count())
}

/// A concrete refutation of one output pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Index of the differing output (in the first network's port order).
    pub output: usize,
    /// Name of the differing output port.
    pub output_name: String,
    /// A distinguishing input assignment, in the **first** network's input
    /// order.
    pub inputs: Vec<bool>,
    /// Number of distinguishing assignments (`None` when uncountable in
    /// 128 bits).
    pub distinguishing: Option<u128>,
}

/// Outcome of a combinational equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecVerdict {
    /// Every matched output pair agrees on every input assignment.
    Equivalent,
    /// At least one output pair differs; the first refuted pair's evidence.
    Inequivalent(Counterexample),
}

impl CecVerdict {
    /// `true` for [`CecVerdict::Equivalent`].
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CecVerdict::Equivalent)
    }
}

/// How the two interfaces were matched (by name or positionally) — mostly
/// diagnostic, returned by [`match_interfaces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortMatching {
    /// Both port name sets are identical: matched name-to-name.
    ByName,
    /// Name sets differ: matched by position.
    Positional,
}

/// Compute the input permutation and output pairing between two networks.
///
/// Returns `(input_map, output_map, how)` where `input_map[i]` is the
/// index of `a`'s input that `b`'s input `i` corresponds to, and
/// `output_map[k]` is the index of `b`'s output matching `a`'s output `k`.
///
/// # Panics
/// Panics if the interfaces have different arities, or if name sets match
/// but contain duplicates.
#[must_use]
pub fn match_interfaces(a: &Network, b: &Network) -> (Vec<usize>, Vec<usize>, PortMatching) {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let a_in: Vec<&str> = a.inputs().iter().map(|&s| a.signal_name(s)).collect();
    let b_in: Vec<&str> = b.inputs().iter().map(|&s| b.signal_name(s)).collect();
    let a_out: Vec<&str> = a.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let b_out: Vec<&str> = b.outputs().iter().map(|(n, _)| n.as_str()).collect();

    let same_sets = |x: &[&str], y: &[&str]| {
        let mut xs = x.to_vec();
        let mut ys = y.to_vec();
        xs.sort_unstable();
        ys.sort_unstable();
        xs == ys
    };
    if same_sets(&a_in, &b_in) && same_sets(&a_out, &b_out) {
        let index_of = |names: &[&str]| -> HashMap<String, usize> {
            let mut m = HashMap::new();
            for (i, n) in names.iter().enumerate() {
                assert!(
                    m.insert((*n).to_string(), i).is_none(),
                    "duplicate port name {n}"
                );
            }
            m
        };
        let a_in_idx = index_of(&a_in);
        let b_out_idx = index_of(&b_out);
        let input_map: Vec<usize> = b_in.iter().map(|n| a_in_idx[*n]).collect();
        let output_map: Vec<usize> = a_out.iter().map(|n| b_out_idx[*n]).collect();
        (input_map, output_map, PortMatching::ByName)
    } else {
        let n = a.num_inputs();
        let m = a.num_outputs();
        ((0..n).collect(), (0..m).collect(), PortMatching::Positional)
    }
}

/// Check two combinational networks for equivalence in `mgr`.
///
/// Inputs and outputs are matched by name when both networks carry the
/// same port-name sets, positionally otherwise. The manager must have at
/// least `a.num_inputs()` variables; variable `i` is bound to `a`'s input
/// `i` (so counterexamples read in `a`'s input order).
///
/// # Panics
/// Panics if the interfaces have different arities or the manager has too
/// few variables.
pub fn check_equivalence<M: FunctionManager>(mgr: &M, a: &Network, b: &Network) -> CecVerdict {
    let n = a.num_inputs();
    let (input_map, output_map, _) = match_interfaces(a, b);
    let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
    let a_outs = build_network_with_inputs(mgr, a, &vars);
    let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
    // No protection list: `a_outs` are owned handles, so the first
    // network's outputs are structurally live across every GC opportunity
    // the second build triggers. (The caller-maintained liveness list this
    // replaces is exactly where a ≥1024-gate network once compared
    // unequal to itself.)
    let b_outs = build_network_with_inputs(mgr, b, &b_inputs);

    let all_inputs: Vec<usize> = (0..n).collect();
    for (k, (name, _)) in a.outputs().iter().enumerate() {
        let miter = a_outs[k].xor(&b_outs[output_map[k]]);
        let quantified = miter.exists(&all_inputs);
        if !quantified.is_false() {
            let inputs = miter
                .any_sat()
                .map(|m| m[..n].to_vec())
                .expect("a non-false miter has a model");
            return CecVerdict::Inequivalent(Counterexample {
                output: k,
                output_name: name.clone(),
                inputs,
                distinguishing: model_count(mgr, &miter),
            });
        }
    }
    CecVerdict::Equivalent
}

/// Execution statistics of one [`check_equivalence_parallel`] run.
#[derive(Debug, Clone, Default)]
pub struct CecParStats {
    /// Output pairs proved.
    pub outputs: usize,
    /// Chunks (pool tasks) the outputs were partitioned into.
    pub chunks: usize,
    /// Workers that participated (including the submitting thread).
    pub workers: usize,
    /// Chunks executed per worker slot (index 0 = the submitting thread).
    pub chunks_by_worker: Vec<u64>,
}

/// [`check_equivalence`] with the per-output miter loop fanned out across
/// a fork-join pool.
///
/// Outputs are partitioned into about `2 × threads` chunks; each chunk is
/// proved in its **own** fresh manager (built by `make_mgr`), so chunks
/// never contend and the whole check is embarrassingly parallel. The
/// verdict is deterministic regardless of scheduling: every chunk records
/// its refutations, and the first refuted output *in the first network's
/// port order* wins — exactly the output [`check_equivalence`] would have
/// reported.
///
/// Each chunk rebuilds both networks; for CEC-sized netlists the build is
/// cheap next to the per-output miter quantifications the chunk then runs,
/// and per-chunk managers are what make the fan-out contention-free.
///
/// # Panics
/// Panics if the interfaces have different arities or a manager has too
/// few variables.
pub fn check_equivalence_parallel<M, F>(
    a: &Network,
    b: &Network,
    threads: usize,
    make_mgr: F,
) -> (CecVerdict, CecParStats)
where
    M: FunctionManager,
    F: Fn() -> M + Sync,
{
    let n = a.num_inputs();
    let n_out = a.num_outputs();
    if n_out == 0 {
        return (CecVerdict::Equivalent, CecParStats::default());
    }
    let (input_map, output_map, _) = match_interfaces(a, b);
    // Chunk c owns the contiguous output range [c*per, (c+1)*per). The
    // chunk count is recomputed from the rounded-up chunk size so no
    // vacuous chunk exists — every spawned chunk pays for two network
    // builds, so an empty one would be pure waste.
    let per = n_out.div_ceil((threads.max(1) * 2).min(n_out));
    let chunks = n_out.div_ceil(per);
    let refuted: Vec<std::sync::Mutex<Option<Counterexample>>> =
        (0..n_out).map(|_| std::sync::Mutex::new(None)).collect();
    let all_inputs: Vec<usize> = (0..n).collect();
    let fj = ddcore::par::fork_join(threads, chunks, |c| {
        let lo = c * per;
        let hi = ((c + 1) * per).min(n_out);
        let mgr = make_mgr();
        let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
        let a_outs = build_network_with_inputs(&mgr, a, &vars);
        let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
        let b_outs = build_network_with_inputs(&mgr, b, &b_inputs);
        for (k, (name, _)) in a.outputs().iter().enumerate().take(hi).skip(lo) {
            let miter = a_outs[k].xor(&b_outs[output_map[k]]);
            let quantified = miter.exists(&all_inputs);
            if !quantified.is_false() {
                let inputs = miter
                    .any_sat()
                    .map(|m| m[..n].to_vec())
                    .expect("a non-false miter has a model");
                *refuted[k].lock().expect("cec result lock") = Some(Counterexample {
                    output: k,
                    output_name: name.clone(),
                    inputs,
                    distinguishing: model_count(&mgr, &miter),
                });
            }
        }
    });
    let stats = CecParStats {
        outputs: n_out,
        chunks,
        workers: fj.workers,
        chunks_by_worker: fj.executed,
    };
    for slot in &refuted {
        if let Some(cex) = slot.lock().expect("cec result lock").take() {
            return (CecVerdict::Inequivalent(cex), stats);
        }
    }
    (CecVerdict::Equivalent, stats)
}

/// [`check_equivalence_parallel`] over fresh sequential BBDD managers
/// (one per chunk), returning only the verdict.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_parallel_bbdd(a: &Network, b: &Network, threads: usize) -> CecVerdict {
    let n = a.num_inputs().max(1);
    check_equivalence_parallel(a, b, threads, || bbdd::BbddManager::with_vars(n)).0
}

/// [`check_equivalence_parallel`] over fresh sequential ROBDD managers
/// (one per chunk), returning only the verdict.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_parallel_robdd(a: &Network, b: &Network, threads: usize) -> CecVerdict {
    let n = a.num_inputs().max(1);
    check_equivalence_parallel(a, b, threads, || robdd::RobddManager::with_vars(n)).0
}

/// [`check_equivalence`] in a fresh BBDD manager.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_bbdd(a: &Network, b: &Network) -> CecVerdict {
    let mgr = bbdd::BbddManager::with_vars(a.num_inputs().max(1));
    check_equivalence(&mgr, a, b)
}

/// [`check_equivalence`] in a fresh ROBDD manager.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_robdd(a: &Network, b: &Network) -> CecVerdict {
    let mgr = robdd::RobddManager::with_vars(a.num_inputs().max(1));
    check_equivalence(&mgr, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateOp;

    fn half_adder(name: &str, decomposed_xor: bool) -> Network {
        let mut net = Network::new(name);
        let a = net.add_input("a");
        let b = net.add_input("b");
        let s = if decomposed_xor {
            let na = net.add_gate(GateOp::Not, &[a]);
            let nb = net.add_gate(GateOp::Not, &[b]);
            let t1 = net.add_gate(GateOp::And, &[a, nb]);
            let t2 = net.add_gate(GateOp::And, &[na, b]);
            net.add_gate(GateOp::Or, &[t1, t2])
        } else {
            net.add_gate(GateOp::Xor, &[a, b])
        };
        let c = net.add_gate(GateOp::And, &[a, b]);
        net.set_output("s", s);
        net.set_output("c", c);
        net
    }

    #[test]
    fn equivalent_implementations_verify_on_both_backends() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        assert_eq!(check_equivalence_bbdd(&x, &y), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&x, &y), CecVerdict::Equivalent);
    }

    #[test]
    fn mutation_is_detected_with_counterexample() {
        let good = half_adder("good", false);
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]); // BUG: OR carry
        bad.set_output("s", s);
        bad.set_output("c", c);

        for verdict in [
            check_equivalence_bbdd(&good, &bad),
            check_equivalence_robdd(&good, &bad),
        ] {
            match verdict {
                CecVerdict::Inequivalent(cex) => {
                    assert_eq!(cex.output_name, "c");
                    // The carry differs exactly on a ≠ b: two assignments.
                    assert_eq!(cex.distinguishing, Some(2));
                    let [a_val, b_val] = cex.inputs[..] else {
                        panic!("two inputs expected")
                    };
                    assert_ne!(a_val, b_val, "counterexample must distinguish");
                }
                CecVerdict::Equivalent => panic!("mutation missed"),
            }
        }
    }

    #[test]
    fn inputs_matched_by_name_across_declaration_orders() {
        // Same function, inputs declared in opposite order: positional
        // matching would mistake x∧¬y for y∧¬x.
        let mut p = Network::new("p");
        let x = p.add_input("x");
        let y = p.add_input("y");
        let ny = p.add_gate(GateOp::Not, &[y]);
        let g = p.add_gate(GateOp::And, &[x, ny]);
        p.set_output("f", g);

        let mut q = Network::new("q");
        let y2 = q.add_input("y");
        let x2 = q.add_input("x");
        let ny2 = q.add_gate(GateOp::Not, &[y2]);
        let g2 = q.add_gate(GateOp::And, &[x2, ny2]);
        q.set_output("f", g2);

        assert_eq!(check_equivalence_bbdd(&p, &q), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&p, &q), CecVerdict::Equivalent);
        let (input_map, _, how) = match_interfaces(&p, &q);
        assert_eq!(how, PortMatching::ByName);
        assert_eq!(input_map, vec![1, 0]);
    }

    #[test]
    fn large_networks_survive_the_builders_gc_stride() {
        // Regression: with the old caller-maintained liveness lists,
        // building the second network GC'd against only its own live wires
        // once past the builder's GC stride (1024 gates), reclaiming the
        // first network's output nodes — a 2500-gate network then compared
        // unequal to itself. Handles make the first network's outputs
        // structurally live; this must stay green with no protection
        // plumbing anywhere in the driver.
        let mut big = Network::new("big");
        let a = big.add_input("a");
        let b = big.add_input("b");
        let mut acc = big.add_gate(GateOp::Xor, &[a, b]);
        for _ in 0..2500 {
            acc = big.add_gate(GateOp::Xor, &[acc, a]);
        }
        let m = big.add_gate(GateOp::Maj, &[a, b, acc]);
        big.set_output("f", m);
        assert_eq!(check_equivalence_bbdd(&big, &big), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&big, &big), CecVerdict::Equivalent);
    }

    #[test]
    fn parallel_cec_matches_sequential_for_all_thread_counts() {
        let good = half_adder("x", false);
        let alt = half_adder("y", true);
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]);
        bad.set_output("s", s);
        bad.set_output("c", c);

        let seq_pos = check_equivalence_bbdd(&good, &alt);
        let seq_neg = check_equivalence_bbdd(&good, &bad);
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                check_equivalence_parallel_bbdd(&good, &alt, threads),
                seq_pos,
                "threads {threads}"
            );
            assert_eq!(
                check_equivalence_parallel_robdd(&good, &alt, threads),
                CecVerdict::Equivalent
            );
            // The refuted output and its evidence must be the sequential
            // driver's, whatever worker found it first.
            assert_eq!(
                check_equivalence_parallel_bbdd(&good, &bad, threads),
                seq_neg,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_cec_reports_pool_stats() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        let (verdict, stats) =
            check_equivalence_parallel(&x, &y, 4, || bbdd::BbddManager::with_vars(x.num_inputs()));
        assert!(verdict.is_equivalent());
        assert_eq!(stats.outputs, 2);
        assert!(stats.chunks >= 1 && stats.chunks <= 2);
        assert_eq!(
            stats.chunks_by_worker.iter().sum::<u64>() as usize,
            stats.chunks
        );
    }

    #[test]
    fn parallel_managers_drive_the_generic_cec() {
        // ParBbdd / ParRobdd as the backend of the ordinary sequential
        // driver: every miter/quantification runs the fork-join pipeline
        // internally.
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        let mgr = bbdd::ParBbddManager::new(bbdd::ParBbdd::with_config(
            x.num_inputs(),
            bbdd::ParConfig {
                threads: 4,
                cutoff: 0,
                split_depth: Some(2),
                cache_ways: 1 << 10,
                shards: 8,
            },
        ));
        assert_eq!(check_equivalence(&mgr, &x, &y), CecVerdict::Equivalent);
        let mgr = robdd::ParRobddManager::new(robdd::ParRobdd::with_config(
            x.num_inputs(),
            robdd::ParConfig {
                threads: 4,
                cutoff: 0,
                split_depth: Some(2),
                cache_ways: 1 << 10,
                shards: 8,
            },
        ));
        assert_eq!(check_equivalence(&mgr, &x, &y), CecVerdict::Equivalent);
    }

    #[test]
    fn constant_outputs_are_handled() {
        let mut p = Network::new("p");
        let a = p.add_input("a");
        let na = p.add_gate(GateOp::Not, &[a]);
        let t = p.add_gate(GateOp::Or, &[a, na]);
        p.set_output("f", t);
        let mut q = Network::new("q");
        let _ = q.add_input("a");
        let one = q.add_gate(GateOp::Const1, &[]);
        q.set_output("f", one);
        assert_eq!(check_equivalence_bbdd(&p, &q), CecVerdict::Equivalent);
    }
}

//! Combinational equivalence checking (CEC) over decision diagrams.
//!
//! The driver builds *two* networks into **one** manager (shared variable
//! space, inputs aligned by name), forms the per-output miter
//! `m_k = f_k ⊕ g_k`, and proves each output by existentially quantifying
//! every input: `∃X. m_k` is the constant **false** exactly when the
//! outputs agree on all assignments. On a refuted output the miter itself
//! yields a concrete distinguishing assignment
//! ([`BooleanFunction::any_sat`]) and the number of distinguishing
//! assignments.
//!
//! Canonicity alone would let the check be a pointer comparison
//! (`f_k == g_k`); routing the proof through XOR + quantification keeps
//! the driver generic over backends whose representation is *not*
//! canonical and exercises the quantification path end-to-end — the same
//! structure used by SAT-based CEC, where the miter goes to a solver
//! instead.
//!
//! ```
//! use logicnet::{Network, GateOp};
//! use logicnet::cec::{check_equivalence, CecVerdict};
//!
//! // Two XOR implementations: native, and AND/OR decomposed.
//! let mut a = Network::new("xor_native");
//! let (x, y) = (a.add_input("x"), a.add_input("y"));
//! let g = a.add_gate(GateOp::Xor, &[x, y]);
//! a.set_output("f", g);
//!
//! let mut b = Network::new("xor_decomposed");
//! let (x, y) = (b.add_input("x"), b.add_input("y"));
//! let nx = b.add_gate(GateOp::Not, &[x]);
//! let ny = b.add_gate(GateOp::Not, &[y]);
//! let t1 = b.add_gate(GateOp::And, &[x, ny]);
//! let t2 = b.add_gate(GateOp::And, &[nx, y]);
//! let g = b.add_gate(GateOp::Or, &[t1, t2]);
//! b.set_output("f", g);
//!
//! let mgr = bbdd::BbddManager::with_vars(2);
//! assert_eq!(check_equivalence(&mgr, &a, &b), CecVerdict::Equivalent);
//! ```

use crate::build::build_network_with_inputs;
use crate::ir::Network;
use ddcore::api::{BooleanFunction, FunctionManager};
use ddcore::govern::{OpAbort, OpBudget};
use std::collections::HashMap;

/// Number of distinguishing assignments over the networks' `n_inputs`
/// input universe, or `None` when the count is unrepresentable in 128
/// bits. Routed through [`BooleanFunction::sat_count_over`] so the count
/// is normalized to the *interface* — a manager sized larger than the
/// input union no longer inflates the count by its spare variables.
fn model_count<M: FunctionManager>(f: &M::Function, n_inputs: usize) -> Option<u128> {
    f.sat_count_over(n_inputs)
}

/// A concrete refutation of one output pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Index of the differing output (in the first network's port order).
    pub output: usize,
    /// Name of the differing output port.
    pub output_name: String,
    /// A distinguishing input assignment, in the **first** network's input
    /// order.
    pub inputs: Vec<bool>,
    /// Number of distinguishing assignments (`None` when uncountable in
    /// 128 bits).
    pub distinguishing: Option<u128>,
}

/// Outcome of a combinational equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecVerdict {
    /// Every matched output pair agrees on every input assignment.
    Equivalent,
    /// At least one output pair differs; the first refuted pair's evidence.
    Inequivalent(Counterexample),
}

impl CecVerdict {
    /// `true` for [`CecVerdict::Equivalent`].
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CecVerdict::Equivalent)
    }
}

/// How the two interfaces were matched (by name or positionally) — mostly
/// diagnostic, returned by [`match_interfaces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortMatching {
    /// Both port name sets are identical: matched name-to-name.
    ByName,
    /// Name sets differ: matched by position.
    Positional,
}

/// Compute the input permutation and output pairing between two networks.
///
/// Returns `(input_map, output_map, how)` where `input_map[i]` is the
/// index of `a`'s input that `b`'s input `i` corresponds to, and
/// `output_map[k]` is the index of `b`'s output matching `a`'s output `k`.
///
/// # Panics
/// Panics if the interfaces have different arities, or if name sets match
/// but contain duplicates.
#[must_use]
pub fn match_interfaces(a: &Network, b: &Network) -> (Vec<usize>, Vec<usize>, PortMatching) {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let a_in: Vec<&str> = a.inputs().iter().map(|&s| a.signal_name(s)).collect();
    let b_in: Vec<&str> = b.inputs().iter().map(|&s| b.signal_name(s)).collect();
    let a_out: Vec<&str> = a.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let b_out: Vec<&str> = b.outputs().iter().map(|(n, _)| n.as_str()).collect();

    let same_sets = |x: &[&str], y: &[&str]| {
        let mut xs = x.to_vec();
        let mut ys = y.to_vec();
        xs.sort_unstable();
        ys.sort_unstable();
        xs == ys
    };
    if same_sets(&a_in, &b_in) && same_sets(&a_out, &b_out) {
        let index_of = |names: &[&str]| -> HashMap<String, usize> {
            let mut m = HashMap::new();
            for (i, n) in names.iter().enumerate() {
                assert!(
                    m.insert((*n).to_string(), i).is_none(),
                    "duplicate port name {n}"
                );
            }
            m
        };
        let a_in_idx = index_of(&a_in);
        let b_out_idx = index_of(&b_out);
        let input_map: Vec<usize> = b_in.iter().map(|n| a_in_idx[*n]).collect();
        let output_map: Vec<usize> = a_out.iter().map(|n| b_out_idx[*n]).collect();
        (input_map, output_map, PortMatching::ByName)
    } else {
        let n = a.num_inputs();
        let m = a.num_outputs();
        ((0..n).collect(), (0..m).collect(), PortMatching::Positional)
    }
}

/// Check two combinational networks for equivalence in `mgr`.
///
/// Inputs and outputs are matched by name when both networks carry the
/// same port-name sets, positionally otherwise. The manager must have at
/// least `a.num_inputs()` variables; variable `i` is bound to `a`'s input
/// `i` (so counterexamples read in `a`'s input order).
///
/// # Panics
/// Panics if the interfaces have different arities or the manager has too
/// few variables.
pub fn check_equivalence<M: FunctionManager>(mgr: &M, a: &Network, b: &Network) -> CecVerdict {
    let _cec = ddcore::obs::span(ddcore::obs::Op::Cec);
    let n = a.num_inputs();
    let (input_map, output_map, _) = match_interfaces(a, b);
    let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
    let a_outs = build_network_with_inputs(mgr, a, &vars);
    let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
    // No protection list: `a_outs` are owned handles, so the first
    // network's outputs are structurally live across every GC opportunity
    // the second build triggers. (The caller-maintained liveness list this
    // replaces is exactly where a ≥1024-gate network once compared
    // unequal to itself.)
    let b_outs = build_network_with_inputs(mgr, b, &b_inputs);

    let all_inputs: Vec<usize> = (0..n).collect();
    for (k, (name, _)) in a.outputs().iter().enumerate() {
        let mut out_span = ddcore::obs::span(ddcore::obs::Op::CecOutput);
        out_span.set_arg("output", k as u64);
        let miter = a_outs[k].xor(&b_outs[output_map[k]]);
        let quantified = miter.exists(&all_inputs);
        if !quantified.is_false() {
            let inputs = miter
                .any_sat()
                .map(|m| m[..n].to_vec())
                .expect("a non-false miter has a model");
            return CecVerdict::Inequivalent(Counterexample {
                output: k,
                output_name: name.clone(),
                inputs,
                distinguishing: model_count::<M>(&miter, n),
            });
        }
    }
    CecVerdict::Equivalent
}

/// A CEC run cut short by its [`OpBudget`]: the partial verdict.
///
/// `outputs_checked` counts the output pairs fully decided (proved equal
/// or refuted) before the abort, in the first network's port order for the
/// sequential driver. A refutation found before the abort is definitive —
/// one counterexample proves inequivalence no matter how many outputs went
/// unchecked — so [`try_check_equivalence_parallel`] reports it as a full
/// [`CecVerdict::Inequivalent`] rather than an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CecAborted {
    /// Why the budget stopped the run.
    pub reason: OpAbort,
    /// Output pairs fully decided before the abort.
    pub outputs_checked: usize,
}

impl std::fmt::Display for CecAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalence check aborted ({}) after {} output(s)",
            self.reason, self.outputs_checked
        )
    }
}

impl std::error::Error for CecAborted {}

/// [`check_equivalence`] under a resource budget: each per-output miter
/// and quantification runs through the fallible `try_*` operations, and
/// the first abort surfaces as [`CecAborted`] with the number of outputs
/// already decided — a partial verdict the caller can act on.
///
/// The two network *builds* are not governed (they are cheap next to the
/// per-output quantifications for CEC-sized netlists); the budget begins
/// metering at the first miter.
///
/// # Errors
/// Returns [`CecAborted`] when the budget's node ceiling, deadline or
/// cancellation token stops the run before every output is decided.
///
/// # Panics
/// Panics if the interfaces have different arities or the manager has too
/// few variables.
pub fn try_check_equivalence<M: FunctionManager>(
    mgr: &M,
    a: &Network,
    b: &Network,
    budget: &mut OpBudget,
) -> Result<CecVerdict, CecAborted> {
    let _cec = ddcore::obs::span(ddcore::obs::Op::Cec);
    let n = a.num_inputs();
    let (input_map, output_map, _) = match_interfaces(a, b);
    let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
    let a_outs = build_network_with_inputs(mgr, a, &vars);
    let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
    let b_outs = build_network_with_inputs(mgr, b, &b_inputs);

    let all_inputs: Vec<usize> = (0..n).collect();
    for (k, (name, _)) in a.outputs().iter().enumerate() {
        let mut out_span = ddcore::obs::span(ddcore::obs::Op::CecOutput);
        out_span.set_arg("output", k as u64);
        let step = a_outs[k]
            .try_xor(&b_outs[output_map[k]], budget)
            .and_then(|miter| {
                let q = miter.try_exists(&all_inputs, budget)?;
                Ok((miter, q))
            });
        let (miter, quantified) = step.map_err(|reason| CecAborted {
            reason,
            outputs_checked: k,
        })?;
        if !quantified.is_false() {
            let inputs = miter
                .any_sat()
                .map(|m| m[..n].to_vec())
                .expect("a non-false miter has a model");
            return Ok(CecVerdict::Inequivalent(Counterexample {
                output: k,
                output_name: name.clone(),
                inputs,
                distinguishing: model_count::<M>(&miter, n),
            }));
        }
    }
    Ok(CecVerdict::Equivalent)
}

/// Execution statistics of one [`check_equivalence_parallel`] run.
#[derive(Debug, Clone, Default)]
pub struct CecParStats {
    /// Output pairs proved.
    pub outputs: usize,
    /// Chunks (pool tasks) the outputs were partitioned into.
    pub chunks: usize,
    /// Workers that participated (including the submitting thread).
    pub workers: usize,
    /// Chunks executed per worker slot (index 0 = the submitting thread).
    pub chunks_by_worker: Vec<u64>,
}

/// [`check_equivalence`] with the per-output miter loop fanned out across
/// a fork-join pool.
///
/// Outputs are partitioned into about `2 × threads` chunks; each chunk is
/// proved in its **own** fresh manager (built by `make_mgr`), so chunks
/// never contend and the whole check is embarrassingly parallel. The
/// verdict is deterministic regardless of scheduling: every chunk records
/// its refutations, and the first refuted output *in the first network's
/// port order* wins — exactly the output [`check_equivalence`] would have
/// reported.
///
/// Each chunk rebuilds both networks; for CEC-sized netlists the build is
/// cheap next to the per-output miter quantifications the chunk then runs,
/// and per-chunk managers are what make the fan-out contention-free.
///
/// # Panics
/// Panics if the interfaces have different arities or a manager has too
/// few variables.
pub fn check_equivalence_parallel<M, F>(
    a: &Network,
    b: &Network,
    threads: usize,
    make_mgr: F,
) -> (CecVerdict, CecParStats)
where
    M: FunctionManager,
    F: Fn() -> M + Sync,
{
    let _cec = ddcore::obs::span(ddcore::obs::Op::Cec);
    let n = a.num_inputs();
    let n_out = a.num_outputs();
    if n_out == 0 {
        return (CecVerdict::Equivalent, CecParStats::default());
    }
    let (input_map, output_map, _) = match_interfaces(a, b);
    // Chunk c owns the contiguous output range [c*per, (c+1)*per). The
    // chunk count is recomputed from the rounded-up chunk size so no
    // vacuous chunk exists — every spawned chunk pays for two network
    // builds, so an empty one would be pure waste.
    let per = n_out.div_ceil((threads.max(1) * 2).min(n_out));
    let chunks = n_out.div_ceil(per);
    let refuted: Vec<std::sync::Mutex<Option<Counterexample>>> =
        (0..n_out).map(|_| std::sync::Mutex::new(None)).collect();
    let all_inputs: Vec<usize> = (0..n).collect();
    let fj = ddcore::par::fork_join(threads, chunks, |c| {
        let lo = c * per;
        let hi = ((c + 1) * per).min(n_out);
        let mgr = make_mgr();
        let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
        let a_outs = build_network_with_inputs(&mgr, a, &vars);
        let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
        let b_outs = build_network_with_inputs(&mgr, b, &b_inputs);
        for (k, (name, _)) in a.outputs().iter().enumerate().take(hi).skip(lo) {
            let mut out_span = ddcore::obs::span(ddcore::obs::Op::CecOutput);
            out_span.set_arg("output", k as u64);
            let miter = a_outs[k].xor(&b_outs[output_map[k]]);
            let quantified = miter.exists(&all_inputs);
            if !quantified.is_false() {
                let inputs = miter
                    .any_sat()
                    .map(|m| m[..n].to_vec())
                    .expect("a non-false miter has a model");
                *refuted[k].lock().expect("cec result lock") = Some(Counterexample {
                    output: k,
                    output_name: name.clone(),
                    inputs,
                    distinguishing: model_count::<M>(&miter, n),
                });
            }
        }
    });
    let stats = CecParStats {
        outputs: n_out,
        chunks,
        workers: fj.workers,
        chunks_by_worker: fj.executed,
    };
    for slot in &refuted {
        if let Some(cex) = slot.lock().expect("cec result lock").take() {
            return (CecVerdict::Inequivalent(cex), stats);
        }
    }
    (CecVerdict::Equivalent, stats)
}

/// [`check_equivalence_parallel`] under a resource budget: chunks run
/// through [`try_check_equivalence`]'s per-output fallible pipeline, and
/// pool workers observe the budget's stop conditions **between chunk
/// tasks** ([`ddcore::par::try_fork_join_governed`]), so a raised
/// [`ddcore::govern::CancelToken`] or an expired deadline stops the whole
/// fan-out after at most the chunks already in flight.
///
/// Budget semantics in the parallel driver: the budget's *stop conditions*
/// (token, deadline, fault injection) are shared by every chunk, while the
/// **node ceiling applies per chunk** — each chunk clones the budget for
/// its own manager, since per-chunk managers are what keep the fan-out
/// contention-free and a shared depleting counter would reintroduce the
/// contention. An unlimited budget routes to the ordinary un-governed
/// driver, leaving that hot path untouched.
///
/// A refutation found by any chunk before the stop is returned as a full
/// [`CecVerdict::Inequivalent`] (lowest output index wins, so the verdict
/// is deterministic): one counterexample is definitive regardless of how
/// many outputs went unchecked.
///
/// # Errors
/// Returns [`CecAborted`] when the run stopped before every output was
/// decided and no refutation was found; `outputs_checked` counts outputs
/// decided across all chunks.
///
/// # Panics
/// Panics if the interfaces have different arities, a manager has too few
/// variables, or a pool task panics.
pub fn try_check_equivalence_parallel<M, F>(
    a: &Network,
    b: &Network,
    threads: usize,
    make_mgr: F,
    budget: &mut OpBudget,
) -> Result<(CecVerdict, CecParStats), CecAborted>
where
    M: FunctionManager,
    F: Fn() -> M + Sync,
{
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    let _cec = ddcore::obs::span(ddcore::obs::Op::Cec);
    let view = budget.stop_view();
    if !view.is_limited() {
        return Ok(check_equivalence_parallel(a, b, threads, make_mgr));
    }
    let n = a.num_inputs();
    let n_out = a.num_outputs();
    if n_out == 0 {
        return Ok((CecVerdict::Equivalent, CecParStats::default()));
    }
    let (input_map, output_map, _) = match_interfaces(a, b);
    let per = n_out.div_ceil((threads.max(1) * 2).min(n_out));
    let chunks = n_out.div_ceil(per);
    let refuted: Vec<std::sync::Mutex<Option<Counterexample>>> =
        (0..n_out).map(|_| std::sync::Mutex::new(None)).collect();
    let all_inputs: Vec<usize> = (0..n).collect();
    let decided = AtomicUsize::new(0);
    // First abort reason any chunk hit, encoded ordinally (0 = none);
    // stop-condition reasons agree across chunks up to benign races
    // (deadline vs token raised in the same stride), so "first recorded"
    // is as deterministic as the conditions themselves.
    let abort_code = AtomicU64::new(0);
    let encode = |r: OpAbort| match r {
        OpAbort::NodeBudget => 1u64,
        OpAbort::Deadline => 2,
        OpAbort::Cancelled => 3,
    };
    let decode = |c: u64| match c {
        1 => OpAbort::NodeBudget,
        2 => OpAbort::Deadline,
        _ => OpAbort::Cancelled,
    };
    let chunk_proto = budget.clone();
    let fj_result = ddcore::par::try_fork_join_governed(
        threads,
        chunks,
        || view.should_stop(0).is_some(),
        |c| {
            let lo = c * per;
            let hi = ((c + 1) * per).min(n_out);
            let mut chunk_budget = chunk_proto.clone();
            let mgr = make_mgr();
            let vars: Vec<M::Function> = (0..n).map(|i| mgr.var(i)).collect();
            let a_outs = build_network_with_inputs(&mgr, a, &vars);
            let b_inputs: Vec<M::Function> = input_map.iter().map(|&i| vars[i].clone()).collect();
            let b_outs = build_network_with_inputs(&mgr, b, &b_inputs);
            for (k, (name, _)) in a.outputs().iter().enumerate().take(hi).skip(lo) {
                let mut out_span = ddcore::obs::span(ddcore::obs::Op::CecOutput);
                out_span.set_arg("output", k as u64);
                let step = a_outs[k]
                    .try_xor(&b_outs[output_map[k]], &mut chunk_budget)
                    .and_then(|miter| {
                        let q = miter.try_exists(&all_inputs, &mut chunk_budget)?;
                        Ok((miter, q))
                    });
                let (miter, quantified) = match step {
                    Ok(pair) => pair,
                    Err(reason) => {
                        let _ = abort_code.compare_exchange(
                            0,
                            encode(reason),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        return;
                    }
                };
                if !quantified.is_false() {
                    let inputs = miter
                        .any_sat()
                        .map(|m| m[..n].to_vec())
                        .expect("a non-false miter has a model");
                    *refuted[k].lock().expect("cec result lock") = Some(Counterexample {
                        output: k,
                        output_name: name.clone(),
                        inputs,
                        distinguishing: model_count::<M>(&miter, n),
                    });
                }
                decided.fetch_add(1, Ordering::Relaxed);
            }
        },
    );
    let (fj, stopped) = match fj_result {
        Ok(x) => x,
        Err(p) => panic!("{p}"),
    };
    let stats = CecParStats {
        outputs: n_out,
        chunks,
        workers: fj.workers,
        chunks_by_worker: fj.executed,
    };
    for slot in &refuted {
        if let Some(cex) = slot.lock().expect("cec result lock").take() {
            return Ok((CecVerdict::Inequivalent(cex), stats));
        }
    }
    let outputs_checked = decided.load(Ordering::Relaxed);
    let code = abort_code.load(Ordering::Acquire);
    if code != 0 || stopped || outputs_checked < n_out {
        let reason = if code != 0 {
            decode(code)
        } else {
            view.should_stop(0).unwrap_or(OpAbort::Cancelled)
        };
        return Err(CecAborted {
            reason,
            outputs_checked,
        });
    }
    Ok((CecVerdict::Equivalent, stats))
}

/// [`check_equivalence_parallel`] over fresh sequential BBDD managers
/// (one per chunk), returning only the verdict.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_parallel_bbdd(a: &Network, b: &Network, threads: usize) -> CecVerdict {
    let n = a.num_inputs().max(1);
    check_equivalence_parallel(a, b, threads, || bbdd::BbddManager::with_vars(n)).0
}

/// [`check_equivalence_parallel`] over fresh sequential ROBDD managers
/// (one per chunk), returning only the verdict.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_parallel_robdd(a: &Network, b: &Network, threads: usize) -> CecVerdict {
    let n = a.num_inputs().max(1);
    check_equivalence_parallel(a, b, threads, || robdd::RobddManager::with_vars(n)).0
}

/// [`check_equivalence`] in a fresh BBDD manager.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_bbdd(a: &Network, b: &Network) -> CecVerdict {
    let mgr = bbdd::BbddManager::with_vars(a.num_inputs().max(1));
    check_equivalence(&mgr, a, b)
}

/// [`check_equivalence`] in a fresh ROBDD manager.
///
/// # Panics
/// Panics if the interfaces have different arities.
#[must_use]
pub fn check_equivalence_robdd(a: &Network, b: &Network) -> CecVerdict {
    let mgr = robdd::RobddManager::with_vars(a.num_inputs().max(1));
    check_equivalence(&mgr, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateOp;

    fn half_adder(name: &str, decomposed_xor: bool) -> Network {
        let mut net = Network::new(name);
        let a = net.add_input("a");
        let b = net.add_input("b");
        let s = if decomposed_xor {
            let na = net.add_gate(GateOp::Not, &[a]);
            let nb = net.add_gate(GateOp::Not, &[b]);
            let t1 = net.add_gate(GateOp::And, &[a, nb]);
            let t2 = net.add_gate(GateOp::And, &[na, b]);
            net.add_gate(GateOp::Or, &[t1, t2])
        } else {
            net.add_gate(GateOp::Xor, &[a, b])
        };
        let c = net.add_gate(GateOp::And, &[a, b]);
        net.set_output("s", s);
        net.set_output("c", c);
        net
    }

    #[test]
    fn equivalent_implementations_verify_on_both_backends() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        assert_eq!(check_equivalence_bbdd(&x, &y), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&x, &y), CecVerdict::Equivalent);
    }

    #[test]
    fn mutation_is_detected_with_counterexample() {
        let good = half_adder("good", false);
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]); // BUG: OR carry
        bad.set_output("s", s);
        bad.set_output("c", c);

        for verdict in [
            check_equivalence_bbdd(&good, &bad),
            check_equivalence_robdd(&good, &bad),
        ] {
            match verdict {
                CecVerdict::Inequivalent(cex) => {
                    assert_eq!(cex.output_name, "c");
                    // The carry differs exactly on a ≠ b: two assignments.
                    assert_eq!(cex.distinguishing, Some(2));
                    let [a_val, b_val] = cex.inputs[..] else {
                        panic!("two inputs expected")
                    };
                    assert_ne!(a_val, b_val, "counterexample must distinguish");
                }
                CecVerdict::Equivalent => panic!("mutation missed"),
            }
        }
    }

    #[test]
    fn inputs_matched_by_name_across_declaration_orders() {
        // Same function, inputs declared in opposite order: positional
        // matching would mistake x∧¬y for y∧¬x.
        let mut p = Network::new("p");
        let x = p.add_input("x");
        let y = p.add_input("y");
        let ny = p.add_gate(GateOp::Not, &[y]);
        let g = p.add_gate(GateOp::And, &[x, ny]);
        p.set_output("f", g);

        let mut q = Network::new("q");
        let y2 = q.add_input("y");
        let x2 = q.add_input("x");
        let ny2 = q.add_gate(GateOp::Not, &[y2]);
        let g2 = q.add_gate(GateOp::And, &[x2, ny2]);
        q.set_output("f", g2);

        assert_eq!(check_equivalence_bbdd(&p, &q), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&p, &q), CecVerdict::Equivalent);
        let (input_map, _, how) = match_interfaces(&p, &q);
        assert_eq!(how, PortMatching::ByName);
        assert_eq!(input_map, vec![1, 0]);
    }

    #[test]
    fn large_networks_survive_the_builders_gc_stride() {
        // Regression: with the old caller-maintained liveness lists,
        // building the second network GC'd against only its own live wires
        // once past the builder's GC stride (1024 gates), reclaiming the
        // first network's output nodes — a 2500-gate network then compared
        // unequal to itself. Handles make the first network's outputs
        // structurally live; this must stay green with no protection
        // plumbing anywhere in the driver.
        let mut big = Network::new("big");
        let a = big.add_input("a");
        let b = big.add_input("b");
        let mut acc = big.add_gate(GateOp::Xor, &[a, b]);
        for _ in 0..2500 {
            acc = big.add_gate(GateOp::Xor, &[acc, a]);
        }
        let m = big.add_gate(GateOp::Maj, &[a, b, acc]);
        big.set_output("f", m);
        assert_eq!(check_equivalence_bbdd(&big, &big), CecVerdict::Equivalent);
        assert_eq!(check_equivalence_robdd(&big, &big), CecVerdict::Equivalent);
    }

    #[test]
    fn parallel_cec_matches_sequential_for_all_thread_counts() {
        let good = half_adder("x", false);
        let alt = half_adder("y", true);
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]);
        bad.set_output("s", s);
        bad.set_output("c", c);

        let seq_pos = check_equivalence_bbdd(&good, &alt);
        let seq_neg = check_equivalence_bbdd(&good, &bad);
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                check_equivalence_parallel_bbdd(&good, &alt, threads),
                seq_pos,
                "threads {threads}"
            );
            assert_eq!(
                check_equivalence_parallel_robdd(&good, &alt, threads),
                CecVerdict::Equivalent
            );
            // The refuted output and its evidence must be the sequential
            // driver's, whatever worker found it first.
            assert_eq!(
                check_equivalence_parallel_bbdd(&good, &bad, threads),
                seq_neg,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_cec_reports_pool_stats() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        let (verdict, stats) =
            check_equivalence_parallel(&x, &y, 4, || bbdd::BbddManager::with_vars(x.num_inputs()));
        assert!(verdict.is_equivalent());
        assert_eq!(stats.outputs, 2);
        assert!(stats.chunks >= 1 && stats.chunks <= 2);
        assert_eq!(
            stats.chunks_by_worker.iter().sum::<u64>() as usize,
            stats.chunks
        );
    }

    #[test]
    fn parallel_managers_drive_the_generic_cec() {
        // ParBbdd / ParRobdd as the backend of the ordinary sequential
        // driver: every miter/quantification runs the fork-join pipeline
        // internally.
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        let mgr = bbdd::ParBbddManager::new(bbdd::ParBbdd::with_config(
            x.num_inputs(),
            bbdd::ParConfig {
                threads: 4,
                cutoff: 0,
                split_depth: Some(2),
                cache_ways: 1 << 10,
                shards: 8,
            },
        ));
        assert_eq!(check_equivalence(&mgr, &x, &y), CecVerdict::Equivalent);
        let mgr = robdd::ParRobddManager::new(robdd::ParRobdd::with_config(
            x.num_inputs(),
            robdd::ParConfig {
                threads: 4,
                cutoff: 0,
                split_depth: Some(2),
                cache_ways: 1 << 10,
                shards: 8,
            },
        ));
        assert_eq!(check_equivalence(&mgr, &x, &y), CecVerdict::Equivalent);
    }

    #[test]
    fn model_count_saturates_exactly_beyond_127_variables() {
        // The 127/128 boundary of `sat_count_checked`: a constant-true
        // miter over n variables has 2^n distinguishing assignments, which
        // fits u128 at n = 127 and saturates at n = 128. The driver must
        // report the count exactly at 127 and None (not a clamped value)
        // at 128.
        for n in [127usize, 128] {
            let mut p = Network::new("p");
            for i in 0..n {
                p.add_input(&format!("x{i}"));
            }
            let one = p.add_gate(GateOp::Const1, &[]);
            p.set_output("f", one);
            let mut q = Network::new("q");
            for i in 0..n {
                q.add_input(&format!("x{i}"));
            }
            let zero = q.add_gate(GateOp::Const0, &[]);
            q.set_output("f", zero);

            for verdict in [
                check_equivalence(&bbdd::BbddManager::with_vars(n), &p, &q),
                check_equivalence(&robdd::RobddManager::with_vars(n), &p, &q),
            ] {
                match verdict {
                    CecVerdict::Inequivalent(cex) => {
                        let expected = (n == 127).then_some(1u128 << 127);
                        assert_eq!(cex.distinguishing, expected, "n = {n}");
                    }
                    CecVerdict::Equivalent => panic!("constants must differ"),
                }
            }
        }
    }

    #[test]
    fn budgeted_cec_matches_unbudgeted_when_unlimited() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        let mgr = bbdd::BbddManager::with_vars(2);
        assert_eq!(
            try_check_equivalence(&mgr, &x, &y, &mut OpBudget::unlimited()),
            Ok(CecVerdict::Equivalent)
        );
        let mgr = robdd::RobddManager::with_vars(2);
        assert_eq!(
            try_check_equivalence(&mgr, &x, &y, &mut OpBudget::unlimited()),
            Ok(CecVerdict::Equivalent)
        );
    }

    #[test]
    fn budgeted_cec_surfaces_partial_verdict() {
        // Against the OR-carry mutant, output "s" is decided for free
        // (same canonical edge, miter collapses terminally, zero
        // checkpoints) but the "c" miter AND(a,b) ⊕ OR(a,b) forces real
        // apply recursion — so a pre-cancelled token with stride 1 aborts
        // there, with exactly one output decided.
        let x = half_adder("x", false);
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]);
        bad.set_output("s", s);
        bad.set_output("c", c);
        let token = ddcore::govern::CancelToken::new();
        token.cancel();
        let mut budget = OpBudget::unlimited()
            .with_cancel(&token)
            .with_poll_stride(1);
        let mgr = bbdd::BbddManager::with_vars(2);
        let aborted = try_check_equivalence(&mgr, &x, &bad, &mut budget)
            .expect_err("cancelled budget must abort");
        assert_eq!(aborted.reason, OpAbort::Cancelled);
        assert_eq!(aborted.outputs_checked, 1);
        // The manager survives the abort: the same check completes
        // under a fresh unlimited budget and finds the real refutation.
        match try_check_equivalence(&mgr, &x, &bad, &mut OpBudget::unlimited()) {
            Ok(CecVerdict::Inequivalent(cex)) => assert_eq!(cex.output_name, "c"),
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn governed_parallel_cec_stops_between_chunks() {
        let x = half_adder("x", false);
        let y = half_adder("y", true);
        // Unlimited budget routes to the ordinary driver.
        let (verdict, stats) = try_check_equivalence_parallel(
            &x,
            &y,
            2,
            || bbdd::BbddManager::with_vars(2),
            &mut OpBudget::unlimited(),
        )
        .expect("unlimited budget never aborts");
        assert!(verdict.is_equivalent());
        assert_eq!(stats.outputs, 2);
        // A pre-raised token stops the fan-out before any chunk runs.
        let token = ddcore::govern::CancelToken::new();
        token.cancel();
        let mut budget = OpBudget::unlimited()
            .with_cancel(&token)
            .with_poll_stride(1);
        for threads in [1usize, 4] {
            let aborted = try_check_equivalence_parallel(
                &x,
                &y,
                threads,
                || bbdd::BbddManager::with_vars(2),
                &mut budget,
            )
            .expect_err("raised token must abort the parallel check");
            assert_eq!(aborted.reason, OpAbort::Cancelled, "threads {threads}");
            assert_eq!(aborted.outputs_checked, 0, "threads {threads}");
        }
        // A refutation found under a live budget is definitive.
        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let s = bad.add_gate(GateOp::Xor, &[a, b]);
        let c = bad.add_gate(GateOp::Or, &[a, b]);
        bad.set_output("s", s);
        bad.set_output("c", c);
        let live = ddcore::govern::CancelToken::new();
        let mut budget = OpBudget::unlimited().with_cancel(&live);
        let (verdict, _) = try_check_equivalence_parallel(
            &x,
            &bad,
            2,
            || bbdd::BbddManager::with_vars(2),
            &mut budget,
        )
        .expect("live token, small nets: run completes");
        match verdict {
            CecVerdict::Inequivalent(cex) => assert_eq!(cex.output_name, "c"),
            CecVerdict::Equivalent => panic!("mutation missed"),
        }
    }

    #[test]
    fn constant_outputs_are_handled() {
        let mut p = Network::new("p");
        let a = p.add_input("a");
        let na = p.add_gate(GateOp::Not, &[a]);
        let t = p.add_gate(GateOp::Or, &[a, na]);
        p.set_output("f", t);
        let mut q = Network::new("q");
        let _ = q.add_input("a");
        let one = q.add_gate(GateOp::Const1, &[]);
        q.set_output("f", one);
        assert_eq!(check_equivalence_bbdd(&p, &q), CecVerdict::Equivalent);
    }
}

//! Building decision diagrams (or any Boolean algebra) from a network.
//!
//! [`BoolAlgebra`] abstracts the handful of operations a topological
//! traversal needs; it is implemented for [`bbdd::Bbdd`], [`robdd::Robdd`]
//! and a bit-parallel truth-table algebra used for equivalence checks, so
//! the same walk drives every backend — exactly how the paper feeds one
//! benchmark network to both packages.

use crate::ir::{GateOp, Network};

/// A Boolean function algebra a network can be interpreted into.
pub trait BoolAlgebra {
    /// Function handles (edges, truth tables, …).
    type Repr: Copy;

    /// The constant function.
    fn constant(&mut self, value: bool) -> Self::Repr;
    /// The `idx`-th primary input (position in `Network::inputs()`).
    fn input(&mut self, idx: usize) -> Self::Repr;
    /// Complement.
    fn not(&mut self, a: Self::Repr) -> Self::Repr;
    /// Conjunction.
    fn and2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr;
    /// Disjunction.
    fn or2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr;
    /// Parity.
    fn xor2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr;

    /// Multiplexer; backends with a native `ite` should override.
    fn mux(&mut self, s: Self::Repr, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        let t1 = self.and2(s, a);
        let ns = self.not(s);
        let t2 = self.and2(ns, b);
        self.or2(t1, t2)
    }

    /// Reclaim intermediate storage, keeping `live` handles valid
    /// (a garbage-collection hook; default no-op).
    fn collect(&mut self, live: &[Self::Repr]) {
        let _ = live;
    }
}

impl BoolAlgebra for bbdd::Bbdd {
    type Repr = bbdd::Edge;

    fn constant(&mut self, value: bool) -> Self::Repr {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var(idx)
    }

    fn not(&mut self, a: Self::Repr) -> Self::Repr {
        !a
    }

    fn and2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.and(a, b)
    }

    fn or2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.or(a, b)
    }

    fn xor2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.xor(a, b)
    }

    fn mux(&mut self, s: Self::Repr, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.ite(s, a, b)
    }

    fn collect(&mut self, live: &[Self::Repr]) {
        if !self.reorder_if_needed(live) {
            self.gc(live);
        }
    }
}

impl BoolAlgebra for bbdd::ParBbdd {
    type Repr = bbdd::Edge;

    fn constant(&mut self, value: bool) -> Self::Repr {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var(idx)
    }

    fn not(&mut self, a: Self::Repr) -> Self::Repr {
        !a
    }

    fn and2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.and(a, b)
    }

    fn or2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.or(a, b)
    }

    fn xor2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.xor(a, b)
    }

    fn mux(&mut self, s: Self::Repr, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.ite(s, a, b)
    }

    fn collect(&mut self, live: &[Self::Repr]) {
        // Plain GC (no auto-reordering hook): the parallel manager's
        // history must stay a deterministic function of the op sequence.
        bbdd::ParBbdd::collect(self, live);
    }
}

impl BoolAlgebra for robdd::ParRobdd {
    type Repr = robdd::Edge;

    fn constant(&mut self, value: bool) -> Self::Repr {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var(idx)
    }

    fn not(&mut self, a: Self::Repr) -> Self::Repr {
        !a
    }

    fn and2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.and(a, b)
    }

    fn or2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.or(a, b)
    }

    fn xor2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.xor(a, b)
    }

    fn mux(&mut self, s: Self::Repr, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.ite(s, a, b)
    }

    fn collect(&mut self, live: &[Self::Repr]) {
        robdd::ParRobdd::collect(self, live);
    }
}

impl BoolAlgebra for robdd::Robdd {
    type Repr = robdd::Edge;

    fn constant(&mut self, value: bool) -> Self::Repr {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var(idx)
    }

    fn not(&mut self, a: Self::Repr) -> Self::Repr {
        !a
    }

    fn and2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.and(a, b)
    }

    fn or2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.or(a, b)
    }

    fn xor2(&mut self, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.xor(a, b)
    }

    fn mux(&mut self, s: Self::Repr, a: Self::Repr, b: Self::Repr) -> Self::Repr {
        self.ite(s, a, b)
    }

    fn collect(&mut self, live: &[Self::Repr]) {
        self.gc(live);
    }
}

/// Gate-count interval between garbage-collection / dynamic-reordering
/// opportunities while building large networks.
const GC_STRIDE: usize = 1024;

/// Interpret `net` into `alg`, returning one representation per output
/// port (in `Network::outputs()` order).
///
/// Input `i` of the network is mapped to algebra input `i`; for the
/// decision-diagram backends that means network inputs bind to manager
/// variables in declaration order — "the initial order provided in the
/// file" of the paper's experimental setup.
///
/// # Panics
/// Panics if the network fails [`Network::check`].
pub fn build_network<A: BoolAlgebra>(alg: &mut A, net: &Network) -> Vec<A::Repr> {
    let inputs: Vec<A::Repr> = (0..net.num_inputs()).map(|i| alg.input(i)).collect();
    build_network_with_inputs(alg, net, &inputs, &[])
}

/// Interpret `net` into `alg` with pre-bound input handles: network input
/// `i` reads `inputs[i]` instead of `alg.input(i)`.
///
/// This is how the equivalence checker ([`crate::cec`]) builds two
/// networks over *one* variable space, aligning their inputs by name even
/// when the declaration orders differ. `keep_alive` lists handles built
/// *before* this call that must survive the builder's periodic
/// garbage-collection opportunities (e.g. the first network's outputs
/// while the second network builds) — without it, a backend GC against
/// only this build's live wires would reclaim them.
///
/// # Panics
/// Panics if the network fails [`Network::check`] or `inputs` is shorter
/// than the network's input list.
pub fn build_network_with_inputs<A: BoolAlgebra>(
    alg: &mut A,
    net: &Network,
    inputs: &[A::Repr],
    keep_alive: &[A::Repr],
) -> Vec<A::Repr> {
    net.check().expect("network must be structurally valid");
    assert!(
        inputs.len() >= net.num_inputs(),
        "one pre-bound handle per network input required"
    );
    let mut wire: Vec<Option<A::Repr>> = vec![None; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        wire[s.index()] = Some(inputs[i]);
    }
    // Last-use positions so intermediate handles can be dropped and the
    // backend GC'd against the exact live set.
    let mut last_use = vec![usize::MAX; net.num_signals()];
    for (gi, g) in net.gates().iter().enumerate() {
        for inp in &g.inputs {
            last_use[inp.index()] = gi;
        }
    }
    for (_, s) in net.outputs() {
        last_use[s.index()] = usize::MAX;
    }
    for s in net.inputs() {
        last_use[s.index()] = usize::MAX; // keep manager variables alive
    }

    for (gi, g) in net.gates().iter().enumerate() {
        let ins: Vec<A::Repr> = g
            .inputs
            .iter()
            .map(|s| wire[s.index()].expect("topological order"))
            .collect();
        let out = match g.op {
            GateOp::Const0 => alg.constant(false),
            GateOp::Const1 => alg.constant(true),
            GateOp::Buf => ins[0],
            GateOp::Not => alg.not(ins[0]),
            GateOp::And | GateOp::Nand => {
                let mut acc = ins[0];
                for &x in &ins[1..] {
                    acc = alg.and2(acc, x);
                }
                if g.op == GateOp::Nand {
                    alg.not(acc)
                } else {
                    acc
                }
            }
            GateOp::Or | GateOp::Nor => {
                let mut acc = ins[0];
                for &x in &ins[1..] {
                    acc = alg.or2(acc, x);
                }
                if g.op == GateOp::Nor {
                    alg.not(acc)
                } else {
                    acc
                }
            }
            GateOp::Xor | GateOp::Xnor => {
                let mut acc = ins[0];
                for &x in &ins[1..] {
                    acc = alg.xor2(acc, x);
                }
                if g.op == GateOp::Xnor {
                    alg.not(acc)
                } else {
                    acc
                }
            }
            GateOp::Maj => {
                let ab = alg.and2(ins[0], ins[1]);
                let bc = alg.and2(ins[1], ins[2]);
                let ac = alg.and2(ins[0], ins[2]);
                let t = alg.or2(ab, bc);
                alg.or2(t, ac)
            }
            GateOp::Mux => alg.mux(ins[0], ins[1], ins[2]),
        };
        wire[g.output.index()] = Some(out);
        // Drop dead intermediates and give the backend a GC opportunity.
        if (gi + 1) % GC_STRIDE == 0 {
            for (idx, slot) in wire.iter_mut().enumerate() {
                if last_use[idx] <= gi {
                    *slot = None;
                }
            }
            let mut live: Vec<A::Repr> = wire.iter().flatten().copied().collect();
            live.extend_from_slice(keep_alive);
            alg.collect(&live);
        }
    }
    net.outputs()
        .iter()
        .map(|(_, s)| wire[s.index()].expect("outputs are driven"))
        .collect()
}

/// A 64-bit-word truth-table algebra over up to 6 variables, plus a
/// *sampled* variant that interprets each word as 64 random assignment
/// lanes — used for randomized cross-checks of large networks.
#[derive(Debug, Clone)]
pub struct WordAlgebra {
    /// One 64-bit lane-word per primary input.
    pub input_words: Vec<u64>,
}

impl BoolAlgebra for WordAlgebra {
    type Repr = u64;

    fn constant(&mut self, value: bool) -> u64 {
        if value {
            !0
        } else {
            0
        }
    }

    fn input(&mut self, idx: usize) -> u64 {
        self.input_words[idx]
    }

    fn not(&mut self, a: u64) -> u64 {
        !a
    }

    fn and2(&mut self, a: u64, b: u64) -> u64 {
        a & b
    }

    fn or2(&mut self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn xor2(&mut self, a: u64, b: u64) -> u64 {
        a ^ b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Network;

    fn ripple2() -> Network {
        let mut net = Network::new("add2");
        let a0 = net.add_input("a0");
        let a1 = net.add_input("a1");
        let b0 = net.add_input("b0");
        let b1 = net.add_input("b1");
        let s0 = net.add_gate(GateOp::Xor, &[a0, b0]);
        let c0 = net.add_gate(GateOp::And, &[a0, b0]);
        let s1p = net.add_gate(GateOp::Xor, &[a1, b1]);
        let s1 = net.add_gate(GateOp::Xor, &[s1p, c0]);
        let c1 = net.add_gate(GateOp::Maj, &[a1, b1, c0]);
        net.set_output("s0", s0);
        net.set_output("s1", s1);
        net.set_output("c", c1);
        net
    }

    #[test]
    fn bbdd_build_matches_simulation() {
        let net = ripple2();
        let mut mgr = bbdd::Bbdd::new(net.num_inputs());
        let outs = build_network(&mut mgr, &net);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(mgr.eval(*o, &v), *e, "vector {v:?}");
            }
        }
    }

    #[test]
    fn robdd_build_matches_simulation() {
        let net = ripple2();
        let mut mgr = robdd::Robdd::new(net.num_inputs());
        let outs = build_network(&mut mgr, &net);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(mgr.eval(*o, &v), *e, "vector {v:?}");
            }
        }
    }

    #[test]
    fn word_algebra_matches_simulation() {
        let net = ripple2();
        // Lane l of input i = bit i of l (exhaustive 16 lanes).
        let mut alg = WordAlgebra {
            input_words: (0..4)
                .map(|i| {
                    let mut w = 0u64;
                    for lane in 0..16u64 {
                        if (lane >> i) & 1 == 1 {
                            w |= 1 << lane;
                        }
                    }
                    w
                })
                .collect(),
        };
        let outs = build_network(&mut alg, &net);
        for lane in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (lane >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!((o >> lane) & 1 == 1, *e, "lane {lane}");
            }
        }
    }
}

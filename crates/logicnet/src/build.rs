//! Building decision diagrams (or any Boolean algebra) from a network.
//!
//! [`BoolAlgebra`] abstracts the handful of operations a topological
//! traversal needs; it is implemented for [`bbdd::Bbdd`], [`robdd::Robdd`]
//! and a bit-parallel truth-table algebra used for equivalence checks, so
//! the same walk drives every backend — exactly how the paper feeds one
//! benchmark network to both packages.
//!
//! The decision-diagram backends represent functions as **owned handles**
//! ([`bbdd::BbddFn`] / [`robdd::RobddFn`]): every wire the builder still
//! holds is a registered GC root, so the backend's collection opportunities
//! ([`BoolAlgebra::collect`]) can never reclaim a function some caller
//! still needs. The old design — a caller-maintained liveness list —
//! shipped exactly the bug it invites (a ≥1024-gate network compared
//! unequal to *itself* when the CEC driver forgot a root); with handles
//! the bug class is unrepresentable.

use crate::ir::{GateOp, Network};

/// A Boolean function algebra a network can be interpreted into.
///
/// `Repr` is `Clone`, not `Copy`: decision-diagram backends hand out
/// reference-counted handles whose clones bump a registry slot, which is
/// what makes every held wire visible to the backend's garbage collector.
pub trait BoolAlgebra {
    /// Function handles (owned DD handles, truth-table words, …).
    type Repr: Clone;

    /// The constant function.
    fn constant(&mut self, value: bool) -> Self::Repr;
    /// The `idx`-th primary input (position in `Network::inputs()`).
    fn input(&mut self, idx: usize) -> Self::Repr;
    /// Complement.
    fn not(&mut self, a: &Self::Repr) -> Self::Repr;
    /// Conjunction.
    fn and2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr;
    /// Disjunction.
    fn or2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr;
    /// Parity.
    fn xor2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr;

    /// Multiplexer; backends with a native `ite` should override.
    fn mux(&mut self, s: &Self::Repr, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        let t1 = self.and2(s, a);
        let ns = self.not(s);
        let t2 = self.and2(&ns, b);
        self.or2(&t1, &t2)
    }

    /// Reclaim intermediate storage (a garbage-collection hook; default
    /// no-op). Liveness is the backend's business — for the DD managers
    /// every outstanding handle is a registered root, so there is no list
    /// of survivors to pass and none to forget.
    fn collect(&mut self) {}
}

impl BoolAlgebra for bbdd::Bbdd {
    type Repr = bbdd::BbddFn;

    fn constant(&mut self, value: bool) -> Self::Repr {
        self.const_fn(value)
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var_fn(idx)
    }

    fn not(&mut self, a: &Self::Repr) -> Self::Repr {
        self.not_fn(a)
    }

    fn and2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.and_fn(a, b)
    }

    fn or2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.or_fn(a, b)
    }

    fn xor2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.xor_fn(a, b)
    }

    fn mux(&mut self, s: &Self::Repr, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.ite_fn(s, a, b)
    }

    fn collect(&mut self) {
        if !self.reorder_if_needed() {
            self.gc();
        }
    }
}

impl BoolAlgebra for bbdd::ParBbdd {
    type Repr = bbdd::BbddFn;

    fn constant(&mut self, value: bool) -> Self::Repr {
        self.const_fn(value)
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var_fn(idx)
    }

    fn not(&mut self, a: &Self::Repr) -> Self::Repr {
        self.not_fn(a)
    }

    fn and2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.and_fn(a, b)
    }

    fn or2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.or_fn(a, b)
    }

    fn xor2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.xor_fn(a, b)
    }

    fn mux(&mut self, s: &Self::Repr, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.ite_fn(s, a, b)
    }

    fn collect(&mut self) {
        // Plain GC (no auto-reordering hook): the parallel manager's
        // history must stay a deterministic function of the op sequence.
        bbdd::ParBbdd::collect(self);
    }
}

impl BoolAlgebra for robdd::ParRobdd {
    type Repr = robdd::RobddFn;

    fn constant(&mut self, value: bool) -> Self::Repr {
        self.const_fn(value)
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var_fn(idx)
    }

    fn not(&mut self, a: &Self::Repr) -> Self::Repr {
        self.not_fn(a)
    }

    fn and2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.and_fn(a, b)
    }

    fn or2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.or_fn(a, b)
    }

    fn xor2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.xor_fn(a, b)
    }

    fn mux(&mut self, s: &Self::Repr, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.ite_fn(s, a, b)
    }

    fn collect(&mut self) {
        robdd::ParRobdd::collect(self);
    }
}

impl BoolAlgebra for robdd::Robdd {
    type Repr = robdd::RobddFn;

    fn constant(&mut self, value: bool) -> Self::Repr {
        self.const_fn(value)
    }

    fn input(&mut self, idx: usize) -> Self::Repr {
        self.var_fn(idx)
    }

    fn not(&mut self, a: &Self::Repr) -> Self::Repr {
        self.not_fn(a)
    }

    fn and2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.and_fn(a, b)
    }

    fn or2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.or_fn(a, b)
    }

    fn xor2(&mut self, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.xor_fn(a, b)
    }

    fn mux(&mut self, s: &Self::Repr, a: &Self::Repr, b: &Self::Repr) -> Self::Repr {
        self.ite_fn(s, a, b)
    }

    fn collect(&mut self) {
        self.gc();
    }
}

/// Gate-count interval between garbage-collection / dynamic-reordering
/// opportunities while building large networks.
const GC_STRIDE: usize = 1024;

/// Interpret `net` into `alg`, returning one representation per output
/// port (in `Network::outputs()` order).
///
/// Input `i` of the network is mapped to algebra input `i`; for the
/// decision-diagram backends that means network inputs bind to manager
/// variables in declaration order — "the initial order provided in the
/// file" of the paper's experimental setup.
///
/// # Panics
/// Panics if the network fails [`Network::check`].
pub fn build_network<A: BoolAlgebra>(alg: &mut A, net: &Network) -> Vec<A::Repr> {
    let inputs: Vec<A::Repr> = (0..net.num_inputs()).map(|i| alg.input(i)).collect();
    build_network_with_inputs(alg, net, &inputs)
}

/// Interpret `net` into `alg` with pre-bound input handles: network input
/// `i` reads `inputs[i]` instead of `alg.input(i)`.
///
/// This is how the equivalence checker ([`crate::cec`]) builds two
/// networks over *one* variable space, aligning their inputs by name even
/// when the declaration orders differ. Functions built *before* this call
/// need no protection from the builder's periodic garbage-collection
/// opportunities: their owned handles are registered roots, so (unlike the
/// explicit root-list parameter this function used to take) there is no
/// liveness list for a caller to get wrong.
///
/// # Panics
/// Panics if the network fails [`Network::check`] or `inputs` is shorter
/// than the network's input list.
pub fn build_network_with_inputs<A: BoolAlgebra>(
    alg: &mut A,
    net: &Network,
    inputs: &[A::Repr],
) -> Vec<A::Repr> {
    net.check().expect("network must be structurally valid");
    assert!(
        inputs.len() >= net.num_inputs(),
        "one pre-bound handle per network input required"
    );
    let mut wire: Vec<Option<A::Repr>> = vec![None; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        wire[s.index()] = Some(inputs[i].clone());
    }
    // Last-use positions so intermediate handles can be dropped (releasing
    // their root-registry slots) as soon as they are dead.
    let mut last_use = vec![usize::MAX; net.num_signals()];
    for (gi, g) in net.gates().iter().enumerate() {
        for inp in &g.inputs {
            last_use[inp.index()] = gi;
        }
    }
    for (_, s) in net.outputs() {
        last_use[s.index()] = usize::MAX;
    }
    for s in net.inputs() {
        last_use[s.index()] = usize::MAX; // keep manager variables alive
    }

    for (gi, g) in net.gates().iter().enumerate() {
        // Borrow the fan-in handles straight out of the wire table —
        // cloning them would cost a registry refcount round-trip per pin,
        // which adds up on micro builds.
        let ins: Vec<&A::Repr> = g
            .inputs
            .iter()
            .map(|s| wire[s.index()].as_ref().expect("topological order"))
            .collect();
        /// Left-fold `op` over a fan-in list without cloning the head for
        /// the ≥2-input case (the 1-input degenerate form clones once).
        macro_rules! fold {
            ($op:ident, $ins:expr) => {
                if $ins.len() == 1 {
                    $ins[0].clone()
                } else {
                    let mut acc = alg.$op($ins[0], $ins[1]);
                    for x in &$ins[2..] {
                        acc = alg.$op(&acc, x);
                    }
                    acc
                }
            };
        }
        let out = match g.op {
            GateOp::Const0 => alg.constant(false),
            GateOp::Const1 => alg.constant(true),
            GateOp::Buf => ins[0].clone(),
            GateOp::Not => alg.not(ins[0]),
            GateOp::And | GateOp::Nand => {
                let acc = fold!(and2, ins);
                if g.op == GateOp::Nand {
                    alg.not(&acc)
                } else {
                    acc
                }
            }
            GateOp::Or | GateOp::Nor => {
                let acc = fold!(or2, ins);
                if g.op == GateOp::Nor {
                    alg.not(&acc)
                } else {
                    acc
                }
            }
            GateOp::Xor | GateOp::Xnor => {
                let acc = fold!(xor2, ins);
                if g.op == GateOp::Xnor {
                    alg.not(&acc)
                } else {
                    acc
                }
            }
            GateOp::Maj => {
                let ab = alg.and2(ins[0], ins[1]);
                let bc = alg.and2(ins[1], ins[2]);
                let ac = alg.and2(ins[0], ins[2]);
                let t = alg.or2(&ab, &bc);
                alg.or2(&t, &ac)
            }
            GateOp::Mux => alg.mux(ins[0], ins[1], ins[2]),
        };
        wire[g.output.index()] = Some(out);
        // Drop dead intermediates (their handles release the registry
        // slots) and give the backend a GC opportunity.
        if (gi + 1) % GC_STRIDE == 0 {
            for (idx, slot) in wire.iter_mut().enumerate() {
                if last_use[idx] <= gi {
                    *slot = None;
                }
            }
            alg.collect();
        }
    }
    net.outputs()
        .iter()
        .map(|(_, s)| wire[s.index()].clone().expect("outputs are driven"))
        .collect()
}

/// A 64-bit-word truth-table algebra over up to 6 variables, plus a
/// *sampled* variant that interprets each word as 64 random assignment
/// lanes — used for randomized cross-checks of large networks.
#[derive(Debug, Clone)]
pub struct WordAlgebra {
    /// One 64-bit lane-word per primary input.
    pub input_words: Vec<u64>,
}

impl BoolAlgebra for WordAlgebra {
    type Repr = u64;

    fn constant(&mut self, value: bool) -> u64 {
        if value {
            !0
        } else {
            0
        }
    }

    fn input(&mut self, idx: usize) -> u64 {
        self.input_words[idx]
    }

    fn not(&mut self, a: &u64) -> u64 {
        !*a
    }

    fn and2(&mut self, a: &u64, b: &u64) -> u64 {
        a & b
    }

    fn or2(&mut self, a: &u64, b: &u64) -> u64 {
        a | b
    }

    fn xor2(&mut self, a: &u64, b: &u64) -> u64 {
        a ^ b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Network;

    fn ripple2() -> Network {
        let mut net = Network::new("add2");
        let a0 = net.add_input("a0");
        let a1 = net.add_input("a1");
        let b0 = net.add_input("b0");
        let b1 = net.add_input("b1");
        let s0 = net.add_gate(GateOp::Xor, &[a0, b0]);
        let c0 = net.add_gate(GateOp::And, &[a0, b0]);
        let s1p = net.add_gate(GateOp::Xor, &[a1, b1]);
        let s1 = net.add_gate(GateOp::Xor, &[s1p, c0]);
        let c1 = net.add_gate(GateOp::Maj, &[a1, b1, c0]);
        net.set_output("s0", s0);
        net.set_output("s1", s1);
        net.set_output("c", c1);
        net
    }

    #[test]
    fn bbdd_build_matches_simulation() {
        let net = ripple2();
        let mut mgr = bbdd::Bbdd::new(net.num_inputs());
        let outs = build_network(&mut mgr, &net);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(mgr.eval(o.edge(), &v), *e, "vector {v:?}");
            }
        }
        // Outputs are the only registered roots once the builder returns
        // (its input/intermediate handles all dropped on exit).
        assert_eq!(mgr.external_roots(), outs.len());
    }

    #[test]
    fn robdd_build_matches_simulation() {
        let net = ripple2();
        let mut mgr = robdd::Robdd::new(net.num_inputs());
        let outs = build_network(&mut mgr, &net);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(mgr.eval(o.edge(), &v), *e, "vector {v:?}");
            }
        }
        assert_eq!(mgr.external_roots(), outs.len());
    }

    #[test]
    fn word_algebra_matches_simulation() {
        let net = ripple2();
        // Lane l of input i = bit i of l (exhaustive 16 lanes).
        let mut alg = WordAlgebra {
            input_words: (0..4)
                .map(|i| {
                    let mut w = 0u64;
                    for lane in 0..16u64 {
                        if (lane >> i) & 1 == 1 {
                            w |= 1 << lane;
                        }
                    }
                    w
                })
                .collect(),
        };
        let outs = build_network(&mut alg, &net);
        for lane in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (lane >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!((o >> lane) & 1 == 1, *e, "lane {lane}");
            }
        }
    }
}

//! Building decision diagrams from a network, generically over every
//! manager in the workspace.
//!
//! The topological traversal is written **once**, against the
//! [`FunctionManager`] / [`BooleanFunction`] trait pair of
//! [`ddcore::api`], and therefore runs unchanged on `bbdd::BbddManager`,
//! `robdd::RobddManager` and both parallel front-ends — exactly how the
//! paper feeds one benchmark network to both packages. (The ad-hoc
//! `BoolAlgebra` trait this replaces declared the same handful of
//! operations a third time; the word-level simulation that also used it
//! lives in [`crate::sim::simulate_words`] now.)
//!
//! Every wire the builder holds is an owned handle and therefore a
//! registered GC root, so the backend's collection opportunities
//! ([`FunctionManager::collect`]) can never reclaim a function some caller
//! still needs. The old design — a caller-maintained liveness list —
//! shipped exactly the bug it invites (a ≥1024-gate network compared
//! unequal to *itself* when the CEC driver forgot a root); with handles
//! the bug class is unrepresentable.

use crate::ir::{GateOp, Network};
use ddcore::api::{BooleanFunction, FunctionManager};
use ddcore::govern::{OpAbort, OpBudget};

/// Gate-count interval between garbage-collection / dynamic-reordering
/// opportunities while building large networks.
const GC_STRIDE: usize = 1024;

/// Interpret `net` into `mgr`, returning one function handle per output
/// port (in `Network::outputs()` order).
///
/// Input `i` of the network is mapped to manager variable `i` — network
/// inputs bind to variables in declaration order, "the initial order
/// provided in the file" of the paper's experimental setup.
///
/// # Panics
/// Panics if the network fails [`Network::check`] or has more inputs than
/// the manager has variables.
pub fn build_network<M: FunctionManager>(mgr: &M, net: &Network) -> Vec<M::Function> {
    let inputs: Vec<M::Function> = (0..net.num_inputs()).map(|i| mgr.var(i)).collect();
    build_network_with_inputs(mgr, net, &inputs)
}

/// Interpret `net` into `mgr` with pre-bound input handles: network input
/// `i` reads `inputs[i]` instead of `mgr.var(i)`.
///
/// This is how the equivalence checker ([`crate::cec`]) builds two
/// networks over *one* variable space, aligning their inputs by name even
/// when the declaration orders differ. Functions built *before* this call
/// need no protection from the builder's periodic garbage-collection
/// opportunities: their owned handles are registered roots.
///
/// # Panics
/// Panics if the network fails [`Network::check`] or `inputs` is shorter
/// than the network's input list.
pub fn build_network_with_inputs<M: FunctionManager>(
    mgr: &M,
    net: &Network,
    inputs: &[M::Function],
) -> Vec<M::Function> {
    net.check().expect("network must be structurally valid");
    assert!(
        inputs.len() >= net.num_inputs(),
        "one pre-bound handle per network input required"
    );
    let mut obs_span = ddcore::obs::span(ddcore::obs::Op::BuildNetwork);
    obs_span.set_arg("gates", net.gates().len() as u64);
    let mut wire: Vec<Option<M::Function>> = vec![None; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        wire[s.index()] = Some(inputs[i].clone());
    }
    // Last-use positions so intermediate handles can be dropped (releasing
    // their root-registry slots) as soon as they are dead.
    let mut last_use = vec![usize::MAX; net.num_signals()];
    for (gi, g) in net.gates().iter().enumerate() {
        for inp in &g.inputs {
            last_use[inp.index()] = gi;
        }
    }
    for (_, s) in net.outputs() {
        last_use[s.index()] = usize::MAX;
    }
    for s in net.inputs() {
        last_use[s.index()] = usize::MAX; // keep manager variables alive
    }

    for (gi, g) in net.gates().iter().enumerate() {
        // Borrow the fan-in handles straight out of the wire table —
        // cloning them would cost a registry refcount round-trip per pin,
        // which adds up on micro builds.
        let ins: Vec<&M::Function> = g
            .inputs
            .iter()
            .map(|s| wire[s.index()].as_ref().expect("topological order"))
            .collect();
        /// Left-fold `op` over a fan-in list without cloning the head for
        /// the ≥2-input case (the 1-input degenerate form clones once).
        macro_rules! fold {
            ($op:ident, $ins:expr) => {
                if $ins.len() == 1 {
                    $ins[0].clone()
                } else {
                    let mut acc = $ins[0].$op($ins[1]);
                    for x in &$ins[2..] {
                        acc = acc.$op(x);
                    }
                    acc
                }
            };
        }
        let out = match g.op {
            GateOp::Const0 => mgr.constant(false),
            GateOp::Const1 => mgr.constant(true),
            GateOp::Buf => ins[0].clone(),
            GateOp::Not => ins[0].not(),
            GateOp::And | GateOp::Nand => {
                let acc = fold!(and, ins);
                if g.op == GateOp::Nand {
                    acc.not()
                } else {
                    acc
                }
            }
            GateOp::Or | GateOp::Nor => {
                let acc = fold!(or, ins);
                if g.op == GateOp::Nor {
                    acc.not()
                } else {
                    acc
                }
            }
            GateOp::Xor | GateOp::Xnor => {
                let acc = fold!(xor, ins);
                if g.op == GateOp::Xnor {
                    acc.not()
                } else {
                    acc
                }
            }
            GateOp::Maj => {
                let ab = ins[0].and(ins[1]);
                let bc = ins[1].and(ins[2]);
                let ac = ins[0].and(ins[2]);
                ab.or(&bc).or(&ac)
            }
            GateOp::Mux => ins[0].ite(ins[1], ins[2]),
        };
        wire[g.output.index()] = Some(out);
        // Drop dead intermediates (their handles release the registry
        // slots) and give the backend a GC opportunity.
        if (gi + 1) % GC_STRIDE == 0 {
            for (idx, slot) in wire.iter_mut().enumerate() {
                if last_use[idx] <= gi {
                    *slot = None;
                }
            }
            mgr.collect();
        }
    }
    net.outputs()
        .iter()
        .map(|(_, s)| wire[s.index()].clone().expect("outputs are driven"))
        .collect()
}

/// A network build stopped by its [`OpBudget`].
///
/// All wire handles the interrupted build held are dropped before this is
/// returned, so the manager is left with a balanced root registry and only
/// unreferenced partial results — the next GC reclaims them (the managers'
/// abort-safety contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildAborted {
    /// Why the budget stopped the build.
    pub reason: OpAbort,
    /// Gates fully interpreted before the abort.
    pub gates_built: usize,
}

impl std::fmt::Display for BuildAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network build aborted ({}) after {} gate(s)",
            self.reason, self.gates_built
        )
    }
}

impl std::error::Error for BuildAborted {}

/// [`build_network`] under a resource budget: every gate's diagram
/// operations run through the fallible `try_*` forms, so a node ceiling,
/// deadline or cancellation stops the build mid-netlist instead of letting
/// a pathological network grow the manager until the process dies.
///
/// # Errors
/// Returns [`BuildAborted`] with the abort reason and the number of gates
/// already interpreted.
///
/// # Panics
/// Panics if the network fails [`Network::check`] or has more inputs than
/// the manager has variables.
pub fn try_build_network<M: FunctionManager>(
    mgr: &M,
    net: &Network,
    budget: &mut OpBudget,
) -> Result<Vec<M::Function>, BuildAborted> {
    net.check().expect("network must be structurally valid");
    let mut obs_span = ddcore::obs::span(ddcore::obs::Op::BuildNetwork);
    obs_span.set_arg("gates", net.gates().len() as u64);
    let inputs: Vec<M::Function> = (0..net.num_inputs()).map(|i| mgr.var(i)).collect();
    let mut wire: Vec<Option<M::Function>> = vec![None; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        wire[s.index()] = Some(inputs[i].clone());
    }
    let mut last_use = vec![usize::MAX; net.num_signals()];
    for (gi, g) in net.gates().iter().enumerate() {
        for inp in &g.inputs {
            last_use[inp.index()] = gi;
        }
    }
    for (_, s) in net.outputs() {
        last_use[s.index()] = usize::MAX;
    }
    for s in net.inputs() {
        last_use[s.index()] = usize::MAX;
    }

    for (gi, g) in net.gates().iter().enumerate() {
        let ins: Vec<&M::Function> = g
            .inputs
            .iter()
            .map(|s| wire[s.index()].as_ref().expect("topological order"))
            .collect();
        /// Budgeted left-fold of `op` over a fan-in list.
        macro_rules! try_fold {
            ($op:ident, $ins:expr, $budget:expr) => {
                if $ins.len() == 1 {
                    $ins[0].clone()
                } else {
                    let mut acc = $ins[0].$op($ins[1], $budget)?;
                    for x in &$ins[2..] {
                        acc = acc.$op(x, $budget)?;
                    }
                    acc
                }
            };
        }
        let out = (|| -> Result<M::Function, OpAbort> {
            Ok(match g.op {
                GateOp::Const0 => mgr.constant(false),
                GateOp::Const1 => mgr.constant(true),
                GateOp::Buf => ins[0].clone(),
                GateOp::Not => ins[0].not(),
                GateOp::And | GateOp::Nand => {
                    let acc = try_fold!(try_and, ins, budget);
                    if g.op == GateOp::Nand {
                        acc.not()
                    } else {
                        acc
                    }
                }
                GateOp::Or | GateOp::Nor => {
                    let acc = try_fold!(try_or, ins, budget);
                    if g.op == GateOp::Nor {
                        acc.not()
                    } else {
                        acc
                    }
                }
                GateOp::Xor | GateOp::Xnor => {
                    let acc = try_fold!(try_xor, ins, budget);
                    if g.op == GateOp::Xnor {
                        acc.not()
                    } else {
                        acc
                    }
                }
                GateOp::Maj => {
                    let ab = ins[0].try_and(ins[1], budget)?;
                    let bc = ins[1].try_and(ins[2], budget)?;
                    let ac = ins[0].try_and(ins[2], budget)?;
                    ab.try_or(&bc, budget)?.try_or(&ac, budget)?
                }
                GateOp::Mux => ins[0].try_ite(ins[1], ins[2], budget)?,
            })
        })();
        let out = match out {
            Ok(o) => o,
            Err(reason) => {
                // Drop every held handle before reporting: the registry
                // must balance so the next GC can reclaim the partial
                // build.
                drop(ins);
                wire.clear();
                mgr.collect();
                return Err(BuildAborted {
                    reason,
                    gates_built: gi,
                });
            }
        };
        wire[g.output.index()] = Some(out);
        if (gi + 1) % GC_STRIDE == 0 {
            for (idx, slot) in wire.iter_mut().enumerate() {
                if last_use[idx] <= gi {
                    *slot = None;
                }
            }
            // The budgeted collection gate: a scheduled reorder due here
            // runs under the caller's budget, so even a mid-build sift is
            // abort-safe — on abort the order is consistent and the same
            // cleanup as an aborted operation applies.
            if let Err(reason) = mgr.try_collect(budget) {
                wire.clear();
                mgr.collect();
                return Err(BuildAborted {
                    reason,
                    gates_built: gi + 1,
                });
            }
        }
    }
    Ok(net
        .outputs()
        .iter()
        .map(|(_, s)| wire[s.index()].clone().expect("outputs are driven"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Network;
    use bbdd::BbddManager;
    use robdd::RobddManager;

    fn ripple2() -> Network {
        let mut net = Network::new("add2");
        let a0 = net.add_input("a0");
        let a1 = net.add_input("a1");
        let b0 = net.add_input("b0");
        let b1 = net.add_input("b1");
        let s0 = net.add_gate(GateOp::Xor, &[a0, b0]);
        let c0 = net.add_gate(GateOp::And, &[a0, b0]);
        let s1p = net.add_gate(GateOp::Xor, &[a1, b1]);
        let s1 = net.add_gate(GateOp::Xor, &[s1p, c0]);
        let c1 = net.add_gate(GateOp::Maj, &[a1, b1, c0]);
        net.set_output("s0", s0);
        net.set_output("s1", s1);
        net.set_output("c", c1);
        net
    }

    fn check_backend<M: FunctionManager>(mgr: &M) {
        let net = ripple2();
        let outs = build_network(mgr, &net);
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(o.eval(&v), *e, "vector {v:?}");
            }
        }
        // The output handles are the only registered roots still held
        // here (the builder's input/intermediate handles all dropped on
        // exit — see builder_releases_intermediate_roots below).
        drop(outs);
    }

    #[test]
    fn bbdd_build_matches_simulation() {
        check_backend(&BbddManager::with_vars(4));
    }

    #[test]
    fn robdd_build_matches_simulation() {
        check_backend(&RobddManager::with_vars(4));
    }

    #[test]
    fn governed_build_matches_ungoverned_when_unlimited() {
        let net = ripple2();
        let mgr = BbddManager::with_vars(net.num_inputs());
        let outs = try_build_network(&mgr, &net, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts");
        for m in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!(o.eval(&v), *e, "vector {v:?}");
            }
        }
    }

    #[test]
    fn governed_build_aborts_and_balances_registry() {
        let net = ripple2();
        let mgr = BbddManager::with_vars(net.num_inputs());
        let mut budget = OpBudget::unlimited().with_node_limit(1);
        let aborted = try_build_network(&mgr, &net, &mut budget)
            .expect_err("a one-node budget cannot build a 2-bit adder");
        assert_eq!(aborted.reason, OpAbort::NodeBudget);
        assert!(aborted.gates_built < net.num_gates());
        // Registry balanced, partial results reclaimed, manager usable.
        assert_eq!(mgr.external_roots(), 0);
        mgr.gc();
        let outs = build_network(&mgr, &net);
        assert_eq!(outs.len(), net.num_outputs());
    }

    #[test]
    fn builder_releases_intermediate_roots() {
        let net = ripple2();
        let mgr = BbddManager::with_vars(net.num_inputs());
        let outs = build_network(&mgr, &net);
        // Outputs are the only registered roots once the builder returns
        // (its input/intermediate handles all dropped on exit).
        assert_eq!(mgr.external_roots(), outs.len());
    }
}

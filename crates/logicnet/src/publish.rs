//! Publishing networks as an immutable serving library — the bridge from
//! the gate-level IR into the MVCC session layer (`ddcore::session`).
//!
//! [`publish_networks`] builds one or more networks over a **shared
//! variable space** (the by-name union of their primary inputs, first
//! occurrence fixing the variable index), freezes the backend, and returns
//! an `Arc`-shared [`SharedBase`] ready to fork [`Session`]s from. A
//! single network publishes its outputs under their plain port names; with
//! several networks each output is prefixed `<model>.<port>`, so two
//! implementations of the same design can be published side by side and
//! compared with an in-session CEC.
//!
//! The build runs through the ordinary owned-handle path
//! ([`crate::build::build_network_with_inputs`]), then garbage-collects
//! with only the outputs pinned, extracts the raw edges, and unwraps the
//! backend ([`ddcore::ManagerRef::into_backend`]) — nothing about the
//! library build is special-cased, and the snapshot that comes out holds
//! exactly the published functions plus their shared subgraphs.
//!
//! [`Session`]: ddcore::session::Session

use crate::build::build_network_with_inputs;
use crate::ir::Network;
use ddcore::api::{FunctionManager, ManagerRef};
use ddcore::session::{Library, SessionBackend, SharedBase};
use std::collections::HashMap;
use std::sync::Arc;

/// A library publish that could not produce a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// No network was given.
    Empty,
    /// A network failed structural validation.
    Network {
        /// Model name of the offending network.
        net: String,
        /// The validation failure, rendered.
        error: String,
    },
    /// The backend has fewer variables than the input union needs.
    TooFewVars {
        /// Variables the union of inputs requires.
        needed: usize,
        /// Variables the backend has.
        have: usize,
    },
    /// Two outputs mapped to the same published name.
    DuplicateName(String),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Empty => write!(f, "no network to publish"),
            PublishError::Network { net, error } => {
                write!(f, "network '{net}' is invalid: {error}")
            }
            PublishError::TooFewVars { needed, have } => write!(
                f,
                "backend has {have} variables, input union needs {needed}"
            ),
            PublishError::DuplicateName(n) => {
                write!(f, "duplicate published function name '{n}'")
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// The by-name union of the networks' primary inputs, in first-seen
/// order: `union[i]` becomes manager variable `i` of the published
/// snapshot, aligning same-named inputs of different networks on one
/// variable (exactly how the equivalence checker matches interfaces).
#[must_use]
pub fn input_union(nets: &[&Network]) -> Vec<String> {
    let mut union: Vec<String> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for net in nets {
        for s in net.inputs() {
            let name = net.signal_name(*s);
            if !seen.contains_key(name) {
                seen.insert(name.to_string(), union.len());
                union.push(name.to_string());
            }
        }
    }
    union
}

/// Build `nets` into `backend` and publish the result as the first
/// snapshot of a new lineage (see the module docs for the variable-space
/// and naming rules). The backend must have at least as many variables as
/// the input union; extra variables are allowed (and simply unused).
///
/// # Errors
/// Returns a [`PublishError`] when no network is given, a network fails
/// validation, the backend is too small, or two outputs collide on one
/// published name.
pub fn publish_networks_on<B: SessionBackend>(
    backend: B,
    nets: &[&Network],
) -> Result<Arc<SharedBase<B>>, PublishError> {
    if nets.is_empty() {
        return Err(PublishError::Empty);
    }
    for net in nets {
        if let Err(e) = net.check() {
            return Err(PublishError::Network {
                net: net.name().to_string(),
                error: e.to_string(),
            });
        }
    }
    let union = input_union(nets);
    let index: HashMap<&str, usize> = union
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mgr = ManagerRef::new(backend);
    if mgr.num_vars() < union.len() {
        return Err(PublishError::TooFewVars {
            needed: union.len(),
            have: mgr.num_vars(),
        });
    }
    let prefixed = nets.len() > 1;
    let mut library = Library::new(union.clone());
    let mut outputs = Vec::new();
    for net in nets {
        let inputs: Vec<_> = net
            .inputs()
            .iter()
            .map(|s| mgr.var(index[net.signal_name(*s)]))
            .collect();
        let outs = build_network_with_inputs(&mgr, net, &inputs);
        for ((port, _), f) in net.outputs().iter().zip(outs) {
            let name = if prefixed {
                format!("{}.{}", net.name(), port)
            } else {
                port.clone()
            };
            if library.insert(&name, f.edge()) {
                outputs.push(f);
            } else {
                return Err(PublishError::DuplicateName(name));
            }
        }
    }
    // Compact with only the outputs pinned, so the snapshot carries the
    // published functions and their shared subgraphs — not the build's
    // dead intermediates.
    mgr.gc();
    drop(outputs);
    let backend = mgr
        .into_backend()
        .expect("publish holds the only manager reference");
    Ok(SharedBase::publish(backend, library))
}

/// [`publish_networks_on`] over a fresh default-configured backend sized
/// to the input union.
///
/// # Errors
/// See [`publish_networks_on`].
pub fn publish_networks<B: SessionBackend>(
    nets: &[&Network],
) -> Result<Arc<SharedBase<B>>, PublishError> {
    if nets.is_empty() {
        return Err(PublishError::Empty);
    }
    let union = input_union(nets);
    publish_networks_on(B::with_vars(union.len().max(1)), nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateOp;
    use bbdd::Bbdd;
    use ddcore::govern::OpBudget;

    fn xor_net(name: &str) -> Network {
        let mut net = Network::new(name);
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateOp::Xor, &[a, b]);
        net.set_output("y", g);
        net
    }

    fn xor_net_via_ors(name: &str) -> Network {
        // a ⊕ b as (a ∨ b) ∧ ¬(a ∧ b)
        let mut net = Network::new(name);
        let a = net.add_input("a");
        let b = net.add_input("b");
        let or = net.add_gate(GateOp::Or, &[a, b]);
        let nand = net.add_gate(GateOp::Nand, &[a, b]);
        let g = net.add_gate(GateOp::And, &[or, nand]);
        net.set_output("y", g);
        net
    }

    #[test]
    fn single_network_publishes_plain_names() {
        let net = xor_net("x1");
        let base = publish_networks::<Bbdd>(&[&net]).unwrap();
        assert_eq!(base.library().names(), ["y".to_string()]);
        assert_eq!(base.library().inputs(), ["a".to_string(), "b".to_string()]);
        assert_eq!(base.eval("y", &[true, false]), Some(true));
        assert_eq!(base.eval("y", &[true, true]), Some(false));
    }

    #[test]
    fn two_networks_prefix_and_align_inputs() {
        let n1 = xor_net("golden");
        let n2 = xor_net_via_ors("revised");
        let base = publish_networks::<Bbdd>(&[&n1, &n2]).unwrap();
        assert_eq!(
            base.library().names(),
            ["golden.y".to_string(), "revised.y".to_string()]
        );
        // Same variable space → an in-session CEC proves them equal.
        let mut s = base.session();
        let out = s
            .cec("golden.y", "revised.y", &mut OpBudget::unlimited())
            .unwrap();
        assert!(out.equivalent);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let n1 = xor_net("same");
        let n2 = xor_net_via_ors("same");
        let err = publish_networks::<Bbdd>(&[&n1, &n2]).unwrap_err();
        assert_eq!(err, PublishError::DuplicateName("same.y".to_string()));
    }

    #[test]
    fn empty_publish_is_an_error() {
        assert_eq!(
            publish_networks::<Bbdd>(&[]).unwrap_err(),
            PublishError::Empty
        );
    }
}

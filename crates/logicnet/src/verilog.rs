//! Flattened structural-Verilog reader and writer — the input format of the
//! BBDD package in the paper's experimental flow (§IV-B: "a Verilog
//! description of a combinational logic network, flattened onto primitive
//! Boolean operations (XOR, AND, OR, INV, BUF)") and its output format for
//! built BBDDs.
//!
//! Supported subset: one module; scalar `input` / `output` / `wire`
//! declarations; gate primitives `and, or, nand, nor, xor, xnor, buf, not`
//! (n-ary where Verilog allows); and `assign` statements over `~ & ^ |`,
//! XNOR (`~^` / `^~`), the conditional operator and the literals `1'b0` /
//! `1'b1`. Buses are not supported — generators emit flattened bit names.

use crate::ir::{GateOp, Network, Signal};
use std::collections::HashMap;
use std::fmt;

/// Problems encountered while parsing Verilog text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    /// Approximate source line (1-based).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verilog error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serialize a [`Network`] as flattened structural Verilog.
#[must_use]
pub fn write_verilog(net: &Network) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let ins: Vec<&str> = net.inputs().iter().map(|&s| net.signal_name(s)).collect();
    let outs: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let mut ports: Vec<&str> = ins.clone();
    ports.extend(outs.iter().copied());
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(net.name()),
        ports.join(", ")
    );
    for i in &ins {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outs {
        let _ = writeln!(out, "  output {o};");
    }
    let output_ports: std::collections::HashSet<&str> = outs.iter().copied().collect();
    for g in net.gates() {
        let name = net.signal_name(g.output);
        if !output_ports.contains(name) {
            let _ = writeln!(out, "  wire {name};");
        }
    }
    for (idx, g) in net.gates().iter().enumerate() {
        let o = net.signal_name(g.output);
        let ins: Vec<&str> = g.inputs.iter().map(|&s| net.signal_name(s)).collect();
        match g.op {
            GateOp::Const0 => {
                let _ = writeln!(out, "  assign {o} = 1'b0;");
            }
            GateOp::Const1 => {
                let _ = writeln!(out, "  assign {o} = 1'b1;");
            }
            GateOp::Buf => {
                let _ = writeln!(out, "  buf g{idx} ({o}, {});", ins[0]);
            }
            GateOp::Not => {
                let _ = writeln!(out, "  not g{idx} ({o}, {});", ins[0]);
            }
            GateOp::And | GateOp::Or | GateOp::Nand | GateOp::Nor | GateOp::Xor | GateOp::Xnor => {
                let prim = match g.op {
                    GateOp::And => "and",
                    GateOp::Or => "or",
                    GateOp::Nand => "nand",
                    GateOp::Nor => "nor",
                    GateOp::Xor => "xor",
                    GateOp::Xnor => "xnor",
                    _ => unreachable!(),
                };
                let _ = writeln!(out, "  {prim} g{idx} ({o}, {});", ins.join(", "));
            }
            GateOp::Maj => {
                let (a, b, c) = (ins[0], ins[1], ins[2]);
                let _ = writeln!(
                    out,
                    "  assign {o} = ({a} & {b}) | ({b} & {c}) | ({a} & {c});"
                );
            }
            GateOp::Mux => {
                let (s, a, b) = (ins[0], ins[1], ins[2]);
                let _ = writeln!(out, "  assign {o} = {s} ? {a} : {b};");
            }
        }
    }
    for (port, s) in net.outputs() {
        let driver = net.signal_name(*s);
        if port != driver {
            let _ = writeln!(out, "  buf gout_{port} ({port}, {driver});");
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'm');
    }
    s
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LitZero,
    LitOne,
    Sym(char),
    /// `~^` or `^~`
    Xnor,
    Module,
    Endmodule,
    Input,
    Output,
    Wire,
    Assign,
    Gate(GateOp),
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, VerilogError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 2;
                continue;
            }
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
            {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            // Allow bit-select style names like a[3] as atomic identifiers.
            if i < bytes.len() && bytes[i] == '[' {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == ']' {
                    let full: String = bytes[start..=j].iter().collect();
                    i = j + 1;
                    toks.push((line, Tok::Ident(full)));
                    continue;
                }
            }
            let tok = match word.as_str() {
                "module" => Tok::Module,
                "endmodule" => Tok::Endmodule,
                "input" => Tok::Input,
                "output" => Tok::Output,
                "wire" => Tok::Wire,
                "assign" => Tok::Assign,
                "and" => Tok::Gate(GateOp::And),
                "or" => Tok::Gate(GateOp::Or),
                "nand" => Tok::Gate(GateOp::Nand),
                "nor" => Tok::Gate(GateOp::Nor),
                "xor" => Tok::Gate(GateOp::Xor),
                "xnor" => Tok::Gate(GateOp::Xnor),
                "buf" => Tok::Gate(GateOp::Buf),
                "not" => Tok::Gate(GateOp::Not),
                _ => Tok::Ident(word),
            };
            toks.push((line, tok));
            continue;
        }
        if c.is_ascii_digit() {
            // Only 1'b0 / 1'b1 literals are supported.
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '\'') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            match word.as_str() {
                "1'b0" => toks.push((line, Tok::LitZero)),
                "1'b1" => toks.push((line, Tok::LitOne)),
                _ => {
                    return Err(VerilogError {
                        line,
                        message: format!("unsupported literal {word}"),
                    })
                }
            }
            continue;
        }
        if (c == '~' && i + 1 < bytes.len() && bytes[i + 1] == '^')
            || (c == '^' && i + 1 < bytes.len() && bytes[i + 1] == '~')
        {
            toks.push((line, Tok::Xnor));
            i += 2;
            continue;
        }
        if "()&|^~?:,;=".contains(c) {
            toks.push((line, Tok::Sym(c)));
            i += 1;
            continue;
        }
        return Err(VerilogError {
            line,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(toks)
}

/// An expression tree prior to network emission.
#[derive(Debug, Clone)]
enum Expr {
    Ref(String),
    Const(bool),
    Not(Box<Expr>),
    Nary(GateOp, Vec<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn free_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ref(n) => out.push(n),
            Expr::Const(_) => {}
            Expr::Not(e) => e.free_names(out),
            Expr::Nary(_, es) => {
                for e in es {
                    e.free_names(out);
                }
            }
            Expr::Mux(s, a, b) => {
                s.free_names(out);
                a.free_names(out);
                b.free_names(out);
            }
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn err(&self, m: &str) -> VerilogError {
        VerilogError {
            line: self.line(),
            message: m.to_string(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), VerilogError> {
        match self.bump() {
            Some(Tok::Sym(x)) if x == c => Ok(()),
            _ => Err(self.err(&format!("expected {c:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, VerilogError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    // expr := ternary ; ternary := or ('?' expr ':' expr)?
    fn expr(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.or_expr()?;
        if matches!(self.peek(), Some(Tok::Sym('?'))) {
            self.bump();
            let a = self.expr()?;
            self.expect_sym(':')?;
            let b = self.expr()?;
            return Ok(Expr::Mux(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.xor_expr()?;
        while matches!(self.peek(), Some(Tok::Sym('|'))) {
            self.bump();
            let rhs = self.xor_expr()?;
            lhs = Expr::Nary(GateOp::Or, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.and_expr()?;
        loop {
            match self.peek() {
                Some(Tok::Sym('^')) => {
                    self.bump();
                    let rhs = self.and_expr()?;
                    lhs = Expr::Nary(GateOp::Xor, vec![lhs, rhs]);
                }
                Some(Tok::Xnor) => {
                    self.bump();
                    let rhs = self.and_expr()?;
                    lhs = Expr::Nary(GateOp::Xnor, vec![lhs, rhs]);
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Tok::Sym('&'))) {
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Nary(GateOp::And, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        match self.peek() {
            Some(Tok::Sym('~')) => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some(Tok::Sym('(')) => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::LitZero) => {
                self.bump();
                Ok(Expr::Const(false))
            }
            Some(Tok::LitOne) => {
                self.bump();
                Ok(Expr::Const(true))
            }
            Some(Tok::Ident(_)) => {
                let n = self.expect_ident()?;
                Ok(Expr::Ref(n))
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

struct Def {
    line: usize,
    output: String,
    expr: Expr,
}

/// Parse one flattened structural-Verilog module into a [`Network`].
///
/// # Errors
/// Returns a [`VerilogError`] for unsupported constructs, syntax problems,
/// undriven signals or combinational cycles.
pub fn parse_verilog(text: &str) -> Result<Network, VerilogError> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };

    // module name ( ports ) ;
    match p.bump() {
        Some(Tok::Module) => {}
        _ => {
            return Err(VerilogError {
                line: 1,
                message: "expected module".into(),
            })
        }
    }
    let name = p.expect_ident()?;
    p.expect_sym('(')?;
    while !matches!(p.peek(), Some(Tok::Sym(')'))) {
        match p.bump() {
            Some(Tok::Ident(_)) | Some(Tok::Sym(',')) => {}
            Some(Tok::Input) | Some(Tok::Output) | Some(Tok::Wire) => {
                return Err(p.err("ANSI-style port declarations are not supported"))
            }
            _ => return Err(p.err("malformed port list")),
        }
    }
    p.expect_sym(')')?;
    p.expect_sym(';')?;

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<Def> = Vec::new();
    let mut gate_counter = 0usize;

    loop {
        let line = p.line();
        match p.bump() {
            Some(Tok::Endmodule) => break,
            Some(Tok::Input) | Some(Tok::Output) | Some(Tok::Wire) => {
                let kind = p.toks[p.pos - 1].1.clone();
                loop {
                    match p.bump() {
                        Some(Tok::Ident(n)) => match kind {
                            Tok::Input => inputs.push(n),
                            Tok::Output => outputs.push(n),
                            _ => {}
                        },
                        Some(Tok::Sym('[')) | Some(Tok::Sym(']')) => {
                            return Err(p.err("bus declarations are not supported"))
                        }
                        _ => return Err(p.err("expected signal name")),
                    }
                    match p.bump() {
                        Some(Tok::Sym(',')) => continue,
                        Some(Tok::Sym(';')) => break,
                        _ => return Err(p.err("expected , or ;")),
                    }
                }
            }
            Some(Tok::Assign) => {
                let out = p.expect_ident()?;
                p.expect_sym('=')?;
                let e = p.expr()?;
                p.expect_sym(';')?;
                defs.push(Def {
                    line,
                    output: out,
                    expr: e,
                });
            }
            Some(Tok::Gate(op)) => {
                // optional instance name
                if matches!(p.peek(), Some(Tok::Ident(_))) {
                    let _ = p.bump();
                }
                gate_counter += 1;
                let _ = gate_counter;
                p.expect_sym('(')?;
                let out = p.expect_ident()?;
                let mut ins: Vec<Expr> = Vec::new();
                while matches!(p.peek(), Some(Tok::Sym(','))) {
                    p.bump();
                    ins.push(p.expr()?);
                }
                p.expect_sym(')')?;
                p.expect_sym(';')?;
                let expr = match op {
                    GateOp::Buf => ins
                        .first()
                        .cloned()
                        .ok_or_else(|| p.err("buf needs one input"))?,
                    GateOp::Not => Expr::Not(Box::new(
                        ins.first()
                            .cloned()
                            .ok_or_else(|| p.err("not needs one input"))?,
                    )),
                    _ => Expr::Nary(op, ins),
                };
                defs.push(Def {
                    line,
                    output: out,
                    expr,
                });
            }
            Some(other) => {
                return Err(VerilogError {
                    line,
                    message: format!("unexpected token {other:?}"),
                })
            }
            None => {
                return Err(VerilogError {
                    line,
                    message: "missing endmodule".into(),
                })
            }
        }
    }

    // Topological order over definitions.
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for (i, d) in defs.iter().enumerate() {
        if producer.insert(d.output.as_str(), i).is_some() {
            return Err(VerilogError {
                line: d.line,
                message: format!("{} driven twice", d.output),
            });
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(defs.len());
    let mut state = vec![0u8; defs.len()];
    for start in 0..defs.len() {
        if state[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        state[start] = 1;
        while let Some(&mut (node, ref mut dep)) = stack.last_mut() {
            let mut names = Vec::new();
            defs[node].expr.free_names(&mut names);
            if *dep < names.len() {
                let nm = names[*dep];
                *dep += 1;
                if let Some(&pr) = producer.get(nm) {
                    match state[pr] {
                        0 => {
                            state[pr] = 1;
                            stack.push((pr, 0));
                        }
                        1 => {
                            return Err(VerilogError {
                                line: defs[node].line,
                                message: "combinational cycle".into(),
                            })
                        }
                        _ => {}
                    }
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }

    let mut net = Network::new(&name);
    for n in &inputs {
        net.add_input(n);
    }
    for d in &defs {
        net.reserve_name(&d.output);
    }
    for &idx in &order {
        let d = &defs[idx];
        let sig = emit_expr(&mut net, &d.expr, d.line)?;
        // Bind the definition's name: a Buf keeps the declared name alive.
        if net.signal_by_name(&d.output).is_some() {
            return Err(VerilogError {
                line: d.line,
                message: format!("{} driven twice", d.output),
            });
        }
        net.add_named_gate(&d.output, GateOp::Buf, &[sig]);
    }
    for o in &outputs {
        match net.signal_by_name(o) {
            Some(s) => net.set_output(o, s),
            None => {
                return Err(VerilogError {
                    line: 0,
                    message: format!("output {o} is never driven"),
                })
            }
        }
    }
    net.check().map_err(|e| VerilogError {
        line: 0,
        message: e.to_string(),
    })?;
    Ok(net)
}

fn emit_expr(net: &mut Network, e: &Expr, line: usize) -> Result<Signal, VerilogError> {
    match e {
        Expr::Ref(n) => net.signal_by_name(n).ok_or_else(|| VerilogError {
            line,
            message: format!("undriven signal {n}"),
        }),
        Expr::Const(b) => Ok(net.add_gate(if *b { GateOp::Const1 } else { GateOp::Const0 }, &[])),
        Expr::Not(inner) => {
            let s = emit_expr(net, inner, line)?;
            Ok(net.add_gate(GateOp::Not, &[s]))
        }
        Expr::Nary(op, es) => {
            let mut sigs = Vec::with_capacity(es.len());
            for sub in es {
                sigs.push(emit_expr(net, sub, line)?);
            }
            Ok(net.add_gate(*op, &sigs))
        }
        Expr::Mux(s, a, b) => {
            let ss = emit_expr(net, s, line)?;
            let aa = emit_expr(net, a, line)?;
            let bb = emit_expr(net, b, line)?;
            Ok(net.add_gate(GateOp::Mux, &[ss, aa, bb]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_gate_primitives() {
        let src = "\
module m (a, b, c, y);
  input a; input b; input c;
  output y;
  wire t1, t2;
  xor g0 (t1, a, b);
  and g1 (t2, t1, c);
  buf g2 (y, t2);
endmodule
";
        let net = parse_verilog(src).unwrap();
        assert_eq!(net.num_inputs(), 3);
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.simulate(&v)[0], (v[0] ^ v[1]) && v[2], "{v:?}");
        }
    }

    #[test]
    fn parse_assign_expressions() {
        let src = "\
module m (a, b, s, y, z);
  input a, b, s;
  output y, z;
  assign y = s ? (a & ~b) : (a ^~ b);
  assign z = ~(a | b) ^ 1'b1;
endmodule
";
        let net = parse_verilog(src).unwrap();
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let (a, b, s) = (v[0], v[1], v[2]);
            let o = net.simulate(&v);
            let expect_y = if s { a && !b } else { !(a ^ b) };
            assert_eq!(o[0], expect_y, "y at {v:?}");
            assert_eq!(o[1], !(a || b) ^ true, "z at {v:?}");
        }
    }

    #[test]
    fn parse_out_of_order_definitions() {
        let src = "\
module m (a, y);
  input a;
  output y;
  wire t;
  buf g1 (y, t);
  not g0 (t, a);
endmodule
";
        let net = parse_verilog(src).unwrap();
        assert!(net.simulate(&[false])[0]);
        assert!(!net.simulate(&[true])[0]);
    }

    #[test]
    fn rejects_cycles_and_buses() {
        let cyc = "module m (a, y); input a; output y; assign y = y & a; endmodule";
        assert!(parse_verilog(cyc).is_err());
        let bus = "module m (a, y); input [3:0] a; output y; endmodule";
        assert!(parse_verilog(bus).is_err());
    }

    #[test]
    fn roundtrip_via_writer() {
        let mut net = Network::new("rt");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let m = net.add_gate(GateOp::Maj, &[a, b, c]);
        let x = net.add_gate(GateOp::Mux, &[a, m, c]);
        let k = net.add_gate(GateOp::Xnor, &[x, b]);
        net.set_output("y", k);
        net.check().unwrap();
        let src = write_verilog(&net);
        let parsed = parse_verilog(&src).unwrap();
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(parsed.simulate(&v), net.simulate(&v), "{v:?}");
        }
    }

    #[test]
    fn bit_select_identifiers_are_atomic() {
        let src = "\
module m (a[0], a[1], y);
  input a[0], a[1];
  output y;
  xor g (y, a[0], a[1]);
endmodule
";
        let net = parse_verilog(src).unwrap();
        assert_eq!(net.num_inputs(), 2);
        assert!(net.simulate(&[true, false])[0]);
    }
}

//! The gate-level network intermediate representation.

use std::collections::HashMap;
use std::fmt;

/// Index of a signal (net) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// Raw index (useful for dense side tables).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Primitive gate functions. `And`, `Or`, `Nand`, `Nor`, `Xor`, `Xnor`
/// accept any arity ≥ 1 (`Xor` is parity, `Xnor` its complement, matching
/// Verilog reduction semantics); `Buf`/`Not` are unary; `Maj` is the
/// 3-input majority; `Mux` takes `[sel, a, b]` and yields `sel ? a : b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Constant 0 (no inputs).
    Const0,
    /// Constant 1 (no inputs).
    Const1,
    /// Identity.
    Buf,
    /// Inverter.
    Not,
    /// n-ary conjunction.
    And,
    /// n-ary disjunction.
    Or,
    /// Complemented conjunction.
    Nand,
    /// Complemented disjunction.
    Nor,
    /// n-ary parity.
    Xor,
    /// Complemented parity.
    Xnor,
    /// 3-input majority.
    Maj,
    /// 2:1 multiplexer `[sel, a, b]`.
    Mux,
}

impl GateOp {
    /// Evaluate the gate on concrete inputs.
    ///
    /// # Panics
    /// Panics if the arity does not fit the operator.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateOp::Const0 => false,
            GateOp::Const1 => true,
            GateOp::Buf => inputs[0],
            GateOp::Not => !inputs[0],
            GateOp::And => inputs.iter().all(|&b| b),
            GateOp::Or => inputs.iter().any(|&b| b),
            GateOp::Nand => !inputs.iter().all(|&b| b),
            GateOp::Nor => !inputs.iter().any(|&b| b),
            GateOp::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateOp::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateOp::Maj => {
                assert_eq!(inputs.len(), 3, "Maj is 3-input");
                (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2])
            }
            GateOp::Mux => {
                assert_eq!(inputs.len(), 3, "Mux is 3-input [sel, a, b]");
                if inputs[0] {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
        }
    }

    /// Is the arity acceptable for this operator?
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateOp::Const0 | GateOp::Const1 => n == 0,
            GateOp::Buf | GateOp::Not => n == 1,
            GateOp::Maj | GateOp::Mux => n == 3,
            _ => n >= 1,
        }
    }
}

/// One gate: `output = op(inputs…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The gate function.
    pub op: GateOp,
    /// Input signals, in operator order.
    pub inputs: Vec<Signal>,
    /// The driven signal.
    pub output: Signal,
}

/// Structural problems detected by [`Network::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A signal is driven by two gates (or a gate drives an input).
    MultipleDrivers(String),
    /// A gate reads a signal that nothing drives.
    Undriven(String),
    /// Gate arity does not match its operator.
    BadArity(String),
    /// Gates are not in topological order.
    NotTopological(String),
    /// An output refers to an unknown signal.
    DanglingOutput(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::MultipleDrivers(s) => write!(f, "signal {s} has multiple drivers"),
            NetworkError::Undriven(s) => write!(f, "signal {s} is read but never driven"),
            NetworkError::BadArity(s) => write!(f, "gate driving {s} has invalid arity"),
            NetworkError::NotTopological(s) => {
                write!(f, "gate driving {s} reads a later-defined signal")
            }
            NetworkError::DanglingOutput(s) => write!(f, "output {s} is not a known signal"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A combinational logic network: primary inputs, primary outputs and a
/// topologically ordered gate list.
#[derive(Debug, Clone, Default)]
pub struct Network {
    name: String,
    signal_names: Vec<String>,
    by_name: HashMap<String, Signal>,
    inputs: Vec<Signal>,
    outputs: Vec<(String, Signal)>,
    gates: Vec<Gate>,
    next_tmp: usize,
    reserved: std::collections::HashSet<String>,
}

impl Network {
    /// An empty network with the given model name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Network {
            name: name.to_string(),
            ..Network::default()
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[Signal] {
        &self.inputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Primary outputs `(port name, signal)`, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The gate list, topologically ordered.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of signals (inputs + gate outputs).
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.signal_names.len()
    }

    /// Name of a signal.
    ///
    /// # Panics
    /// Panics if `s` does not belong to this network.
    #[must_use]
    pub fn signal_name(&self, s: Signal) -> &str {
        &self.signal_names[s.index()]
    }

    /// Look a signal up by name.
    #[must_use]
    pub fn signal_by_name(&self, name: &str) -> Option<Signal> {
        self.by_name.get(name).copied()
    }

    fn intern(&mut self, name: &str) -> Signal {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Signal(self.signal_names.len() as u32);
        self.signal_names.push(name.to_string());
        self.by_name.insert(name.to_string(), s);
        s
    }

    /// Declare a primary input.
    ///
    /// # Panics
    /// Panics if the name is already in use.
    pub fn add_input(&mut self, name: &str) -> Signal {
        assert!(
            !self.by_name.contains_key(name),
            "signal {name} already exists"
        );
        let s = self.intern(name);
        self.inputs.push(s);
        s
    }

    /// Reserve a name that a later [`Network::add_named_gate`] will claim,
    /// preventing auto-generated temporaries from stealing it (used by the
    /// file parsers, which see consumers before producers).
    pub fn reserve_name(&mut self, name: &str) {
        self.reserved.insert(name.to_string());
    }

    /// Add a gate with an auto-generated output name (fresh names skip any
    /// identifiers already taken or reserved).
    pub fn add_gate(&mut self, op: GateOp, inputs: &[Signal]) -> Signal {
        loop {
            let name = format!("_n{}", self.next_tmp);
            self.next_tmp += 1;
            if !self.by_name.contains_key(&name) && !self.reserved.contains(&name) {
                return self.add_named_gate(&name, op, inputs);
            }
        }
    }

    /// Add a gate driving the named signal.
    ///
    /// # Panics
    /// Panics if the name is already driven or the arity is invalid.
    pub fn add_named_gate(&mut self, name: &str, op: GateOp, inputs: &[Signal]) -> Signal {
        assert!(op.arity_ok(inputs.len()), "bad arity for {op:?}");
        assert!(
            !self.by_name.contains_key(name),
            "signal {name} already exists"
        );
        self.reserved.remove(name);
        let out = self.intern(name);
        self.gates.push(Gate {
            op,
            inputs: inputs.to_vec(),
            output: out,
        });
        out
    }

    /// Declare (or re-target) a primary output.
    pub fn set_output(&mut self, port: &str, signal: Signal) {
        for o in &mut self.outputs {
            if o.0 == port {
                o.1 = signal;
                return;
            }
        }
        self.outputs.push((port.to_string(), signal));
    }

    /// Validate the structural invariants.
    ///
    /// # Errors
    /// Returns the first [`NetworkError`] found.
    pub fn check(&self) -> Result<(), NetworkError> {
        let n = self.num_signals();
        let mut defined = vec![false; n];
        for &i in &self.inputs {
            defined[i.index()] = true;
        }
        for g in &self.gates {
            if !g.op.arity_ok(g.inputs.len()) {
                return Err(NetworkError::BadArity(
                    self.signal_name(g.output).to_string(),
                ));
            }
            for &i in &g.inputs {
                if !defined[i.index()] {
                    return Err(NetworkError::NotTopological(
                        self.signal_name(g.output).to_string(),
                    ));
                }
            }
            if defined[g.output.index()] {
                return Err(NetworkError::MultipleDrivers(
                    self.signal_name(g.output).to_string(),
                ));
            }
            defined[g.output.index()] = true;
        }
        for (port, s) in &self.outputs {
            if s.index() >= n {
                return Err(NetworkError::DanglingOutput(port.clone()));
            }
            if !defined[s.index()] {
                return Err(NetworkError::Undriven(self.signal_name(*s).to_string()));
            }
        }
        Ok(())
    }

    /// Evaluate the network on one input vector (`values[i]` drives
    /// `inputs()[i]`); returns one value per output port.
    ///
    /// # Panics
    /// Panics if `values.len() != num_inputs()`.
    #[must_use]
    pub fn simulate(&self, values: &[bool]) -> Vec<bool> {
        assert_eq!(values.len(), self.num_inputs(), "input vector width");
        let mut wire = vec![false; self.num_signals()];
        for (i, &s) in self.inputs.iter().enumerate() {
            wire[s.index()] = values[i];
        }
        let mut buf: Vec<bool> = Vec::with_capacity(4);
        for g in &self.gates {
            buf.clear();
            buf.extend(g.inputs.iter().map(|&s| wire[s.index()]));
            wire[g.output.index()] = g.op.eval(&buf);
        }
        self.outputs.iter().map(|(_, s)| wire[s.index()]).collect()
    }

    /// Gate-count histogram by operator (diagnostics / reports).
    #[must_use]
    pub fn op_histogram(&self) -> HashMap<GateOp, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.op).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cin = net.add_input("cin");
        let s1 = net.add_gate(GateOp::Xor, &[a, b]);
        let sum = net.add_gate(GateOp::Xor, &[s1, cin]);
        let cout = net.add_gate(GateOp::Maj, &[a, b, cin]);
        net.set_output("sum", sum);
        net.set_output("cout", cout);
        net
    }

    #[test]
    fn full_adder_simulates() {
        let net = full_adder();
        net.check().unwrap();
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = net.simulate(&v);
            let total = v.iter().filter(|&&b| b).count();
            assert_eq!(out[0], total % 2 == 1, "sum for {v:?}");
            assert_eq!(out[1], total >= 2, "cout for {v:?}");
        }
    }

    #[test]
    fn gateop_eval_matrix() {
        assert!(GateOp::And.eval(&[true, true, true]));
        assert!(!GateOp::And.eval(&[true, false]));
        assert!(GateOp::Nand.eval(&[true, false]));
        assert!(GateOp::Or.eval(&[false, true]));
        assert!(GateOp::Nor.eval(&[false, false]));
        assert!(GateOp::Xor.eval(&[true, true, true]));
        assert!(!GateOp::Xor.eval(&[true, true]));
        assert!(GateOp::Xnor.eval(&[true, true]));
        assert!(GateOp::Maj.eval(&[true, false, true]));
        assert!(GateOp::Mux.eval(&[true, true, false]));
        assert!(!GateOp::Mux.eval(&[false, true, false]));
        assert!(GateOp::Const1.eval(&[]));
        assert!(!GateOp::Const0.eval(&[]));
    }

    #[test]
    fn check_catches_bad_structures() {
        let mut net = Network::new("bad");
        let a = net.add_input("a");
        let g = net.add_gate(GateOp::Buf, &[a]);
        net.set_output("y", g);
        assert!(net.check().is_ok());

        // Non-topological: construct via direct gate pushes is prevented by
        // the builder, so fabricate a forward reference through Signal.
        let mut net2 = Network::new("fwd");
        let a2 = net2.add_input("a");
        let ghost = Signal(5);
        net2.gates.push(Gate {
            op: GateOp::And,
            inputs: vec![a2, ghost],
            output: Signal(2),
        });
        net2.signal_names.push("g_out".into());
        net2.signal_names.push("x1".into());
        net2.signal_names.push("x2".into());
        net2.signal_names.push("x3".into());
        net2.signal_names.push("x4".into());
        assert!(net2.check().is_err());
    }

    #[test]
    fn histogram_counts_ops() {
        let net = full_adder();
        let h = net.op_histogram();
        assert_eq!(h[&GateOp::Xor], 2);
        assert_eq!(h[&GateOp::Maj], 1);
    }

    #[test]
    #[should_panic(expected = "bad arity")]
    fn arity_is_enforced() {
        let mut net = Network::new("x");
        let a = net.add_input("a");
        let _ = net.add_gate(GateOp::Maj, &[a, a]);
    }
}

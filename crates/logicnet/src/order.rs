//! Static variable-ordering heuristics computed from network structure,
//! **before** any diagram node is built.
//!
//! The paper's experimental setup feeds both packages "the initial order
//! provided in the file" — declaration order. That is frequently terrible
//! (bit-sliced buses declared operand-by-operand make a comparator
//! exponential), and both CUDD-era practice and the BBDD package predate
//! the build with a cheap structural pass. Two classics are provided:
//!
//! * [`fanin_order`] — depth-first traversal from the primary outputs,
//!   recording each primary input at first visit. Inputs feeding the same
//!   cone land next to each other, which is what chain-structured circuits
//!   (adders, comparators) want.
//! * [`force_order`] — the FORCE heuristic of Aloul–Markov–Sakallah: the
//!   netlist as a hypergraph (one hyperedge per gate, spanning its pins),
//!   vertices iteratively pulled to the centre of gravity of their edges,
//!   re-ranked, and the lowest-total-span placement kept. Linear-time per
//!   iteration and order-of-magnitude cheaper than sifting, yet it
//!   recovers the interleaved order for shared-bus structures.
//!
//! Both are deterministic (stable tie-breaks on declaration index) and
//! return a permutation of *input indices* — position `k` of the result
//! names the input that should sit at diagram position `k` (top first).
//! [`apply_static_order`] installs that permutation into any
//! [`FunctionManager`] (the builder binds network input `i` to manager
//! variable `i`, so the input permutation *is* the variable permutation).

use crate::ir::Network;
use ddcore::api::FunctionManager;
use std::fmt;
use std::str::FromStr;

/// Which static ordering heuristic to run before building.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaticOrder {
    /// Keep declaration order ("the initial order provided in the file").
    #[default]
    None,
    /// Depth-first fan-in traversal from the primary outputs.
    Fanin,
    /// FORCE: iterative hypergraph centre-of-gravity placement.
    Force,
}

impl fmt::Display for StaticOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StaticOrder::None => "none",
            StaticOrder::Fanin => "fanin",
            StaticOrder::Force => "force",
        })
    }
}

impl FromStr for StaticOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(StaticOrder::None),
            "fanin" => Ok(StaticOrder::Fanin),
            "force" => Ok(StaticOrder::Force),
            other => Err(format!(
                "unknown static order {other:?} (expected none|fanin|force)"
            )),
        }
    }
}

/// Fan-in DFS order: walk each primary output's cone depth-first
/// (leftmost fan-in first), recording primary inputs at first visit;
/// inputs unreachable from any output keep declaration order at the end.
///
/// Returns a permutation of `0..net.num_inputs()` over input indices.
#[must_use]
pub fn fanin_order(net: &Network) -> Vec<usize> {
    let n = net.num_inputs();
    let nsig = net.num_signals();
    let mut input_index = vec![usize::MAX; nsig];
    for (i, s) in net.inputs().iter().enumerate() {
        input_index[s.index()] = i;
    }
    let mut driver = vec![usize::MAX; nsig];
    for (gi, g) in net.gates().iter().enumerate() {
        driver[g.output.index()] = gi;
    }
    let mut seen = vec![false; nsig];
    let mut taken = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for (_, out) in net.outputs() {
        stack.push(*out);
        while let Some(s) = stack.pop() {
            if seen[s.index()] {
                continue;
            }
            seen[s.index()] = true;
            let ii = input_index[s.index()];
            if ii != usize::MAX {
                order.push(ii);
                taken[ii] = true;
                continue;
            }
            let gi = driver[s.index()];
            if gi != usize::MAX {
                // Reverse so the leftmost fan-in is popped (visited) first.
                for &inp in net.gates()[gi].inputs.iter().rev() {
                    if !seen[inp.index()] {
                        stack.push(inp);
                    }
                }
            }
        }
    }
    for (i, taken) in taken.iter().enumerate() {
        if !taken {
            order.push(i);
        }
    }
    order
}

/// FORCE order (Aloul–Markov–Sakallah, ICCAD'03): every gate is a
/// hyperedge spanning its input and output pins; each iteration moves
/// every signal to the mean centre of gravity of its incident edges,
/// re-ranks all signals (stable tie-break on declaration index), and
/// measures the total hyperedge span. The lowest-span placement seen wins.
///
/// Returns a permutation of `0..net.num_inputs()` over input indices.
#[must_use]
pub fn force_order(net: &Network) -> Vec<usize> {
    let n = net.num_inputs();
    let nsig = net.num_signals();
    if n == 0 || net.num_gates() == 0 {
        return (0..n).collect();
    }
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); nsig];
    for (gi, g) in net.gates().iter().enumerate() {
        for &s in &g.inputs {
            incident[s.index()].push(gi as u32);
        }
        incident[g.output.index()].push(gi as u32);
    }
    let mut pos: Vec<f64> = (0..nsig).map(|i| i as f64).collect();
    let extract = |pos: &[f64]| -> Vec<usize> {
        let mut inputs: Vec<usize> = (0..n).collect();
        inputs.sort_by(|&a, &b| {
            let (pa, pb) = (pos[net.inputs()[a].index()], pos[net.inputs()[b].index()]);
            pa.partial_cmp(&pb)
                .expect("finite positions")
                .then(a.cmp(&b))
        });
        inputs
    };
    let span_of = |pos: &[f64]| -> f64 {
        net.gates()
            .iter()
            .map(|g| {
                let (mut lo, mut hi) = (pos[g.output.index()], pos[g.output.index()]);
                for &s in &g.inputs {
                    lo = lo.min(pos[s.index()]);
                    hi = hi.max(pos[s.index()]);
                }
                hi - lo
            })
            .sum()
    };
    let mut best_span = span_of(&pos);
    let mut best = extract(&pos);
    // The authors report convergence in O(log n) sweeps; a small constant
    // factor on top keeps the pass cheap yet insensitive to the start.
    let iters = usize::try_from((nsig.max(2)).ilog2()).unwrap() * 2 + 6;
    let mut cog = vec![0.0f64; net.num_gates()];
    for _ in 0..iters {
        for (gi, g) in net.gates().iter().enumerate() {
            let mut sum = pos[g.output.index()];
            for &s in &g.inputs {
                sum += pos[s.index()];
            }
            cog[gi] = sum / (g.inputs.len() + 1) as f64;
        }
        let next: Vec<f64> = (0..nsig)
            .map(|si| {
                if incident[si].is_empty() {
                    pos[si]
                } else {
                    incident[si].iter().map(|&gi| cog[gi as usize]).sum::<f64>()
                        / incident[si].len() as f64
                }
            })
            .collect();
        let mut ranked: Vec<usize> = (0..nsig).collect();
        ranked.sort_by(|&a, &b| {
            next[a]
                .partial_cmp(&next[b])
                .expect("finite positions")
                .then(a.cmp(&b))
        });
        for (rank, &si) in ranked.iter().enumerate() {
            pos[si] = rank as f64;
        }
        let span = span_of(&pos);
        if span < best_span {
            best_span = span;
            best = extract(&pos);
        }
    }
    best
}

/// Run the chosen heuristic; `None` for [`StaticOrder::None`].
#[must_use]
pub fn static_order(net: &Network, which: StaticOrder) -> Option<Vec<usize>> {
    match which {
        StaticOrder::None => None,
        StaticOrder::Fanin => Some(fanin_order(net)),
        StaticOrder::Force => Some(force_order(net)),
    }
}

/// Compute and install a static order into `mgr` before building `net`.
///
/// The builder binds network input `i` to manager variable `i`, so the
/// input permutation is installed directly (manager variables beyond the
/// network's inputs keep their relative order at the bottom). Returns the
/// input permutation applied, or `None` when `which` is
/// [`StaticOrder::None`] or the backend does not support reordering.
///
/// # Panics
/// Panics if the manager has fewer variables than the network has inputs.
pub fn apply_static_order<M: FunctionManager>(
    mgr: &M,
    net: &Network,
    which: StaticOrder,
) -> Option<Vec<usize>> {
    let ord = static_order(net, which)?;
    assert!(
        mgr.num_vars() >= ord.len(),
        "manager must have one variable per network input"
    );
    let mut full = ord.clone();
    full.extend(ord.len()..mgr.num_vars());
    mgr.set_order(&full).then_some(ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateOp;

    fn assert_permutation(ord: &[usize], n: usize) {
        assert_eq!(ord.len(), n);
        let mut seen = vec![false; n];
        for &i in ord {
            assert!(i < n && !seen[i], "not a permutation: {ord:?}");
            seen[i] = true;
        }
    }

    /// Equality comparator declared operand-by-operand (a0..ak b0..bk) —
    /// the worst declaration order for a diagram, the easiest win for a
    /// structural heuristic.
    fn bad_order_comparator(k: usize) -> Network {
        let mut net = Network::new("cmp");
        let a: Vec<_> = (0..k).map(|i| net.add_input(&format!("a{i}"))).collect();
        let b: Vec<_> = (0..k).map(|i| net.add_input(&format!("b{i}"))).collect();
        let eqs: Vec<_> = (0..k)
            .map(|i| net.add_gate(GateOp::Xnor, &[a[i], b[i]]))
            .collect();
        let out = net.add_gate(GateOp::And, &eqs);
        net.set_output("eq", out);
        net
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 11
    }

    fn random_net(seed: u64, n_in: usize, n_gates: usize) -> Network {
        let mut net = Network::new("rand");
        let mut sigs: Vec<_> = (0..n_in).map(|i| net.add_input(&format!("x{i}"))).collect();
        let mut st = seed | 1;
        for _ in 0..n_gates {
            let a = sigs[lcg(&mut st) as usize % sigs.len()];
            let b = sigs[lcg(&mut st) as usize % sigs.len()];
            let op = match lcg(&mut st) % 4 {
                0 => GateOp::And,
                1 => GateOp::Or,
                2 => GateOp::Xor,
                _ => GateOp::Nand,
            };
            sigs.push(net.add_gate(op, &[a, b]));
        }
        net.set_output("y", *sigs.last().unwrap());
        // A second output deep in the middle exercises multi-cone DFS.
        net.set_output("z", sigs[n_in + n_gates / 2]);
        net
    }

    #[test]
    fn heuristics_are_valid_and_deterministic_on_random_nets() {
        for seed in 0..8u64 {
            let net = random_net(seed, 9, 40);
            net.check().unwrap();
            for which in [StaticOrder::Fanin, StaticOrder::Force] {
                let o1 = static_order(&net, which).unwrap();
                let o2 = static_order(&net, which).unwrap();
                assert_permutation(&o1, net.num_inputs());
                assert_eq!(o1, o2, "{which} must be deterministic (seed {seed})");
            }
        }
        assert!(static_order(&random_net(1, 5, 10), StaticOrder::None).is_none());
    }

    #[test]
    fn heuristics_are_valid_on_blif_circuits() {
        for name in ["misex1", "comp", "count", "C17"] {
            let net =
                crate::blif::parse_blif(&crate::blif::write_blif(&benchgen_free_circuit(name)))
                    .unwrap();
            for which in [StaticOrder::Fanin, StaticOrder::Force] {
                let ord = static_order(&net, which).unwrap();
                assert_permutation(&ord, net.num_inputs());
            }
        }
    }

    /// A few committed circuits without depending on `benchgen` (which
    /// depends on this crate).
    fn benchgen_free_circuit(name: &str) -> Network {
        match name {
            "misex1" => bad_order_comparator(4),
            "comp" => bad_order_comparator(8),
            "count" => random_net(7, 8, 30),
            "C17" => {
                let mut net = Network::new("C17");
                let i1 = net.add_input("G1");
                let i2 = net.add_input("G2");
                let i3 = net.add_input("G3");
                let i6 = net.add_input("G6");
                let i7 = net.add_input("G7");
                let g10 = net.add_gate(GateOp::Nand, &[i1, i3]);
                let g11 = net.add_gate(GateOp::Nand, &[i3, i6]);
                let g16 = net.add_gate(GateOp::Nand, &[i2, g11]);
                let g19 = net.add_gate(GateOp::Nand, &[g11, i7]);
                let g22 = net.add_gate(GateOp::Nand, &[g10, g16]);
                let g23 = net.add_gate(GateOp::Nand, &[g16, g19]);
                net.set_output("G22", g22);
                net.set_output("G23", g23);
                net
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn fanin_interleaves_chained_cones() {
        // A ripple chain out = ((a0 op b0) op (a1 op b1)) … visits the
        // slices in chain order, so fanin order interleaves the operands.
        let net = bad_order_comparator(4);
        let ord = fanin_order(&net);
        assert_eq!(ord, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn force_beats_declaration_order_on_comparator() {
        use crate::build::build_network;
        use ddcore::api::BooleanFunction;
        use robdd::RobddManager;

        let k = 7;
        let net = bad_order_comparator(k);
        let n = net.num_inputs();

        let declared = RobddManager::with_vars(n);
        let outs_a = build_network(&declared, &net);
        let declared_nodes = declared.shared_node_count(&outs_a);

        let forced = RobddManager::with_vars(n);
        let applied = apply_static_order(&forced, &net, StaticOrder::Force)
            .expect("robdd supports set_order");
        assert_permutation(&applied, n);
        let outs_b = build_network(&forced, &net);
        let forced_nodes = forced.shared_node_count(&outs_b);

        // Declaration order (a0..a6 b0..b6) is exponential (2^k growth in
        // the middle); FORCE recovers an interleaved order that is linear.
        assert!(
            forced_nodes < declared_nodes,
            "FORCE must beat declaration order: {forced_nodes} vs {declared_nodes}"
        );
        // Regression pin: the interleaved comparator is 3 nodes per slice.
        assert!(
            forced_nodes <= 3 * k + 2,
            "FORCE order must be near-linear, got {forced_nodes}"
        );

        // Semantics unchanged by the pre-build reorder.
        for m in 0..(1u32 << n) {
            let v: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let expect = net.simulate(&v);
            assert_eq!(outs_a[0].eval(&v), expect[0]);
            assert_eq!(outs_b[0].eval(&v), expect[0]);
        }
    }

    #[test]
    fn apply_none_is_a_no_op() {
        use bbdd::BbddManager;
        let net = bad_order_comparator(3);
        let mgr = BbddManager::with_vars(net.num_inputs());
        assert!(apply_static_order(&mgr, &net, StaticOrder::None).is_none());
        assert_eq!(mgr.variable_order(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn parsing_round_trips() {
        for which in [StaticOrder::None, StaticOrder::Fanin, StaticOrder::Force] {
            assert_eq!(which.to_string().parse::<StaticOrder>().unwrap(), which);
        }
        assert!("quantum".parse::<StaticOrder>().is_err());
    }
}

//! BLIF (Berkeley Logic Interchange Format) reader and writer — the input
//! format the paper feeds to CUDD (§IV-B).
//!
//! The supported subset is combinational BLIF: `.model`, `.inputs`,
//! `.outputs`, `.names` (single-output covers with `0/1/-` cubes and a
//! constant on/off value) and `.end`. Latches and hierarchy are rejected
//! with a clear error.

use crate::ir::{GateOp, Network, Signal};
use std::collections::HashMap;
use std::fmt;

/// Problems encountered while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BLIF error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BlifError {}

struct NamesEntry {
    line: usize,
    inputs: Vec<String>,
    output: String,
    cubes: Vec<String>,
    value: bool,
}

/// Parse a BLIF model into a [`Network`].
///
/// # Errors
/// Returns a [`BlifError`] for syntax problems, unsupported constructs
/// (latches, subcircuits), combinational cycles or undriven signals.
pub fn parse_blif(text: &str) -> Result<Network, BlifError> {
    let err = |line: usize, m: &str| BlifError {
        line,
        message: m.to_string(),
    };
    // Join continuation lines, strip comments.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut chunk = no_comment.trim_end().to_string();
        let continued = chunk.ends_with('\\');
        if continued {
            chunk.pop();
        }
        if pending.is_empty() {
            pending_line = line_no;
        }
        pending.push_str(&chunk);
        pending.push(' ');
        if !continued {
            let s = pending.trim().to_string();
            if !s.is_empty() {
                logical.push((pending_line, s));
            }
            pending.clear();
        }
    }

    let mut model_name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut names: Vec<NamesEntry> = Vec::new();
    let mut current: Option<NamesEntry> = None;

    for (line, s) in logical {
        let tokens: Vec<&str> = s.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].starts_with('.') {
            if let Some(entry) = current.take() {
                names.push(entry);
            }
            match tokens[0] {
                ".model" => {
                    if let Some(n) = tokens.get(1) {
                        model_name = (*n).to_string();
                    }
                }
                ".inputs" => inputs.extend(tokens[1..].iter().map(|t| t.to_string())),
                ".outputs" => outputs.extend(tokens[1..].iter().map(|t| t.to_string())),
                ".names" => {
                    if tokens.len() < 2 {
                        return Err(err(line, ".names needs at least an output"));
                    }
                    let output = tokens[tokens.len() - 1].to_string();
                    let ins = tokens[1..tokens.len() - 1]
                        .iter()
                        .map(|t| t.to_string())
                        .collect();
                    current = Some(NamesEntry {
                        line,
                        inputs: ins,
                        output,
                        cubes: Vec::new(),
                        value: true,
                    });
                }
                ".end" => {}
                ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                    return Err(err(
                        line,
                        "only combinational single-model BLIF is supported",
                    ))
                }
                _ => return Err(err(line, &format!("unknown directive {}", tokens[0]))),
            }
        } else {
            // A cover row for the open .names.
            let entry = current
                .as_mut()
                .ok_or_else(|| err(line, "cube outside .names"))?;
            let (mask, value) = if entry.inputs.is_empty() {
                ("".to_string(), tokens[0])
            } else {
                if tokens.len() != 2 {
                    return Err(err(line, "cube must be <mask> <value>"));
                }
                (tokens[0].to_string(), tokens[1])
            };
            if mask.len() != entry.inputs.len() {
                return Err(err(line, "cube width does not match input count"));
            }
            if mask.chars().any(|c| !matches!(c, '0' | '1' | '-')) {
                return Err(err(line, "cube characters must be 0/1/-"));
            }
            let v = match value {
                "1" => true,
                "0" => false,
                _ => return Err(err(line, "cover value must be 0 or 1")),
            };
            if !entry.cubes.is_empty() && v != entry.value {
                return Err(err(line, "mixed cover polarities are not supported"));
            }
            entry.value = v;
            entry.cubes.push(mask);
        }
    }
    if let Some(entry) = current.take() {
        names.push(entry);
    }

    // Topologically order the .names blocks.
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for (i, e) in names.iter().enumerate() {
        if producer.insert(e.output.as_str(), i).is_some() {
            return Err(err(e.line, &format!("{} driven twice", e.output)));
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(names.len());
    let mut state = vec![0u8; names.len()]; // 0 new, 1 visiting, 2 done
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..names.len() {
        if state[start] != 0 {
            continue;
        }
        stack.push((start, 0));
        state[start] = 1;
        while let Some(&mut (node, ref mut dep)) = stack.last_mut() {
            let entry = &names[node];
            if *dep < entry.inputs.len() {
                let input = &entry.inputs[*dep];
                *dep += 1;
                if let Some(&p) = producer.get(input.as_str()) {
                    match state[p] {
                        0 => {
                            state[p] = 1;
                            stack.push((p, 0));
                        }
                        1 => return Err(err(entry.line, "combinational cycle")),
                        _ => {}
                    }
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }

    // Emit the network. Reserve every cover's output name first so that
    // intermediate gates never steal a name used later in the file.
    let mut net = Network::new(&model_name);
    for name in &inputs {
        net.add_input(name);
    }
    for e in &names {
        net.reserve_name(&e.output);
    }
    for &idx in &order {
        let e = &names[idx];
        let mut ins: Vec<Signal> = Vec::with_capacity(e.inputs.len());
        for name in &e.inputs {
            match net.signal_by_name(name) {
                Some(s) => ins.push(s),
                None => return Err(err(e.line, &format!("undriven signal {name}"))),
            }
        }
        let cover = emit_cover(&mut net, &ins, &e.cubes, e.value);
        let out = net.add_named_gate(&e.output, GateOp::Buf, &[cover]);
        let _ = out;
    }
    for name in &outputs {
        match net.signal_by_name(name) {
            Some(s) => net.set_output(name, s),
            None => {
                return Err(BlifError {
                    line: 0,
                    message: format!("output {name} is never driven"),
                })
            }
        }
    }
    net.check().map_err(|e| BlifError {
        line: 0,
        message: e.to_string(),
    })?;
    Ok(net)
}

/// Build the sum-of-cubes for one `.names` cover; `value == false` means
/// the rows describe the off-set.
fn emit_cover(net: &mut Network, ins: &[Signal], cubes: &[String], value: bool) -> Signal {
    if cubes.is_empty() {
        // Empty cover: constant 0 when value=1 convention, constant 0
        // on-set — i.e. the constant `!value`… BLIF defines an empty cover
        // as constant 0; a single empty cube line "1" is constant 1.
        return net.add_gate(GateOp::Const0, &[]);
    }
    let mut terms: Vec<Signal> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut lits: Vec<Signal> = Vec::new();
        for (i, ch) in cube.chars().enumerate() {
            match ch {
                '1' => lits.push(ins[i]),
                '0' => lits.push(net.add_gate(GateOp::Not, &[ins[i]])),
                _ => {}
            }
        }
        let term = match lits.len() {
            0 => net.add_gate(GateOp::Const1, &[]),
            1 => lits[0],
            _ => net.add_gate(GateOp::And, &lits),
        };
        terms.push(term);
    }
    let on = match terms.len() {
        1 => terms[0],
        _ => net.add_gate(GateOp::Or, &terms),
    };
    if value {
        on
    } else {
        net.add_gate(GateOp::Not, &[on])
    }
}

/// Serialize a [`Network`] as BLIF.
///
/// Every gate becomes a `.names` cover; `Maj` and `Mux` expand to their
/// standard covers.
#[must_use]
pub fn write_blif(net: &Network) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", net.name());
    let in_names: Vec<&str> = net.inputs().iter().map(|&s| net.signal_name(s)).collect();
    let _ = writeln!(out, ".inputs {}", in_names.join(" "));
    let out_names: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(out, ".outputs {}", out_names.join(" "));

    for g in net.gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|&s| net.signal_name(s)).collect();
        let o = net.signal_name(g.output);
        let _ = writeln!(out, ".names {} {}", ins.join(" "), o);
        let n = ins.len();
        match g.op {
            GateOp::Const0 => {}
            GateOp::Const1 => {
                let _ = writeln!(out, "1");
            }
            GateOp::Buf => {
                let _ = writeln!(out, "1 1");
            }
            GateOp::Not => {
                let _ = writeln!(out, "0 1");
            }
            GateOp::And => {
                let _ = writeln!(out, "{} 1", "1".repeat(n));
            }
            GateOp::Nand => {
                for i in 0..n {
                    let mut cube = vec!['-'; n];
                    cube[i] = '0';
                    let _ = writeln!(out, "{} 1", cube.iter().collect::<String>());
                }
            }
            GateOp::Or => {
                for i in 0..n {
                    let mut cube = vec!['-'; n];
                    cube[i] = '1';
                    let _ = writeln!(out, "{} 1", cube.iter().collect::<String>());
                }
            }
            GateOp::Nor => {
                let _ = writeln!(out, "{} 1", "0".repeat(n));
            }
            GateOp::Xor | GateOp::Xnor => {
                assert!(n <= 16, "XOR cover explosion guard");
                let want_odd = g.op == GateOp::Xor;
                for m in 0..(1u32 << n) {
                    let ones = m.count_ones() as usize;
                    if (ones % 2 == 1) == want_odd {
                        let cube: String = (0..n)
                            .map(|i| if (m >> i) & 1 == 1 { '1' } else { '0' })
                            .collect();
                        let _ = writeln!(out, "{cube} 1");
                    }
                }
            }
            GateOp::Maj => {
                let _ = writeln!(out, "11- 1");
                let _ = writeln!(out, "1-1 1");
                let _ = writeln!(out, "-11 1");
            }
            GateOp::Mux => {
                let _ = writeln!(out, "11- 1");
                let _ = writeln!(out, "0-1 1");
            }
        }
    }
    // Output ports that are not directly the driven signal name need a
    // forwarding buffer.
    for (port, s) in net.outputs() {
        if port != net.signal_name(*s) {
            let _ = writeln!(out, ".names {} {}", net.signal_name(*s), port);
            let _ = writeln!(out, "1 1");
        }
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateOp;

    #[test]
    fn parse_simple_model() {
        let text = "\
# a comment
.model test
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
";
        let net = parse_blif(text).unwrap();
        assert_eq!(net.name(), "test");
        assert_eq!(net.num_inputs(), 3);
        assert_eq!(net.num_outputs(), 1);
        // y = (a & b) | c
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let y = net.simulate(&v)[0];
            assert_eq!(y, (v[0] && v[1]) || v[2], "{v:?}");
        }
    }

    #[test]
    fn parse_offset_cover_and_constants() {
        let text = "\
.model t
.inputs a b
.outputs y k0 k1
.names a b y
11 0
.names k0
.names k1
1
.end
";
        let net = parse_blif(text).unwrap();
        for m in 0..4u32 {
            let v: Vec<bool> = (0..2).map(|i| (m >> i) & 1 == 1).collect();
            let o = net.simulate(&v);
            assert_eq!(o[0], !(v[0] && v[1]), "nand via off-set");
            assert!(!o[1], "empty cover is constant 0");
            assert!(o[2], "single 1 row is constant 1");
        }
    }

    #[test]
    fn parse_accepts_out_of_order_names() {
        let text = "\
.model ooo
.inputs a b
.outputs y
.names t1 t2 y
11 1
.names a t1
0 1
.names b t2
0 1
.end
";
        let net = parse_blif(text).unwrap();
        let v = net.simulate(&[false, false]);
        assert!(v[0], "!a & !b at 00");
    }

    #[test]
    fn rejects_latches_and_cycles() {
        assert!(parse_blif(".model x\n.latch a b\n.end").is_err());
        let cyc = "\
.model c
.inputs a
.outputs y
.names y a y
11 1
.end
";
        assert!(parse_blif(cyc).is_err());
    }

    #[test]
    fn roundtrip_all_gate_ops() {
        let mut net = Network::new("rt");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let outs = vec![
            net.add_gate(GateOp::And, &[a, b]),
            net.add_gate(GateOp::Or, &[a, b, c]),
            net.add_gate(GateOp::Nand, &[a, c]),
            net.add_gate(GateOp::Nor, &[a, b]),
            net.add_gate(GateOp::Xor, &[a, b, c]),
            net.add_gate(GateOp::Xnor, &[a, b]),
            net.add_gate(GateOp::Not, &[c]),
            net.add_gate(GateOp::Buf, &[a]),
            net.add_gate(GateOp::Maj, &[a, b, c]),
            net.add_gate(GateOp::Mux, &[a, b, c]),
            net.add_gate(GateOp::Const1, &[]),
            net.add_gate(GateOp::Const0, &[]),
        ];
        for (i, s) in outs.iter().enumerate() {
            net.set_output(&format!("o{i}"), *s);
        }
        net.check().unwrap();
        let text = write_blif(&net);
        let parsed = parse_blif(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), net.num_outputs());
        for m in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(parsed.simulate(&v), net.simulate(&v), "vector {v:?}");
        }
    }
}

//! Bit-parallel simulation and randomized equivalence checking.
//!
//! Networks are compared 64 assignments at a time through the word-level
//! interpreter [`simulate_words`]; small networks can be checked
//! exhaustively. Used throughout the test suite to cross-validate
//! parsers, generators, decision diagrams and the synthesis flow.

use crate::ir::{GateOp, Network};

/// A tiny deterministic SplitMix64 generator (keeps this crate free of
/// external dependencies).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// No difference found by the performed checks.
    Indistinguishable,
    /// A concrete differing assignment (input vector, output index).
    Differs {
        /// The distinguishing input vector.
        inputs: Vec<bool>,
        /// Index of the first differing output.
        output: usize,
    },
}

/// Evaluate `net` on 64 assignment lanes at once: `input_words[i]` holds
/// lane-bit `l` = value of input `i` under assignment `l`, and the result
/// holds one word per output port. This is the bit-parallel interpreter
/// the randomized equivalence checks run on (the decision-diagram
/// builders in [`crate::build`] share the same gate semantics through the
/// `ddcore::api` traits).
///
/// # Panics
/// Panics if the network fails [`Network::check`] or `input_words` is
/// shorter than the input list.
#[must_use]
pub fn simulate_words(net: &Network, input_words: &[u64]) -> Vec<u64> {
    net.check().expect("network must be structurally valid");
    assert!(
        input_words.len() >= net.num_inputs(),
        "one lane-word per network input required"
    );
    let mut wire: Vec<u64> = vec![0; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        wire[s.index()] = input_words[i];
    }
    for g in net.gates() {
        let v = |k: usize| wire[g.inputs[k].index()];
        wire[g.output.index()] = match g.op {
            GateOp::Const0 => 0,
            GateOp::Const1 => !0,
            GateOp::Buf => v(0),
            GateOp::Not => !v(0),
            GateOp::And => g.inputs.iter().fold(!0, |a, s| a & wire[s.index()]),
            GateOp::Nand => !g.inputs.iter().fold(!0, |a, s| a & wire[s.index()]),
            GateOp::Or => g.inputs.iter().fold(0, |a, s| a | wire[s.index()]),
            GateOp::Nor => !g.inputs.iter().fold(0, |a, s| a | wire[s.index()]),
            GateOp::Xor => g.inputs.iter().fold(0, |a, s| a ^ wire[s.index()]),
            GateOp::Xnor => !g.inputs.iter().fold(0, |a, s| a ^ wire[s.index()]),
            GateOp::Maj => (v(0) & v(1)) | (v(1) & v(2)) | (v(0) & v(2)),
            GateOp::Mux => (v(0) & v(1)) | (!v(0) & v(2)),
        };
    }
    net.outputs().iter().map(|(_, s)| wire[s.index()]).collect()
}

/// Compare two networks on `words × 64` random assignments.
///
/// Both networks must have identical input and output counts (ports are
/// matched positionally).
///
/// # Panics
/// Panics if the interfaces differ in arity.
#[must_use]
pub fn random_equivalence(a: &Network, b: &Network, words: usize, seed: u64) -> Equivalence {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let n = a.num_inputs();
    let mut rng = SplitMix64::new(seed);
    for _ in 0..words.max(1) {
        let input_words: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let oa = simulate_words(a, &input_words);
        let ob = simulate_words(b, &input_words);
        for (oi, (wa, wb)) in oa.iter().zip(&ob).enumerate() {
            let diff = wa ^ wb;
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let inputs: Vec<bool> = (0..n).map(|i| (input_words[i] >> lane) & 1 == 1).collect();
                return Equivalence::Differs { inputs, output: oi };
            }
        }
    }
    Equivalence::Indistinguishable
}

/// Exhaustively compare two networks (up to 24 inputs).
///
/// # Panics
/// Panics if the interfaces differ or the input count exceeds 24.
#[must_use]
pub fn exhaustive_equivalence(a: &Network, b: &Network) -> Equivalence {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let n = a.num_inputs();
    assert!(n <= 24, "exhaustive check limited to 24 inputs");
    for m in 0..(1u64 << n) {
        let v: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        let oa = a.simulate(&v);
        let ob = b.simulate(&v);
        if let Some(output) = oa.iter().zip(&ob).position(|(x, y)| x != y) {
            return Equivalence::Differs { inputs: v, output };
        }
    }
    Equivalence::Indistinguishable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{GateOp, Network};

    fn xor_net() -> Network {
        let mut net = Network::new("x1");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate(GateOp::Xor, &[a, b]);
        net.set_output("y", y);
        net
    }

    fn xor_via_nands() -> Network {
        let mut net = Network::new("x2");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let nab = net.add_gate(GateOp::Nand, &[a, b]);
        let t1 = net.add_gate(GateOp::Nand, &[a, nab]);
        let t2 = net.add_gate(GateOp::Nand, &[b, nab]);
        let y = net.add_gate(GateOp::Nand, &[t1, t2]);
        net.set_output("y", y);
        net
    }

    #[test]
    fn equivalent_implementations_agree() {
        let (a, b) = (xor_net(), xor_via_nands());
        assert_eq!(
            random_equivalence(&a, &b, 4, 42),
            Equivalence::Indistinguishable
        );
        assert_eq!(
            exhaustive_equivalence(&a, &b),
            Equivalence::Indistinguishable
        );
    }

    #[test]
    fn different_functions_are_distinguished() {
        let a = xor_net();
        let mut b = Network::new("andnet");
        let x = b.add_input("a");
        let y = b.add_input("b");
        let g = b.add_gate(GateOp::And, &[x, y]);
        b.set_output("y", g);
        match random_equivalence(&a, &b, 4, 7) {
            Equivalence::Differs { inputs, output } => {
                assert_eq!(output, 0);
                // Verify the counterexample is genuine.
                assert_ne!(a.simulate(&inputs), b.simulate(&inputs));
            }
            Equivalence::Indistinguishable => panic!("must differ"),
        }
        assert!(matches!(
            exhaustive_equivalence(&a, &b),
            Equivalence::Differs { .. }
        ));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut r1 = SplitMix64::new(1);
        let mut r2 = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}

//! The [`ddcore::api`] backend implementations for the ROBDD baseline.
//!
//! Mirrors `bbdd::api`: [`Robdd`] and [`ParRobdd`] implement
//! [`RawManager`], deriving the [`FunctionManager`](ddcore::api::FunctionManager) /
//! [`BooleanFunction`](ddcore::api::BooleanFunction) pair through the
//! shared generic machinery — no per-crate handle code.
//!
//! ```
//! use robdd::prelude::*;
//!
//! let mgr = RobddManager::with_vars(3);
//! let (a, b) = (mgr.var(0), mgr.var(1));
//! let f = &a ^ &b;
//! drop(b);            // the XOR nodes stay alive through `f`
//! mgr.gc();           // no root list — the registry knows
//! assert!(f.eval(&[true, false, false]));
//! ```

use crate::edge::Edge;
use crate::manager::Robdd;
use crate::par::ParRobdd;
use ddcore::api::{ManagerRef, RawManager};
use ddcore::boolop::BoolOp;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::roots::{RootGuard, RootSet};

/// The trait-level ROBDD manager.
pub type RobddManager = ManagerRef<Robdd>;

/// The trait-level multi-core ROBDD manager.
pub type ParRobddManager = ManagerRef<ParRobdd>;

/// An owned, reference-counted handle to an ROBDD function.
pub type RobddFn = ddcore::api::Function<Robdd>;

/// An owned handle to a function of the multi-core ROBDD manager.
pub type ParRobddFn = ddcore::api::Function<ParRobdd>;

impl RawManager for Robdd {
    type Edge = Edge;

    fn with_vars(num_vars: usize) -> Self {
        Robdd::new(num_vars)
    }

    fn num_vars(&self) -> usize {
        Robdd::num_vars(self)
    }

    fn root_registry(&self) -> &RootSet {
        self.root_set()
    }

    fn edge_bits(e: Edge) -> u64 {
        u64::from(e.bits())
    }

    fn constant_edge(&self, value: bool) -> Edge {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn var_edge(&mut self, var: usize) -> Edge {
        self.var(var)
    }

    fn apply_edge(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.apply(op, f, g)
    }

    fn ite_edge(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.ite(f, g, h)
    }

    fn exists_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.exists(f, vars)
    }

    fn forall_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.forall(f, vars)
    }

    fn and_exists_edge(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.and_exists(f, g, vars)
    }

    fn try_apply_edge(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_apply(op, f, g, budget)
    }

    fn try_ite_edge(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_ite(f, g, h, budget)
    }

    fn try_exists_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_exists(f, vars, budget)
    }

    fn try_forall_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_forall(f, vars, budget)
    }

    fn try_and_exists_edge(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_and_exists(f, g, vars, budget)
    }

    fn try_compose_edge(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_compose(f, var, g, budget)
    }

    fn restrict_edge(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        self.restrict(f, var, value)
    }

    fn compose_edge(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.compose(f, var, g)
    }

    fn vector_compose_edge(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        self.vector_compose(f, subs)
    }

    fn eval_edge(&self, f: Edge, assignment: &[bool]) -> bool {
        self.eval(f, assignment)
    }

    fn sat_count_edge(&self, f: Edge) -> u128 {
        self.sat_count(f)
    }

    fn sat_count_checked_edge(&self, f: Edge) -> Option<u128> {
        self.sat_count_checked(f)
    }

    fn try_sat_count_edge(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.try_sat_count(f, budget)
    }

    fn any_sat_edge(&self, f: Edge) -> Option<Vec<bool>> {
        self.any_sat(f)
    }

    fn all_sat_edge(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        self.all_sat(f, limit)
    }

    fn node_count_edge(&self, f: Edge) -> usize {
        self.node_count(f)
    }

    fn shared_node_count_edges(&self, roots: &[Edge]) -> usize {
        self.shared_node_count(roots)
    }

    fn support_edge(&mut self, f: Edge) -> Vec<usize> {
        self.support(f)
    }

    fn to_dot_edges(&self, roots: &[Edge], names: &[&str]) -> String {
        self.to_dot(roots, names)
    }

    fn level_profile_edges(&self, roots: &[Edge]) -> Option<Vec<usize>> {
        Some(self.level_profile(roots))
    }

    fn after_op(&mut self) {
        self.maybe_auto_gc();
    }

    fn gc(&mut self) -> usize {
        Robdd::gc(self)
    }

    fn set_gc_threshold(&mut self, threshold: usize) {
        Robdd::set_gc_threshold(self, threshold);
    }

    fn gc_threshold(&self) -> usize {
        Robdd::gc_threshold(self)
    }

    fn live_nodes(&self) -> usize {
        Robdd::live_nodes(self)
    }

    fn try_sift(&mut self) -> Option<usize> {
        // An installed policy's strategy takes precedence over plain
        // Rudell sifting, so `reorder()` and the scheduled firings agree
        // on the algorithm.
        match self.reorder_policy() {
            Some(p) => Some(
                self.sift_strategy(p.strategy, &mut OpBudget::unlimited())
                    .expect("unlimited budget never aborts"),
            ),
            None => Some(self.sift()),
        }
    }

    fn sift_bounded(&mut self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
        match self.reorder_policy() {
            Some(p) => Some(self.sift_strategy(p.strategy, budget)),
            None => Some(Robdd::sift_bounded(self, budget)),
        }
    }

    fn reorder_with(
        &mut self,
        strategy: ddcore::dvo::DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        Some(self.sift_strategy(strategy, budget))
    }

    fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        Robdd::set_reorder_policy(self, policy);
    }

    fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        Robdd::reorder_policy(self)
    }

    fn set_auto_reorder(&mut self, threshold: usize) {
        Robdd::set_auto_reorder(self, threshold);
    }

    fn reorder_if_needed(&mut self) -> bool {
        Robdd::reorder_if_needed(self)
    }

    fn reorder_if_needed_bounded(&mut self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        Robdd::reorder_if_needed_bounded(self, budget)
    }

    fn set_order(&mut self, order: &[usize]) -> bool {
        self.reorder_to(order);
        true
    }

    fn variable_order(&self) -> Vec<usize> {
        self.order()
    }

    fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "robdd: {} apply calls, {} quant calls, {} nodes created, {} GCs ({} freed), \
             {} swaps, peak {}",
            s.apply_calls,
            s.quant_calls,
            s.nodes_created,
            s.gc_runs,
            s.nodes_freed,
            s.swaps,
            s.peak_live_nodes
        )
    }

    fn observe(&self) -> ddcore::MetricsSnapshot {
        self.metrics_snapshot()
    }

    fn note_governed(&mut self, checkpoints: u64, abort: Option<OpAbort>) {
        self.govern.note(checkpoints, abort);
    }
}

impl Robdd {
    /// Pin a raw edge as a GC root until the returned guard drops — the
    /// edge-level liveness primitive (trait-level handles are registered
    /// roots by construction).
    #[must_use]
    pub fn pin(&self, e: Edge) -> RootGuard {
        self.root_set().guard(u64::from(e.bits()))
    }
}

impl ddcore::session::SessionBackend for Robdd {
    fn fork(&self) -> Self {
        self.fork_state()
    }
}

impl RawManager for ParRobdd {
    type Edge = Edge;

    /// Default-configured parallel backend; the thread count comes from
    /// `BBDD_THREADS` (falling back to 4).
    fn with_vars(num_vars: usize) -> Self {
        ParRobdd::from_env(num_vars, 4)
    }

    fn num_vars(&self) -> usize {
        ParRobdd::num_vars(self)
    }

    fn root_registry(&self) -> &RootSet {
        self.inner().root_set()
    }

    fn edge_bits(e: Edge) -> u64 {
        u64::from(e.bits())
    }

    fn constant_edge(&self, value: bool) -> Edge {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn var_edge(&mut self, var: usize) -> Edge {
        self.var(var)
    }

    fn apply_edge(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.apply(op, f, g)
    }

    fn ite_edge(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.ite(f, g, h)
    }

    fn exists_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.exists(f, vars)
    }

    fn forall_edge(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.forall(f, vars)
    }

    fn and_exists_edge(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.and_exists(f, g, vars)
    }

    fn try_apply_edge(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_apply(op, f, g, budget)
    }

    fn try_ite_edge(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_ite(f, g, h, budget)
    }

    fn try_exists_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_exists(f, vars, budget)
    }

    fn try_forall_edge(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_forall(f, vars, budget)
    }

    fn try_and_exists_edge(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_and_exists(f, g, vars, budget)
    }

    fn try_compose_edge(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_compose(f, var, g, budget)
    }

    // Non-parallelized ops run on the wrapped sequential manager as part
    // of the same deterministic history.

    fn restrict_edge(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        self.inner_mut().restrict(f, var, value)
    }

    fn compose_edge(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.inner_mut().compose(f, var, g)
    }

    fn vector_compose_edge(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        self.inner_mut().vector_compose(f, subs)
    }

    fn eval_edge(&self, f: Edge, assignment: &[bool]) -> bool {
        self.eval(f, assignment)
    }

    fn sat_count_edge(&self, f: Edge) -> u128 {
        self.sat_count(f)
    }

    fn sat_count_checked_edge(&self, f: Edge) -> Option<u128> {
        self.sat_count_checked(f)
    }

    fn try_sat_count_edge(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.try_sat_count(f, budget)
    }

    fn any_sat_edge(&self, f: Edge) -> Option<Vec<bool>> {
        self.any_sat(f)
    }

    fn all_sat_edge(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        self.inner().all_sat(f, limit)
    }

    fn node_count_edge(&self, f: Edge) -> usize {
        self.node_count(f)
    }

    fn shared_node_count_edges(&self, roots: &[Edge]) -> usize {
        self.inner().shared_node_count(roots)
    }

    fn support_edge(&mut self, f: Edge) -> Vec<usize> {
        self.inner().support(f)
    }

    fn to_dot_edges(&self, roots: &[Edge], names: &[&str]) -> String {
        self.inner().to_dot(roots, names)
    }

    fn level_profile_edges(&self, roots: &[Edge]) -> Option<Vec<usize>> {
        Some(self.inner().level_profile(roots))
    }

    /// Latched merge GC after the result was registered, then the
    /// concurrent-cache epoch sync (see `bbdd::ParBbdd`'s twin).
    fn after_op(&mut self) {
        self.inner_mut().maybe_auto_gc();
        self.sync_cache_epoch();
    }

    fn gc(&mut self) -> usize {
        self.collect()
    }

    fn set_gc_threshold(&mut self, threshold: usize) {
        ParRobdd::set_gc_threshold(self, threshold);
    }

    fn gc_threshold(&self) -> usize {
        self.inner().gc_threshold()
    }

    fn live_nodes(&self) -> usize {
        ParRobdd::live_nodes(self)
    }

    /// Reordering on the parallel front-end delegates to the inner
    /// sequential manager. `&mut self` guarantees a quiescent point, and
    /// the sift's own collections advance the GC generation, so the epoch
    /// sync below invalidates the id-keyed concurrent cache exactly as a
    /// collection through any other path would.
    fn try_sift(&mut self) -> Option<usize> {
        let n = self.inner_mut().try_sift();
        self.sync_cache_epoch();
        n
    }

    fn sift_bounded(&mut self, budget: &mut OpBudget) -> Option<Result<usize, OpAbort>> {
        let r = <Robdd as RawManager>::sift_bounded(self.inner_mut(), budget);
        self.sync_cache_epoch();
        r
    }

    fn reorder_with(
        &mut self,
        strategy: ddcore::dvo::DvoStrategy,
        budget: &mut OpBudget,
    ) -> Option<Result<usize, OpAbort>> {
        let r = self.inner_mut().reorder_with(strategy, budget);
        self.sync_cache_epoch();
        r
    }

    fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        self.inner_mut().set_reorder_policy(policy);
    }

    fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        self.inner().reorder_policy()
    }

    fn set_auto_reorder(&mut self, threshold: usize) {
        self.inner_mut().set_auto_reorder(threshold);
    }

    fn reorder_if_needed(&mut self) -> bool {
        let ran = self.inner_mut().reorder_if_needed();
        self.sync_cache_epoch();
        ran
    }

    fn reorder_if_needed_bounded(&mut self, budget: &mut OpBudget) -> Result<bool, OpAbort> {
        let r = self.inner_mut().reorder_if_needed_bounded(budget);
        self.sync_cache_epoch();
        r
    }

    fn set_order(&mut self, order: &[usize]) -> bool {
        let ok = self.inner_mut().set_order(order);
        // `reorder_to` swaps without collecting, so the GC generation may
        // not have moved — collect explicitly to force the epoch bump
        // (installing an order is a cold pre-build path).
        self.collect();
        ok
    }

    fn variable_order(&self) -> Vec<usize> {
        self.inner().order()
    }

    fn stats_line(&self) -> String {
        let s = self.stats();
        let p = self.par_stats();
        format!(
            "par-robdd: {} apply calls, {} nodes created, {} GCs, {} parallel ops \
             ({} sequential fallback), {} leaf tasks",
            s.apply_calls,
            s.nodes_created,
            s.gc_runs,
            p.ops_parallel,
            p.ops_sequential,
            p.tasks_executed
        )
    }

    fn observe(&self) -> ddcore::MetricsSnapshot {
        let mut m = ddcore::MetricsSnapshot::new("par-robdd");
        let p = self.par_stats();
        // One unified cache.* section: the lock-free concurrent cache's
        // counters are folded into the inner sequential cache's.
        self.inner().fill_metrics(&mut m, Some(p.cache));
        m.counter("par.ops_parallel", p.ops_parallel);
        m.counter("par.ops_sequential", p.ops_sequential);
        m.counter("par.tasks_executed", p.tasks_executed);
        m.counter("par.tasks_stolen", p.tasks_stolen);
        m.counter("par.recursions", p.par_recursions);
        m.counter("par.nodes_imported", p.nodes_imported);
        m.counter("par.overlay_nodes", p.overlay_nodes);
        m.counter("par.shard_contention", p.shard_contention);
        m
    }

    fn note_governed(&mut self, checkpoints: u64, abort: Option<OpAbort>) {
        self.inner_mut().govern.note(checkpoints, abort);
    }
}

impl ParRobdd {
    /// Pin a raw edge as a GC root until the returned guard drops (see
    /// [`Robdd::pin`]).
    #[must_use]
    pub fn pin(&self, e: Edge) -> RootGuard {
        self.inner().pin(e)
    }
}

impl ddcore::session::SessionBackend for ParRobdd {
    fn fork(&self) -> Self {
        self.fork_state()
    }
}

/// Everything needed to drive the ROBDD baseline through the unified API.
pub mod prelude {
    pub use super::{ParRobddFn, ParRobddManager, RobddFn, RobddManager};
    pub use crate::{BoolOp, Edge, ParConfig, ParRobdd, Robdd};
    pub use ddcore::api::{BooleanFunction, FunctionManager, ManagerRef};
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcore::api::{BooleanFunction, FunctionManager};

    #[test]
    fn handles_pin_nodes_across_gc() {
        let mgr = RobddManager::with_vars(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = &a ^ &b;
        drop(a);
        drop(b);
        assert_eq!(mgr.external_roots(), 1);
        mgr.gc();
        assert!(f.eval(&[true, false, false, false]));
        drop(f);
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 0, "sink-only once all handles drop");
    }

    #[test]
    fn auto_gc_reclaims_dead_intermediates() {
        let mgr = RobddManager::with_vars(6);
        mgr.set_gc_threshold(1);
        let vs: Vec<RobddFn> = (0..6).map(|v| mgr.var(v)).collect();
        let mut acc = mgr.constant(true);
        for v in &vs {
            acc = acc.xnor(v);
        }
        assert!(mgr.backend().stats().gc_runs > 0, "auto-GC must have fired");
        for m in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let parity = a.iter().filter(|&&x| x).count() % 2 == 0;
            assert_eq!(acc.eval(&a), parity);
        }
    }

    #[test]
    fn par_manager_matches_sequential() {
        let seq = RobddManager::with_vars(4);
        let par = ParRobddManager::new(ParRobdd::new(4, 4));
        for mgr_out in [
            seq.var(0).ite(&seq.var(1), &seq.var(2)).edge(),
            par.var(0).ite(&par.var(1), &par.var(2)).edge(),
        ]
        .windows(2)
        {
            assert_eq!(mgr_out[0], mgr_out[1], "bit-identical results");
        }
        assert!(
            par.reorder().is_some(),
            "parallel backend reorders via its inner manager"
        );
        assert_eq!(seq.reorder(), Some(seq.live_nodes()));
        // Both ends accept a policy; explicit reorder then uses it.
        seq.set_reorder_policy(Some("window1:nodes64".parse().unwrap()));
        par.set_reorder_policy(Some("window1:nodes64".parse().unwrap()));
        assert_eq!(seq.reorder_policy(), par.reorder_policy());
        assert!(seq.reorder().is_some());
        assert!(par.reorder().is_some());
    }
}

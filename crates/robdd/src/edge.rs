//! Edges with complement attributes (ROBDD flavour).
//!
//! Identical packing to the BBDD package: node index shifted left by one,
//! low bit = complement attribute. Only the 1 sink exists; `0` is its
//! complemented edge and negation is free.

pub(crate) type NodeIndex = u32;

/// A directed edge to a BDD node, carrying the complement attribute.
///
/// ```
/// use robdd::Edge;
/// assert_eq!(!Edge::ONE, Edge::ZERO);
/// assert!(Edge::ZERO.is_complemented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u32);

impl Edge {
    /// The constant-true function.
    pub const ONE: Edge = Edge(0);
    /// The constant-false function.
    pub const ZERO: Edge = Edge(1);

    #[inline]
    pub(crate) fn new(node: NodeIndex, complemented: bool) -> Self {
        Edge((node << 1) | complemented as u32)
    }

    #[inline]
    pub(crate) fn node(self) -> NodeIndex {
        self.0 >> 1
    }

    /// Whether the complement attribute is set.
    #[inline]
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same edge without the attribute.
    #[inline]
    #[must_use]
    pub fn regular(self) -> Self {
        Edge(self.0 & !1)
    }

    /// Complement when `c` holds.
    #[inline]
    #[must_use]
    pub fn complement_if(self, c: bool) -> Self {
        Edge(self.0 ^ c as u32)
    }

    /// `true` for the two constant functions.
    #[inline]
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }

    #[inline]
    pub(crate) fn bits(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn from_bits(bits: u32) -> Self {
        Edge(bits)
    }
}

impl std::ops::Not for Edge {
    type Output = Edge;

    #[inline]
    fn not(self) -> Edge {
        Edge(self.0 ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip() {
        for id in [0u32, 1, 77, 1 << 20] {
            for c in [false, true] {
                let e = Edge::new(id, c);
                assert_eq!(e.node(), id);
                assert_eq!(e.is_complemented(), c);
                assert_eq!(!!e, e);
            }
        }
        assert!(Edge::ONE.is_constant());
        assert_eq!(!Edge::ONE, Edge::ZERO);
    }
}

//! Recursive Boolean operations between ROBDDs (Brace–Rudell–Bryant).
//!
//! The same strong canonical operand form as the BBDD package: operand
//! complement attributes and operand order are folded into the operator's
//! 4-bit truth table, maximizing computed-table reuse, then the operation
//! recurses over the Shannon expansion at the top variable.

use crate::edge::Edge;
use crate::manager::Robdd;
use ddcore::boolop::{BoolOp, Unary};
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::optag;

const TAG_ITE: u32 = optag::ITE;

impl Robdd {
    /// Compute `f ⊗ g` for an arbitrary two-operand Boolean operator.
    pub fn apply(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        self.try_apply(op, f, g, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::apply`] under a resource budget: the budget is polled at
    /// every computed-cache miss (i.e. once per node the operation may
    /// materialize). On `Err` the manager stays fully usable — tables are
    /// canonical, the cache holds only committed results, and any nodes
    /// built before the abort are reclaimed by the next GC.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.apply_rec(op, f, g, budget)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::AND, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::OR, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XOR, f, g)
    }

    /// `f ⊙ g`.
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XNOR, f, g)
    }

    /// `¬(f ∧ g)`.
    pub fn nand(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::NAND, f, g)
    }

    /// `¬(f ∨ g)`.
    pub fn nor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::NOR, f, g)
    }

    /// `f → g`.
    pub fn implies(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::IMPLIES, f, g)
    }

    fn unary(&self, u: Unary, x: Edge) -> Edge {
        match u {
            Unary::Zero => Edge::ZERO,
            Unary::One => Edge::ONE,
            Unary::Identity => x,
            Unary::Complement => !x,
        }
    }

    pub(crate) fn apply_rec(
        &mut self,
        mut op: BoolOp,
        mut f: Edge,
        mut g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.stats.apply_calls += 1;
        if f == g {
            return Ok(self.unary(op.on_equal_operands(), f));
        }
        if f == !g {
            return Ok(self.unary(op.on_complement_operands(), f));
        }
        if f.is_constant() {
            return Ok(self.unary(op.on_first_const(f == Edge::ONE), g));
        }
        if g.is_constant() {
            return Ok(self.unary(op.on_second_const(g == Edge::ONE), f));
        }
        if f.is_complemented() {
            f = !f;
            op = op.complement_first();
        }
        if g.is_complemented() {
            g = !g;
            op = op.complement_second();
        }
        if f.node() > g.node() {
            std::mem::swap(&mut f, &mut g);
            op = op.swap_operands();
        }
        let mut out_c = false;
        if op.eval(false, false) {
            op = op.complement_output();
            out_c = true;
        }
        if op == BoolOp::FALSE {
            return Ok(Edge::ZERO.complement_if(out_c));
        }
        if op == BoolOp::FIRST {
            return Ok(f.complement_if(out_c));
        }
        if op == BoolOp::SECOND {
            return Ok(g.complement_if(out_c));
        }

        let (k1, k2, tag) = (f.bits() as u64, g.bits() as u64, op.table() as u32);
        if let Some(r) = self.cache.get(k1, k2, tag) {
            return Ok(Edge::from_bits(r as u32).complement_if(out_c));
        }
        // Abort-consistency: poll on the miss, *before* building anything.
        // The cache insert below runs strictly after a successful
        // make_node, so an abort can never leave the cache pointing at a
        // node that was never committed.
        budget.checkpoint()?;

        // Shannon expansion at the top variable (minimal order position).
        let (pf, pg) = (self.edge_pos(f), self.edge_pos(g));
        let var = if pf <= pg {
            self.node(f.node()).var()
        } else {
            self.node(g.node()).var()
        };
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let t = self.apply_rec(op, f1, g1, budget)?;
        let e = self.apply_rec(op, f0, g0, budget)?;
        let r = self.make_node(var, t, e);
        self.cache.insert(k1, k2, tag, r.bits() as u64);
        Ok(r.complement_if(out_c))
    }

    /// If-then-else with the classic normalizations.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.try_ite(f, g, h, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::ite`] under a resource budget; see [`Robdd::try_apply`]
    /// for the polling and abort-safety contract.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.ite_rec(f, g, h, budget)
    }

    pub(crate) fn ite_rec(
        &mut self,
        mut f: Edge,
        mut g: Edge,
        mut h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.stats.apply_calls += 1;
        if f == Edge::ONE {
            return Ok(g);
        }
        if f == Edge::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Ok(!f);
        }
        if f == g || g == Edge::ONE {
            return self.apply_rec(BoolOp::OR, f, h, budget);
        }
        if f == !g || g == Edge::ZERO {
            return self.apply_rec(BoolOp::NOT_AND, f, h, budget);
        }
        if f == h || h == Edge::ZERO {
            return self.apply_rec(BoolOp::AND, f, g, budget);
        }
        if f == !h || h == Edge::ONE {
            return self.apply_rec(BoolOp::IMPLIES, f, g, budget);
        }
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        let mut out_c = false;
        if g.is_complemented() {
            g = !g;
            h = !h;
            out_c = true;
        }
        let k1 = f.bits() as u64;
        let k2 = ((g.bits() as u64) << 32) | h.bits() as u64;
        if let Some(r) = self.cache.get(k1, k2, TAG_ITE) {
            return Ok(Edge::from_bits(r as u32).complement_if(out_c));
        }
        // Poll on the miss, before materializing (see apply_rec).
        budget.checkpoint()?;
        let mut best = self.edge_pos(f);
        for e in [g, h] {
            best = best.min(self.edge_pos(e));
        }
        let var = self.var_at_pos[best] as u16;
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let (h1, h0) = self.cofactors(h, var);
        let t = self.ite_rec(f1, g1, h1, budget)?;
        let e = self.ite_rec(f0, g0, h0, budget)?;
        let r = self.make_node(var, t, e);
        self.cache.insert(k1, k2, TAG_ITE, r.bits() as u64);
        Ok(r.complement_if(out_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(mgr: &Robdd, f: Edge, n: usize, reference: impl Fn(&[bool]) -> bool) {
        for m in 0..(1u32 << n) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(f, &a), reference(&a), "assignment {a:?}");
        }
    }

    #[test]
    fn all_sixteen_ops() {
        for op in BoolOp::all() {
            let mut mgr = Robdd::new(2);
            let (a, b) = (mgr.var(0), mgr.var(1));
            let f = mgr.apply(op, a, b);
            check(&mgr, f, 2, |v| op.eval(v[0], v[1]));
            assert!(mgr.validate().is_ok());
        }
    }

    #[test]
    fn composite_functions() {
        let mut mgr = Robdd::new(4);
        let vs: Vec<Edge> = (0..4).map(|i| mgr.var(i)).collect();
        let ab = mgr.and(vs[0], vs[1]);
        let cd = mgr.xor(vs[2], vs[3]);
        for op in BoolOp::all() {
            let f = mgr.apply(op, ab, cd);
            check(&mgr, f, 4, |v| op.eval(v[0] && v[1], v[2] ^ v[3]));
        }
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn canonicity_across_build_paths() {
        let mut mgr = Robdd::new(4);
        let vs: Vec<Edge> = (0..4).map(|i| mgr.var(i)).collect();
        let ab = mgr.and(vs[0], vs[1]);
        let cd = mgr.and(vs[2], vs[3]);
        let f1 = mgr.or(ab, cd);
        let nab = mgr.nand(vs[0], vs[1]);
        let ncd = mgr.nand(vs[2], vs[3]);
        let f2 = mgr.nand(nab, ncd);
        assert_eq!(f1, f2);
    }

    #[test]
    fn ite_mux_semantics() {
        let mut mgr = Robdd::new(3);
        let (s, a, b) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let m = mgr.ite(s, a, b);
        check(&mgr, m, 3, |v| if v[0] { v[1] } else { v[2] });
    }

    #[test]
    fn xor_chain_is_linear() {
        let n = 16;
        let mut mgr = Robdd::new(n);
        let mut f = mgr.var(0);
        for i in 1..n {
            let v = mgr.var(i);
            f = mgr.xor(f, v);
        }
        // With complement edges, n-input parity takes n nodes (one per
        // variable) — twice the BBDD size.
        assert_eq!(mgr.node_count(f), n);
    }
}

//! # robdd — a state-of-the-art-style ROBDD manipulation package
//!
//! This crate is the **baseline** of the DATE 2014 BBDD reproduction: a
//! Reduced Ordered Binary Decision Diagram package in the mould of CUDD
//! 2.5.0 (the comparison package of the paper's Table I), built on the same
//! shared infrastructure (`ddcore`) as the BBDD package so that runtime
//! comparisons measure the *diagram algorithms* rather than incidental
//! engineering differences.
//!
//! Features, mirroring §II-B of the paper:
//!
//! * Shannon-expansion nodes with **complement attributes** (only the 1 sink
//!   exists; stored nodes keep a regular *then*-edge for canonicity);
//! * a **unique table** per variable (strong canonical form: pointer
//!   equality ⇔ function equality);
//! * a **computed table** for the recursive `apply`/`ite` operators;
//! * mark-and-sweep **garbage collection** tracing the owned-handle
//!   registry ([`RobddFn`], mirror of `bbdd::BbddFn`) — `gc()`/`sift()`
//!   take no root lists, and `set_gc_threshold` arms automatic GC;
//! * classic in-place adjacent **variable swap** and **Rudell sifting**.
//!
//! ```
//! use robdd::Robdd;
//! let mut mgr = Robdd::new(3);
//! let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//! let ab = mgr.and(a, b);
//! let f = mgr.or(ab, c);
//! assert_eq!(mgr.sat_count(f), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod apply;
mod dot;
mod edge;
mod manager;
mod node;
mod ops;
mod par;
mod quant;
mod reorder;

pub use api::prelude;
pub use api::{ParRobddFn, ParRobddManager, RobddFn, RobddManager};
pub use ddcore::boolop::{BoolOp, Unary};
pub use ddcore::govern::{CancelToken, OpAbort, OpBudget};
pub use ddcore::nary::NaryOp;
pub use edge::Edge;
pub use manager::{Robdd, RobddNodeInfo, RobddStats};
pub use par::{ParConfig, ParRobdd, ParStats};
pub use reorder::SiftConfig;

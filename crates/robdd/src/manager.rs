//! The ROBDD manager: arena, per-variable unique tables, the variable
//! order, node construction and garbage collection.

use crate::edge::Edge;
use crate::node::{BddKey, Node, TERMINAL_VAR};
use ddcore::cache::ComputedCache;
use ddcore::roots::RootSet;
use ddcore::table::UniqueTable;

/// Counters exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobddStats {
    /// Recursive apply/ite invocations.
    pub apply_calls: u64,
    /// Recursive quantification entries (`exists`/`forall`/`and_exists`).
    pub quant_calls: u64,
    /// Composition operations (`compose` and `vector_compose` recursion
    /// entries).
    pub compose_calls: u64,
    /// Recursive n-ary `apply` entries.
    pub nary_calls: u64,
    /// Nodes created (unique-table inserts).
    pub nodes_created: u64,
    /// Garbage-collection runs.
    pub gc_runs: u64,
    /// Nodes reclaimed.
    pub nodes_freed: u64,
    /// Adjacent swaps performed.
    pub swaps: u64,
    /// Peak live node count.
    pub peak_live_nodes: usize,
    /// Computed-table lookups (snapshot taken by [`Robdd::stats`]).
    pub cache_lookups: u64,
    /// Computed-table hits.
    pub cache_hits: u64,
    /// Computed-table evictions (inserts that overwrote a live entry).
    pub cache_evictions: u64,
}

impl RobddStats {
    /// Computed-table misses.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_lookups - self.cache_hits
    }
}

/// Public structural view of one ROBDD node (see [`Robdd::node_info`]):
/// the Shannon triple `ite(var, then, else)`. The *then*-edge is always
/// regular (complement attributes are normalized onto *else*/result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobddNodeInfo {
    /// Variable index tested by the node.
    pub var: usize,
    /// The `var = 1` child edge (always regular).
    pub then_: Edge,
    /// The `var = 0` child edge.
    pub else_: Edge,
}

/// A manager for Reduced Ordered BDDs with complement edges over a fixed
/// variable set, CUDD-style.
///
/// ```
/// use robdd::Robdd;
/// let mut mgr = Robdd::new(2);
/// let (a, b) = (mgr.var(0), mgr.var(1));
/// let f = mgr.xor(a, b);
/// assert!(mgr.eval(f, &[true, false]));
/// assert_eq!(mgr.node_count(f), 2, "XOR takes two BDD nodes");
/// ```
#[derive(Debug)]
pub struct Robdd {
    pub(crate) nodes: Vec<Node>,
    free: Vec<u32>,
    /// One subtable per *variable* (indices never move during reordering).
    pub(crate) subtables: Vec<UniqueTable<BddKey>>,
    /// `var_at_pos[p]` = variable at top-based order position `p`.
    pub(crate) var_at_pos: Vec<u32>,
    /// Inverse permutation.
    pub(crate) pos_of_var: Vec<u32>,
    pub(crate) cache: ComputedCache,
    pub(crate) stats: RobddStats,
    /// External-root registry behind the [`crate::RobddFn`] handles; GC
    /// and sifting trace from here instead of caller-supplied root lists.
    roots: RootSet,
    /// Reusable snapshot buffer for the registry trace.
    root_scratch: Vec<u64>,
    /// The automatic-GC latch + collection generation (shared shape with
    /// the BBDD manager; see [`ddcore::roots::GcLatch`]).
    gc_latch: ddcore::roots::GcLatch,
    /// Dynamic-reordering policy and schedule baselines (see
    /// [`ddcore::dvo`]); `None` policy = no scheduled reordering.
    dvo: ddcore::dvo::DvoState,
    /// Governed-operation accounting (the `govern.*` metrics section),
    /// fed by the generic handle layer via `RawManager::note_governed`.
    pub(crate) govern: ddcore::obs::GovernCounters,
}

impl Robdd {
    /// Create a manager for `num_vars` variables with the identity order.
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or too large for 16-bit variable indices.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars > 0, "a BDD manager needs at least one variable");
        assert!(
            num_vars < TERMINAL_VAR as usize,
            "too many variables for 16-bit indices"
        );
        Robdd {
            nodes: vec![Node::terminal()],
            free: Vec::new(),
            subtables: (0..num_vars).map(|_| UniqueTable::new(64)).collect(),
            var_at_pos: (0..num_vars as u32).collect(),
            pos_of_var: (0..num_vars as u32).collect(),
            cache: ComputedCache::default(),
            stats: RobddStats::default(),
            roots: RootSet::new(),
            root_scratch: Vec::new(),
            gc_latch: ddcore::roots::GcLatch::default(),
            dvo: ddcore::dvo::DvoState::default(),
            govern: ddcore::obs::GovernCounters::default(),
        }
    }

    /// A private flat copy of the node store for an MVCC session fork
    /// (`ddcore::session`), mirroring the BBDD manager's `fork_state`:
    /// the node slab, free list, unique tables, variable order and
    /// computed cache are cloned so every base edge stays bit-valid in
    /// the fork; roots, GC latch, DVO state and statistics start fresh.
    #[must_use]
    pub fn fork_state(&self) -> Self {
        Robdd {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            subtables: self.subtables.clone(),
            var_at_pos: self.var_at_pos.clone(),
            pos_of_var: self.pos_of_var.clone(),
            cache: self.cache.clone(),
            stats: RobddStats::default(),
            roots: RootSet::new(),
            root_scratch: Vec::new(),
            gc_latch: ddcore::roots::GcLatch::default(),
            dvo: ddcore::dvo::DvoState::default(),
            govern: ddcore::obs::GovernCounters::default(),
        }
    }

    /// Number of variables managed.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.var_at_pos.len()
    }

    /// The current variable order, top first.
    #[must_use]
    pub fn order(&self) -> Vec<usize> {
        self.var_at_pos.iter().map(|&v| v as usize).collect()
    }

    /// Top-based position of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    #[must_use]
    pub fn position_of(&self, var: usize) -> usize {
        self.pos_of_var[var] as usize
    }

    /// Constant true.
    #[must_use]
    pub fn one(&self) -> Edge {
        Edge::ONE
    }

    /// Constant false.
    #[must_use]
    pub fn zero(&self) -> Edge {
        Edge::ZERO
    }

    /// The positive literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn var(&mut self, var: usize) -> Edge {
        self.make_node(var as u16, Edge::ONE, Edge::ZERO)
    }

    /// The negative literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn nvar(&mut self, var: usize) -> Edge {
        !self.var(var)
    }

    /// Total stored nodes (excluding the sink).
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.subtables.iter().map(UniqueTable::len).sum()
    }

    /// Aggregate unique-table statistics summed over all variable
    /// subtables.
    #[must_use]
    pub fn table_stats(&self) -> ddcore::TableStats {
        let mut agg = ddcore::TableStats::default();
        for t in &self.subtables {
            agg.absorb(t.stats());
        }
        agg
    }

    /// Counters accumulated since creation, including a snapshot of the
    /// computed-table hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> RobddStats {
        let mut s = self.stats;
        let c = self.cache.stats();
        s.cache_lookups = c.lookups;
        s.cache_hits = c.hits;
        s.cache_evictions = c.evictions;
        s
    }

    /// One uniform [`ddcore::MetricsSnapshot`] over every counter the
    /// manager maintains, under the registry's stable dotted names
    /// (`apply` and `ite` share one recursion counter here, so `ops.ite`
    /// is absent). This is what `RawManager::observe` returns for this
    /// backend.
    #[must_use]
    pub fn metrics_snapshot(&self) -> ddcore::MetricsSnapshot {
        let mut m = ddcore::MetricsSnapshot::new("robdd");
        self.fill_metrics(&mut m, None);
        m
    }

    /// Fill `m` with this manager's sections. The Par front-end passes its
    /// lock-free cache counters as `par_cache` so the `cache.*` section
    /// stays one unified tree (sequential + concurrent lookups summed,
    /// tear misses appearing only when a concurrent cache exists).
    pub(crate) fn fill_metrics(
        &self,
        m: &mut ddcore::MetricsSnapshot,
        par_cache: Option<ddcore::AtomicCacheStats>,
    ) {
        let s = self.stats();
        let c = self.cache.stats();
        let t = self.table_stats();
        m.gauge("nodes.live", self.live_nodes() as u64);
        m.gauge("nodes.peak", s.peak_live_nodes as u64);
        m.counter("nodes.created", s.nodes_created);
        m.counter("ops.apply", s.apply_calls);
        m.counter("ops.quant", s.quant_calls);
        m.counter("ops.compose", s.compose_calls);
        m.counter("ops.nary", s.nary_calls);
        m.counter("ops.swaps", s.swaps);
        let pc = par_cache.unwrap_or_default();
        m.counter("cache.lookups", c.lookups + pc.lookups);
        m.counter("cache.hits", c.hits + pc.hits);
        m.counter("cache.misses", c.misses() + pc.misses());
        m.counter("cache.inserts", c.inserts + pc.inserts);
        m.counter("cache.evictions", c.evictions);
        m.counter("cache.invalidations", c.invalidations + pc.invalidations);
        if par_cache.is_some() {
            m.counter("cache.tear_misses", pc.tear_misses);
        }
        m.counter("table.lookups", t.lookups);
        m.counter("table.probes", t.probes);
        m.counter("table.hits", t.hits);
        m.counter("table.resizes", t.resizes);
        m.counter("table.rearrangements", t.rearrangements);
        m.counter("table.tombstone_repairs", t.batched_repairs);
        m.counter("gc.runs", s.gc_runs);
        m.counter("gc.nodes_freed", s.nodes_freed);
        m.counter("gc.latch_firings", self.gc_latch.firings());
        let (registered, retained, released) = self.roots.traffic();
        m.gauge("roots.live", self.roots.len() as u64);
        m.counter("roots.registered", registered);
        m.counter("roots.retained", retained);
        m.counter("roots.released", released);
        m.counter("dvo.reorders", self.dvo.reorders());
        self.govern.fill(m);
    }

    /// A stable identifier of the node an edge points to (`None` for the
    /// constants). Two edges with equal ids point at the same stored node;
    /// the id is usable as a map key by exporters.
    #[must_use]
    pub fn edge_id(&self, e: Edge) -> Option<u32> {
        if e.is_constant() {
            None
        } else {
            Some(e.node())
        }
    }

    /// Structural view of the node `e` points to (`None` for constants) —
    /// the public introspection hook used by the DOT exporter's callers
    /// and the BDD-to-netlist rewriter.
    #[must_use]
    pub fn node_info(&self, e: Edge) -> Option<RobddNodeInfo> {
        if e.is_constant() {
            return None;
        }
        let n = self.node(e.node());
        Some(RobddNodeInfo {
            var: n.var() as usize,
            then_: n.then_(),
            else_: n.else_(),
        })
    }

    /// Number of internal nodes at each top-based order position for the
    /// diagrams rooted at `roots` — the level profile reported by package
    /// log output (feature parity with `bbdd`'s bottom-based profile).
    #[must_use]
    pub fn level_profile(&self, roots: &[Edge]) -> Vec<usize> {
        let mut profile = vec![0usize; self.num_vars()];
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            profile[self.pos_of_var[n.var() as usize] as usize] += 1;
            for child in [n.then_(), n.else_()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        profile
    }

    #[inline]
    pub(crate) fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Top-based position of the node an edge points to (`usize::MAX` for
    /// constants, i.e. "below everything").
    #[inline]
    pub(crate) fn edge_pos(&self, e: Edge) -> usize {
        if e.is_constant() {
            usize::MAX
        } else {
            self.pos_of_var[self.node(e.node()).var() as usize] as usize
        }
    }

    /// Find-or-create `ite(var, then, else)` with the reduction rule and
    /// the regular-*then* normalization.
    pub(crate) fn make_node(&mut self, var: u16, mut then_: Edge, mut else_: Edge) -> Edge {
        if then_ == else_ {
            return then_;
        }
        let mut out_c = false;
        if then_.is_complemented() {
            then_ = !then_;
            else_ = !else_;
            out_c = true;
        }
        debug_assert!(self.child_below(then_, var) && self.child_below(else_, var));
        let key = BddKey::new(then_, else_);
        let nodes = &mut self.nodes;
        let free = &mut self.free;
        let mut created = false;
        let id = self.subtables[var as usize].get_or_insert_with(key, || {
            created = true;
            let node = Node::new(var, then_, else_);
            match free.pop() {
                Some(id) => {
                    nodes[id as usize] = node;
                    id
                }
                None => {
                    nodes.push(node);
                    (nodes.len() - 1) as u32
                }
            }
        });
        if created {
            self.stats.nodes_created += 1;
            let live = self.live_nodes();
            if live > self.stats.peak_live_nodes {
                self.stats.peak_live_nodes = live;
            }
            self.note_growth(live);
        }
        Edge::new(id, out_c)
    }

    fn child_below(&self, child: Edge, var: u16) -> bool {
        child.is_constant()
            || self.pos_of_var[self.node(child.node()).var() as usize]
                > self.pos_of_var[var as usize]
    }

    /// Shannon cofactors of `e` with respect to `var` (which must be at or
    /// above `e`'s top variable in the order).
    pub(crate) fn cofactors(&self, e: Edge, var: u16) -> (Edge, Edge) {
        if e.is_constant() {
            return (e, e);
        }
        let n = self.node(e.node());
        if n.var() != var {
            return (e, e);
        }
        let c = e.is_complemented();
        (n.then_().complement_if(c), n.else_().complement_if(c))
    }

    /// The external-root registry shared with every [`crate::RobddFn`]
    /// handle this manager hands out.
    pub(crate) fn root_set(&self) -> &RootSet {
        &self.roots
    }

    /// Arm the automatic GC latch (mirror of `bbdd`'s
    /// `Bbdd::set_gc_threshold`): once `make_node` observes the live node
    /// count at or above `threshold`, a collection is latched and runs at
    /// the next handle boundary (any `*_fn` operation), re-arming at twice
    /// the surviving size. `0` disables (the default).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_latch.set_threshold(threshold);
    }

    /// The automatic-GC threshold (`0` = disabled).
    #[must_use]
    pub fn gc_threshold(&self) -> usize {
        self.gc_latch.threshold()
    }

    #[inline]
    fn note_growth(&mut self, live: usize) {
        self.gc_latch.note_growth(live);
    }

    /// Monotonic count of collections run through *any* entry point (see
    /// the BBDD manager's twin — the Par front-end keys its concurrent
    /// cache invalidation off this).
    pub(crate) fn gc_generation(&self) -> u64 {
        self.gc_latch.generation()
    }

    /// Run the latched automatic collection, if armed; returns `true`
    /// when a collection ran (the handle-boundary collection point).
    pub(crate) fn maybe_auto_gc(&mut self) -> bool {
        if !self.gc_latch.take_pending() {
            return false;
        }
        self.gc_keeping(&[]);
        self.gc_latch.rearm(self.live_nodes());
        // The latch boundary doubles as the reorder schedule's firing
        // point (see the BBDD manager's twin).
        self.reorder_if_needed();
        true
    }

    /// Arm automatic reordering at a live-node threshold: sugar for a
    /// full-sift/node-threshold [`ddcore::dvo::DvoPolicy`] (the discipline
    /// the BBDD manager has always offered; `0` disables).
    pub fn set_auto_reorder(&mut self, threshold: usize) {
        self.set_reorder_policy((threshold > 0).then_some(ddcore::dvo::DvoPolicy {
            strategy: ddcore::dvo::DvoStrategy::Full,
            schedule: ddcore::dvo::ReorderSchedule::NodeThreshold(threshold),
        }));
    }

    /// Install (or clear, with `None`) the dynamic-reordering policy:
    /// which [`ddcore::dvo::DvoStrategy`] to run and when its
    /// [`ddcore::dvo::ReorderSchedule`] fires. Scheduled firings happen at
    /// handle boundaries (piggybacking on the automatic-GC latch) and at
    /// the network builders' collection gates; the schedule's baselines
    /// reset to the manager's current counters on installation.
    pub fn set_reorder_policy(&mut self, policy: Option<ddcore::dvo::DvoPolicy>) {
        let (live, created) = (self.live_nodes(), self.stats.nodes_created);
        self.dvo.set_policy(policy, live, created);
    }

    /// The installed dynamic-reordering policy, if any.
    #[must_use]
    pub fn reorder_policy(&self) -> Option<ddcore::dvo::DvoPolicy> {
        self.dvo.policy()
    }

    /// Scheduled reorders run so far (via [`Robdd::reorder_if_needed`] and
    /// its bounded variant).
    #[must_use]
    pub fn scheduled_reorders(&self) -> u64 {
        self.dvo.reorders()
    }

    /// Collect (tracing the handle registry) and, if the installed
    /// policy's schedule is due, run its strategy. Returns `true` when a
    /// reorder ran.
    pub fn reorder_if_needed(&mut self) -> bool {
        self.reorder_if_needed_bounded(&mut ddcore::govern::OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::reorder_if_needed`] under a resource budget. On abort the
    /// variable order is consistent (the [`Robdd::sift_bounded`] park-back
    /// contract) and the schedule has re-armed — the trigger was consumed,
    /// so the caller can simply continue with a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn reorder_if_needed_bounded(
        &mut self,
        budget: &mut ddcore::govern::OpBudget,
    ) -> Result<bool, ddcore::govern::OpAbort> {
        if !self.dvo.due(self.live_nodes(), self.stats.nodes_created) {
            return Ok(false);
        }
        // A collection may already dissolve the pressure (dead nodes, not
        // a bad order) — re-check before paying for a sift.
        self.gc_keeping(&[]);
        if !self.dvo.due(self.live_nodes(), self.stats.nodes_created) {
            return Ok(false);
        }
        let strategy = self.dvo.strategy().expect("due implies a policy");
        // Scheduled-sift firing marker; the strategy's own Reorder span
        // (opened in `ddcore::dvo`) carries the duration and result.
        ddcore::obs::event(
            ddcore::obs::Op::Reorder,
            Some(("scheduled", self.dvo.reorders() + 1)),
        );
        let res = self.sift_strategy(strategy, budget);
        let (live, created) = (self.live_nodes(), self.stats.nodes_created);
        self.dvo.note_reorder(live, created);
        res.map(|_| true)
    }

    /// Garbage-collect every node not reachable from a registered handle
    /// ([`crate::RobddFn`]). There is no root list to supply — and
    /// therefore none to forget: the registry behind the handles *is* the
    /// root set.
    pub fn gc(&mut self) -> usize {
        self.gc_keeping(&[])
    }

    /// The mark/sweep shared by every GC entry point: roots are the
    /// handle-registry snapshot plus `extra` (internal callers such as the
    /// sift shims). The registry lock is *not* held across the trace.
    pub(crate) fn gc_keeping(&mut self, extra: &[Edge]) -> usize {
        let mut span = ddcore::obs::span(ddcore::obs::Op::Gc);
        self.stats.gc_runs += 1;
        self.gc_latch.note_collection();
        let mut snap = std::mem::take(&mut self.root_scratch);
        snap.clear();
        self.roots.snapshot_into(&mut snap);
        let mut stack: Vec<u32> = snap
            .iter()
            .map(|&bits| Edge::from_bits(bits as u32))
            .chain(extra.iter().copied())
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        self.root_scratch = snap;
        while let Some(id) = stack.pop() {
            let n = &mut self.nodes[id as usize];
            if n.is_marked() {
                continue;
            }
            n.set_mark(true);
            let (t, e) = (n.then_(), n.else_());
            if !t.is_constant() {
                stack.push(t.node());
            }
            if !e.is_constant() {
                stack.push(e.node());
            }
        }
        // Sweep; survivors drop their mark bit in the same pass (the
        // tables call the closure exactly once per stored entry).
        let nodes = &mut self.nodes;
        let free = &mut self.free;
        let mut freed = 0usize;
        for table in &mut self.subtables {
            table.retain(|_, id| {
                let n = &mut nodes[id as usize];
                if n.is_marked() {
                    n.set_mark(false);
                    true
                } else {
                    n.set_free(true);
                    free.push(id);
                    freed += 1;
                    false
                }
            });
        }
        self.cache.invalidate();
        self.stats.nodes_freed += freed as u64;
        span.set_arg("freed", freed as u64);
        freed
    }

    /// Validate the canonical-form invariants (tests/debugging).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut present: HashSet<u32> = HashSet::new();
        for (var, table) in self.subtables.iter().enumerate() {
            let mut err: Option<String> = None;
            table.for_each(|key, id| {
                if err.is_some() {
                    return;
                }
                if !present.insert(id) {
                    err = Some(format!("node {id} stored twice"));
                    return;
                }
                let n = self.node(id);
                if n.is_free() {
                    err = Some(format!("free node {id} still stored"));
                    return;
                }
                if n.var() as usize != var {
                    err = Some(format!("node {id} in wrong subtable"));
                    return;
                }
                if n.key() != *key {
                    err = Some(format!("node {id} key mismatch"));
                    return;
                }
                if n.then_().is_complemented() {
                    err = Some(format!("node {id} has complemented then-edge"));
                    return;
                }
                if n.then_() == n.else_() {
                    err = Some(format!("node {id} is redundant"));
                    return;
                }
                for child in [n.then_(), n.else_()] {
                    if !self.child_below(child, n.var()) {
                        err = Some(format!("node {id} breaks the order"));
                        return;
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        for table in &self.subtables {
            let mut err: Option<String> = None;
            table.for_each(|_, id| {
                if err.is_some() {
                    return;
                }
                let n = self.node(id);
                for child in [n.then_(), n.else_()] {
                    if !child.is_constant() && !present.contains(&child.node()) {
                        err = Some(format!("node {id} references unstored node"));
                        return;
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_reduction() {
        let mut mgr = Robdd::new(3);
        let a1 = mgr.var(0);
        let a2 = mgr.var(0);
        assert_eq!(a1, a2);
        assert_eq!(mgr.live_nodes(), 1);
        let r = mgr.make_node(1, a1, a1);
        assert_eq!(r, a1, "redundant node reduced");
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn complement_normalization() {
        let mut mgr = Robdd::new(2);
        let b = mgr.var(1);
        let n1 = mgr.make_node(0, b, !b);
        let n2 = mgr.make_node(0, !b, b);
        assert_eq!(n1, !n2, "complement pairs share one node");
        assert_eq!(mgr.live_nodes(), 2);
        assert!(mgr.validate().is_ok());
    }

    #[test]
    fn gc_frees_and_reuses() {
        let mut mgr = Robdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.make_node(0, b, !b);
        let _keep = mgr.pin(keep);
        let freed = mgr.gc();
        assert!(freed >= 1, "the bare literal {a:?} should die");
        assert!(mgr.validate().is_ok());
        let a2 = mgr.var(0);
        assert!(!a2.is_constant());
        assert!(mgr.validate().is_ok());
    }
}

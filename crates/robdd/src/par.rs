//! [`ParRobdd`] — the multi-core front-end of the ROBDD baseline.
//!
//! The Shannon-expansion twin of `bbdd::ParBbdd`, sharing the same
//! three-phase protocol built on `ddcore::par` (see that module and the
//! BBDD `par` module for the full determinism argument):
//!
//! 1. **split** the recursion at the top k order positions (sequential),
//! 2. run the leaf subproblems **fork-join** over the frozen base manager,
//!    materializing result nodes in a canonical overlay (sharded unique
//!    table with base-consulting `peek`, append-only arena, lossy atomic
//!    computed cache),
//! 3. **commit** deterministically: import the leaf results through the
//!    ordinary `make_node` and resolve the recorded combine tree.
//!
//! Results — every returned edge and every node id in the wrapped
//! manager — are bit-identical regardless of the thread count.

use crate::edge::Edge;

use crate::manager::{Robdd, RobddStats};
use crate::node::BddKey;
use ddcore::boolop::{BoolOp, Unary};
use ddcore::cantor::CantorHasher;
use ddcore::fxhash::{FxHashMap, FxHashSet};
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::optag;
use ddcore::par::{
    fork_join, threads_from_env, try_fork_join_governed, AtomicCache, OverlayArena, ShardedTable,
};
pub use ddcore::par::{ParConfig, ParStats};
use ddcore::session::OverlayFrame;
use ddcore::table::TableKey;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sharded-overlay key: the per-variable [`BddKey`] contents plus the
/// variable itself (the base keeps one table per variable; the overlay is
/// one key space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct VarKey {
    var: u16,
    then_bits: u32,
    else_bits: u32,
}

impl TableKey for VarKey {
    fn table_hash(&self, h: &CantorHasher) -> u64 {
        h.hash3(
            u64::from(self.then_bits),
            u64::from(self.else_bits),
            u64::from(self.var),
        )
    }
}

/// Structural view of a node in the frozen-base + overlay space.
#[derive(Clone, Copy)]
struct PNode {
    then_: Edge,
    else_: Edge,
    var: u16,
}

/// Cube-quantification context (mirror of the sequential `QuantCtx`).
#[derive(Debug, Clone)]
struct PQuant {
    in_cube: Vec<bool>,
    max_pos: usize,
    cube_bits: u64,
    combine: BoolOp,
    tag: u32,
}

/// A deduplicated leaf subproblem of the split phase.
#[derive(Debug, Clone, Copy)]
enum Task {
    Apply(BoolOp, Edge, Edge),
    Ite(Edge, Edge, Edge),
    Quant(Edge),
    AndExists(Edge, Edge),
}

/// How an inner node of the combine tree joins its children.
#[derive(Debug, Clone, Copy)]
enum Combine {
    /// `make_node(var, t, e)`.
    Node(u16),
    /// `apply(op, t, e)` — quantification's join.
    Op(BoolOp),
}

/// The combine tree recorded by the split phase (`t` = then-branch).
#[derive(Debug)]
enum Plan {
    Done(Edge),
    Leaf(usize),
    Join {
        how: Combine,
        t: Box<Plan>,
        e: Box<Plan>,
    },
}

fn unary(u: Unary, x: Edge) -> Edge {
    match u {
        Unary::Zero => Edge::ZERO,
        Unary::One => Edge::ONE,
        Unary::Identity => x,
        Unary::Complement => !x,
    }
}

/// The read-only worker context: frozen base + overlay storage.
struct PCtx<'a> {
    base: &'a Robdd,
    base_len: u32,
    table: &'a ShardedTable<VarKey>,
    arena: &'a OverlayArena,
    cache: &'a AtomicCache,
    quant: Option<&'a PQuant>,
}

impl PCtx<'_> {
    #[inline]
    fn pnode(&self, id: u32) -> PNode {
        if id < self.base_len {
            let n = &self.base.nodes[id as usize];
            PNode {
                then_: n.then_(),
                else_: n.else_(),
                var: n.var(),
            }
        } else {
            let (a, b, meta) = self.arena.get(id - self.base_len);
            PNode {
                then_: Edge::from_bits(a),
                else_: Edge::from_bits(b),
                var: meta as u16,
            }
        }
    }

    #[inline]
    fn edge_pos(&self, e: Edge) -> usize {
        if e.is_constant() {
            usize::MAX
        } else {
            self.base.pos_of_var[self.pnode(e.node()).var as usize] as usize
        }
    }

    /// Find-or-create in the canonical frozen-base + overlay space (base
    /// `peek` first, then one shard lock).
    fn find_or_insert(&self, var: u16, then_: Edge, else_: Edge) -> u32 {
        let key = BddKey::new(then_, else_);
        if let Some(id) = self.base.subtables[var as usize].peek(&key) {
            return id;
        }
        let vk = VarKey {
            var,
            then_bits: then_.bits(),
            else_bits: else_.bits(),
        };
        self.table.get_or_insert_with(vk, || {
            self.base_len + self.arena.alloc(then_.bits(), else_.bits(), u32::from(var))
        })
    }

    /// Mirror of [`Robdd::make_node`] (redundancy rule + regular-*then*
    /// normalization).
    fn make_node(&self, var: u16, mut then_: Edge, mut else_: Edge) -> Edge {
        if then_ == else_ {
            return then_;
        }
        let mut out_c = false;
        if then_.is_complemented() {
            then_ = !then_;
            else_ = !else_;
            out_c = true;
        }
        Edge::new(self.find_or_insert(var, then_, else_), out_c)
    }

    /// Mirror of the manager's Shannon cofactors (pure reads).
    fn cofactors(&self, e: Edge, var: u16) -> (Edge, Edge) {
        if e.is_constant() {
            return (e, e);
        }
        let n = self.pnode(e.node());
        if n.var != var {
            return (e, e);
        }
        let c = e.is_complemented();
        (n.then_.complement_if(c), n.else_.complement_if(c))
    }

    /// Worker-side mirror of the manager's `apply_rec`.
    fn apply_rec(&self, mut op: BoolOp, mut f: Edge, mut g: Edge, calls: &mut u64) -> Edge {
        *calls += 1;
        if f == g {
            return unary(op.on_equal_operands(), f);
        }
        if f == !g {
            return unary(op.on_complement_operands(), f);
        }
        if f.is_constant() {
            return unary(op.on_first_const(f == Edge::ONE), g);
        }
        if g.is_constant() {
            return unary(op.on_second_const(g == Edge::ONE), f);
        }
        if f.is_complemented() {
            f = !f;
            op = op.complement_first();
        }
        if g.is_complemented() {
            g = !g;
            op = op.complement_second();
        }
        if f.node() > g.node() {
            std::mem::swap(&mut f, &mut g);
            op = op.swap_operands();
        }
        let mut out_c = false;
        if op.eval(false, false) {
            op = op.complement_output();
            out_c = true;
        }
        if op == BoolOp::FALSE {
            return Edge::ZERO.complement_if(out_c);
        }
        if op == BoolOp::FIRST {
            return f.complement_if(out_c);
        }
        if op == BoolOp::SECOND {
            return g.complement_if(out_c);
        }
        let (k1, k2, tag) = (
            u64::from(f.bits()),
            u64::from(g.bits()),
            u32::from(op.table()),
        );
        if let Some(r) = self.cache.get(k1, k2, tag) {
            return Edge::from_bits(r).complement_if(out_c);
        }
        let (pf, pg) = (self.edge_pos(f), self.edge_pos(g));
        let var = if pf <= pg {
            self.pnode(f.node()).var
        } else {
            self.pnode(g.node()).var
        };
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let t = self.apply_rec(op, f1, g1, calls);
        let e = self.apply_rec(op, f0, g0, calls);
        let r = self.make_node(var, t, e);
        self.cache.insert(k1, k2, tag, r.bits());
        r.complement_if(out_c)
    }

    /// Worker-side mirror of the manager's `ite_rec`.
    fn ite_rec(&self, mut f: Edge, mut g: Edge, mut h: Edge, calls: &mut u64) -> Edge {
        *calls += 1;
        if f == Edge::ONE {
            return g;
        }
        if f == Edge::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return f;
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return !f;
        }
        if f == g || g == Edge::ONE {
            return self.apply_rec(BoolOp::OR, f, h, calls);
        }
        if f == !g || g == Edge::ZERO {
            return self.apply_rec(BoolOp::NOT_AND, f, h, calls);
        }
        if f == h || h == Edge::ZERO {
            return self.apply_rec(BoolOp::AND, f, g, calls);
        }
        if f == !h || h == Edge::ONE {
            return self.apply_rec(BoolOp::IMPLIES, f, g, calls);
        }
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        let mut out_c = false;
        if g.is_complemented() {
            g = !g;
            h = !h;
            out_c = true;
        }
        let k1 = u64::from(f.bits());
        let k2 = (u64::from(g.bits()) << 32) | u64::from(h.bits());
        if let Some(r) = self.cache.get(k1, k2, optag::ITE) {
            return Edge::from_bits(r).complement_if(out_c);
        }
        let mut best = self.edge_pos(f);
        for e in [g, h] {
            best = best.min(self.edge_pos(e));
        }
        let var = self.base.var_at_pos[best] as u16;
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let (h1, h0) = self.cofactors(h, var);
        let t = self.ite_rec(f1, g1, h1, calls);
        let e = self.ite_rec(f0, g0, h0, calls);
        let r = self.make_node(var, t, e);
        self.cache.insert(k1, k2, optag::ITE, r.bits());
        r.complement_if(out_c)
    }

    /// Worker-side mirror of the manager's cube quantification.
    fn quant_rec(&self, f: Edge, q: &PQuant, calls: &mut u64) -> Edge {
        if f.is_constant() || self.edge_pos(f) > q.max_pos {
            return f;
        }
        *calls += 1;
        let (k1, k2) = (u64::from(f.bits()), q.cube_bits);
        if let Some(r) = self.cache.get(k1, k2, q.tag) {
            return Edge::from_bits(r);
        }
        let var = self.pnode(f.node()).var;
        let (f1, f0) = self.cofactors(f, var);
        let r = if q.in_cube[var as usize] {
            let a = self.quant_rec(f1, q, calls);
            let absorbing = if q.tag == optag::EXISTS {
                Edge::ONE
            } else {
                Edge::ZERO
            };
            if a == absorbing {
                absorbing
            } else {
                let b = self.quant_rec(f0, q, calls);
                self.apply_rec(q.combine, a, b, calls)
            }
        } else {
            let a = self.quant_rec(f1, q, calls);
            let b = self.quant_rec(f0, q, calls);
            self.make_node(var, a, b)
        };
        self.cache.insert(k1, k2, q.tag, r.bits());
        r
    }

    /// Worker-side mirror of the manager's fused `and_exists`.
    fn and_exists_rec(&self, f: Edge, g: Edge, q: &PQuant, calls: &mut u64) -> Edge {
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Edge::ZERO;
        }
        if f == Edge::ONE {
            return self.quant_rec(g, q, calls);
        }
        if g == Edge::ONE || f == g {
            return self.quant_rec(f, q, calls);
        }
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let (pf, pg) = (self.edge_pos(f), self.edge_pos(g));
        let pos = pf.min(pg);
        if pos > q.max_pos {
            return self.apply_rec(BoolOp::AND, f, g, calls);
        }
        *calls += 1;
        let k1 = u64::from(f.bits());
        let k2 = (u64::from(g.bits()) << 32) | q.cube_bits;
        if let Some(r) = self.cache.get(k1, k2, optag::AND_EXISTS) {
            return Edge::from_bits(r);
        }
        let var = self.base.var_at_pos[pos] as u16;
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let r = if q.in_cube[var as usize] {
            let a = self.and_exists_rec(f1, g1, q, calls);
            if a == Edge::ONE {
                Edge::ONE
            } else {
                let b = self.and_exists_rec(f0, g0, q, calls);
                self.apply_rec(BoolOp::OR, a, b, calls)
            }
        } else {
            let a = self.and_exists_rec(f1, g1, q, calls);
            let b = self.and_exists_rec(f0, g0, q, calls);
            self.make_node(var, a, b)
        };
        self.cache.insert(k1, k2, optag::AND_EXISTS, r.bits());
        r
    }

    fn run_task(&self, t: &Task) -> (Edge, u64) {
        let mut calls = 0u64;
        let r = match *t {
            Task::Apply(op, f, g) => self.apply_rec(op, f, g, &mut calls),
            Task::Ite(f, g, h) => self.ite_rec(f, g, h, &mut calls),
            Task::Quant(f) => {
                let q = self.quant.expect("quant task without quant context");
                self.quant_rec(f, q, &mut calls)
            }
            Task::AndExists(f, g) => {
                let q = self.quant.expect("and-exists task without quant context");
                self.and_exists_rec(f, g, q, &mut calls)
            }
        };
        (r, calls)
    }
}

/// A multi-core ROBDD manager: the same canonical diagrams and the same
/// results as [`Robdd`], with `apply`/`ite`/`exists`/`forall`/`and_exists`
/// executed across a fork-join worker pool when the operands are large
/// enough to pay for it. Results are bit-identical regardless of thread
/// count (see the module docs).
///
/// ```
/// use robdd::{ParRobdd, BoolOp};
/// let mut mgr = ParRobdd::new(4, 2);
/// let (a, b) = (mgr.var(0), mgr.var(1));
/// let f = mgr.apply(BoolOp::XOR, a, b);
/// assert!(mgr.eval(f, &[true, false, false, false]));
/// ```
#[derive(Debug)]
pub struct ParRobdd {
    inner: Robdd,
    cfg: ParConfig,
    /// The overlay scratch bundle (sharded table, append-only arena,
    /// atomic cache, GC-generation sync) — see
    /// [`ddcore::session::OverlayFrame`] for the shared lifecycle.
    frame: OverlayFrame<VarKey>,
    stats: ParStats,
    probe: FxHashSet<u32>,
}

impl ParRobdd {
    /// Create a manager for `num_vars` variables running on up to
    /// `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or too large for 16-bit indices.
    #[must_use]
    pub fn new(num_vars: usize, threads: usize) -> Self {
        Self::with_config(
            num_vars,
            ParConfig {
                threads: threads.max(1),
                ..ParConfig::default()
            },
        )
    }

    /// Create a manager reading the thread count from `BBDD_THREADS`.
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or too large for 16-bit indices.
    #[must_use]
    pub fn from_env(num_vars: usize, default_threads: usize) -> Self {
        Self::new(num_vars, threads_from_env(default_threads))
    }

    /// Create a manager with explicit [`ParConfig`].
    ///
    /// # Panics
    /// Panics if `num_vars` is 0 or too large for 16-bit indices.
    #[must_use]
    pub fn with_config(num_vars: usize, cfg: ParConfig) -> Self {
        ParRobdd {
            inner: Robdd::new(num_vars),
            frame: OverlayFrame::new(cfg.shards, 64, cfg.cache_ways),
            stats: ParStats::default(),
            probe: FxHashSet::default(),
            cfg,
        }
    }

    /// A private copy for the session layer: the sequential manager's
    /// node store is forked, the overlay frame starts fresh (it is
    /// per-op scratch, recycled at every parallel phase anyway).
    pub(crate) fn fork_state(&self) -> Self {
        ParRobdd {
            inner: self.inner.fork_state(),
            frame: OverlayFrame::new(self.cfg.shards, 64, self.cfg.cache_ways),
            stats: ParStats::default(),
            probe: FxHashSet::default(),
            cfg: self.cfg,
        }
    }

    /// Worker threads the manager may use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Change the worker thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// The wrapped sequential manager (read access).
    #[must_use]
    pub fn inner(&self) -> &Robdd {
        &self.inner
    }

    /// The wrapped sequential manager (mutable access).
    pub fn inner_mut(&mut self) -> &mut Robdd {
        &mut self.inner
    }

    /// Unwrap into the sequential manager.
    #[must_use]
    pub fn into_inner(self) -> Robdd {
        self.inner
    }

    /// Parallel-execution counters.
    #[must_use]
    pub fn par_stats(&self) -> ParStats {
        let mut s = self.stats.clone();
        s.cache = self.frame.cache.stats();
        s.shard_contention = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|x| x.contended)
            .sum();
        s
    }

    /// Counters of the wrapped sequential manager.
    #[must_use]
    pub fn stats(&self) -> RobddStats {
        self.inner.stats()
    }

    // ── thin delegates ────────────────────────────────────────────────

    /// Number of variables managed.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    /// Constant true.
    #[must_use]
    pub fn one(&self) -> Edge {
        self.inner.one()
    }

    /// Constant false.
    #[must_use]
    pub fn zero(&self) -> Edge {
        self.inner.zero()
    }

    /// The positive literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn var(&mut self, var: usize) -> Edge {
        self.inner.var(var)
    }

    /// The negative literal of `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn nvar(&mut self, var: usize) -> Edge {
        self.inner.nvar(var)
    }

    /// Evaluate `f` under an assignment.
    #[must_use]
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        self.inner.eval(f, assignment)
    }

    /// Nodes reachable from `f`.
    #[must_use]
    pub fn node_count(&self, f: Edge) -> usize {
        self.inner.node_count(f)
    }

    /// Live (stored) nodes.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.inner.live_nodes()
    }

    /// Exact satisfying-assignment count.
    ///
    /// # Panics
    /// Panics if the manager has more than 127 variables.
    #[must_use]
    pub fn sat_count(&self, f: Edge) -> u128 {
        self.inner.sat_count(f)
    }

    /// One satisfying assignment, or `None` for constant false.
    #[must_use]
    pub fn any_sat(&self, f: Edge) -> Option<Vec<bool>> {
        self.inner.any_sat(f)
    }

    /// Garbage-collect, tracing the handle registry, and invalidate the
    /// concurrent cache; returns nodes reclaimed. Everything a live
    /// [`crate::ParRobddFn`] handle denotes survives.
    pub fn collect(&mut self) -> usize {
        let freed = self.inner.gc();
        self.frame.invalidate(self.inner.gc_generation());
        freed
    }

    /// Arm the automatic GC latch (see [`Robdd::set_gc_threshold`]).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.inner.set_gc_threshold(threshold);
    }

    // The owned-handle front-end lives in `ddcore::api` (see `crate::api`):
    // the generic layer registers an operation's result *before* running
    // `RawManager::after_op` — the latched merge GC plus the cache-epoch
    // sync below (stale parallel-cache entries would otherwise resurrect
    // freed node ids).

    /// Invalidate the concurrent cache if the inner manager collected
    /// since we last looked (node ids may have been recycled). Checked
    /// before every parallel phase and at every operation boundary, so
    /// even collections triggered through `inner_mut()` cannot leave
    /// stale id-keyed entries behind.
    pub(crate) fn sync_cache_epoch(&mut self) {
        self.frame.sync_generation(self.inner.gc_generation());
    }

    // ── parallel operations ───────────────────────────────────────────

    /// `f ⊗ g` for an arbitrary binary operator, parallel above the
    /// cutoff.
    pub fn apply(&mut self, op: BoolOp, f: Edge, g: Edge) -> Edge {
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.apply(op, f, g);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_apply(op, f, g, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, None)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::AND, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::OR, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XOR, f, g)
    }

    /// `f ⊙ g`.
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Edge {
        self.apply(BoolOp::XNOR, f, g)
    }

    /// If-then-else, parallel above the cutoff.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        if !self.worth_splitting(&[f, g, h]) {
            self.stats.ops_sequential += 1;
            return self.inner.ite(f, g, h);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_ite(f, g, h, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, None)
    }

    /// Existential cube quantification `∃ vars . f`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn exists(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.quantify(f, vars, BoolOp::OR, optag::EXISTS)
    }

    /// Universal cube quantification `∀ vars . f`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn forall(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.quantify(f, vars, BoolOp::AND, optag::FORALL)
    }

    /// Fused relational product `∃ vars . (f ∧ g)`.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn and_exists(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.and_exists(f, g, vars);
        }
        let Some(q) = self.build_quant(vars, BoolOp::OR, optag::EXISTS) else {
            return self.apply(BoolOp::AND, f, g);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_and_exists(f, g, &q, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, Some(&q))
    }

    // ── governed operations ───────────────────────────────────────────
    //
    // Mirror of `bbdd::ParBbdd`'s governed suite: an unlimited budget
    // short-circuits to the ordinary path (the infallible ops pay
    // nothing), a limited one routes the sequential fallback through the
    // inner manager's governed recursion and the parallel phase through
    // the cooperative stop predicate (workers consult the budget's
    // [`StopView`](ddcore::govern::StopView) between tasks); the commit
    // charges every imported node. Aborts are structurally safe: workers
    // only write the overlay (recycled by the next op) and mid-commit
    // orphans are unreferenced, reclaimed by the next GC.

    /// [`ParRobdd::apply`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    pub fn try_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.apply(op, f, g));
        }
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_apply(op, f, g, budget);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_apply(op, f, g, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, None, budget)
    }

    /// [`ParRobdd::ite`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    pub fn try_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.ite(f, g, h));
        }
        if !self.worth_splitting(&[f, g, h]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_ite(f, g, h, budget);
        }
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_ite(f, g, h, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, None, budget)
    }

    /// [`ParRobdd::exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_exists(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_quantify(f, vars, BoolOp::OR, optag::EXISTS, budget)
    }

    /// [`ParRobdd::forall`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_forall(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.try_quantify(f, vars, BoolOp::AND, optag::FORALL, budget)
    }

    /// [`ParRobdd::and_exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason; the manager stays fully usable.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.and_exists(f, g, vars));
        }
        if !self.worth_splitting(&[f, g]) {
            self.stats.ops_sequential += 1;
            return self.inner.try_and_exists(f, g, vars, budget);
        }
        let Some(q) = self.build_quant(vars, BoolOp::OR, optag::EXISTS) else {
            return self.try_apply(BoolOp::AND, f, g, budget);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_and_exists(f, g, &q, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, Some(&q), budget)
    }

    /// [`Robdd::try_compose`] on the wrapped sequential manager (no
    /// parallel phase).
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn try_compose(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.inner.try_compose(f, var, g, budget)
    }

    /// [`Robdd::sat_count_checked`] on the wrapped sequential manager.
    #[must_use]
    pub fn sat_count_checked(&self, f: Edge) -> Option<u128> {
        self.inner.sat_count_checked(f)
    }

    /// [`Robdd::try_sat_count`] on the wrapped sequential manager.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if the manager has more than 127 variables.
    pub fn try_sat_count(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        self.inner.try_sat_count(f, budget)
    }

    fn try_quantify(
        &mut self,
        f: Edge,
        vars: &[usize],
        combine: BoolOp,
        tag: u32,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if !budget.stop_view().is_limited() {
            return Ok(self.quantify(f, vars, combine, tag));
        }
        if !self.worth_splitting(&[f]) {
            self.stats.ops_sequential += 1;
            return if tag == optag::EXISTS {
                self.inner.try_exists(f, vars, budget)
            } else {
                self.inner.try_forall(f, vars, budget)
            };
        }
        let Some(q) = self.build_quant(vars, combine, tag) else {
            return Ok(f);
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_quant(f, &q, depth, &mut tasks, &mut dedup);
        self.try_execute(&plan, &tasks, Some(&q), budget)
    }

    fn quantify(&mut self, f: Edge, vars: &[usize], combine: BoolOp, tag: u32) -> Edge {
        if !self.worth_splitting(&[f]) {
            self.stats.ops_sequential += 1;
            return if tag == optag::EXISTS {
                self.inner.exists(f, vars)
            } else {
                self.inner.forall(f, vars)
            };
        }
        let Some(q) = self.build_quant(vars, combine, tag) else {
            return f;
        };
        let depth = self.split_depth();
        let mut tasks = Vec::new();
        let mut dedup = FxHashMap::default();
        let plan = self.split_quant(f, &q, depth, &mut tasks, &mut dedup);
        self.execute(&plan, &tasks, Some(&q))
    }

    // ── pipeline internals ────────────────────────────────────────────

    /// The deterministic go/no-go: combined operand size against the
    /// cutoff (bounded walk, thread-count independent).
    fn worth_splitting(&mut self, roots: &[Edge]) -> bool {
        if self.cfg.cutoff == 0 {
            return true;
        }
        if self.inner.live_nodes() < self.cfg.cutoff {
            return false;
        }
        let probe = &mut self.probe;
        probe.clear();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !probe.insert(id) {
                continue;
            }
            if probe.len() >= self.cfg.cutoff {
                return true;
            }
            let n = self.inner.node(id);
            for child in [n.then_(), n.else_()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        false
    }

    fn split_depth(&self) -> u16 {
        match self.cfg.split_depth {
            Some(d) => d.max(1),
            None => {
                let t = self.cfg.threads.max(1).next_power_of_two();
                (t.trailing_zeros() as u16 + 3).min(12)
            }
        }
    }

    /// Mirror of the sequential `quant_ctx` (cube built pre-freeze).
    fn build_quant(&mut self, vars: &[usize], combine: BoolOp, tag: u32) -> Option<PQuant> {
        let n = self.inner.num_vars();
        let mut in_cube = vec![false; n];
        let mut any = false;
        for &v in vars {
            assert!(v < n, "quantified variable {v} out of range");
            in_cube[v] = true;
            any = true;
        }
        if !any {
            return None;
        }
        let max_pos = (0..n)
            .filter(|&v| in_cube[v])
            .map(|v| self.inner.pos_of_var[v] as usize)
            .max()
            .expect("cube is non-empty");
        let mut cube = Edge::ONE;
        for v in (0..n).filter(|&v| in_cube[v]) {
            let lit = self.inner.var(v);
            cube = self.inner.and(cube, lit);
        }
        Some(PQuant {
            in_cube,
            max_pos,
            cube_bits: u64::from(cube.bits()),
            combine,
            tag,
        })
    }

    fn intern_task(
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
        key: (u32, u64, u64),
        task: Task,
    ) -> Plan {
        let idx = *dedup.entry(key).or_insert_with(|| {
            tasks.push(task);
            tasks.len() - 1
        });
        Plan::Leaf(idx)
    }

    fn split_apply(
        &mut self,
        op: BoolOp,
        f: Edge,
        g: Edge,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == g {
            return Plan::Done(unary(op.on_equal_operands(), f));
        }
        if f == !g {
            return Plan::Done(unary(op.on_complement_operands(), f));
        }
        if f.is_constant() {
            return Plan::Done(unary(op.on_first_const(f == Edge::ONE), g));
        }
        if g.is_constant() {
            return Plan::Done(unary(op.on_second_const(g == Edge::ONE), f));
        }
        if depth == 0 {
            let key = (
                u32::from(op.table()),
                u64::from(f.bits()),
                u64::from(g.bits()),
            );
            return Self::intern_task(tasks, dedup, key, Task::Apply(op, f, g));
        }
        let (pf, pg) = (self.inner.edge_pos(f), self.inner.edge_pos(g));
        let var = if pf <= pg {
            self.inner.node(f.node()).var()
        } else {
            self.inner.node(g.node()).var()
        };
        let (f1, f0) = self.inner.cofactors(f, var);
        let (g1, g0) = self.inner.cofactors(g, var);
        let t = self.split_apply(op, f1, g1, depth - 1, tasks, dedup);
        let e = self.split_apply(op, f0, g0, depth - 1, tasks, dedup);
        Plan::Join {
            how: Combine::Node(var),
            t: Box::new(t),
            e: Box::new(e),
        }
    }

    fn split_ite(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == Edge::ONE {
            return Plan::Done(g);
        }
        if f == Edge::ZERO {
            return Plan::Done(h);
        }
        if g == h {
            return Plan::Done(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Plan::Done(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Plan::Done(!f);
        }
        if f == g || g == Edge::ONE {
            return self.split_apply(BoolOp::OR, f, h, depth, tasks, dedup);
        }
        if f == !g || g == Edge::ZERO {
            return self.split_apply(BoolOp::NOT_AND, f, h, depth, tasks, dedup);
        }
        if f == h || h == Edge::ZERO {
            return self.split_apply(BoolOp::AND, f, g, depth, tasks, dedup);
        }
        if f == !h || h == Edge::ONE {
            return self.split_apply(BoolOp::IMPLIES, f, g, depth, tasks, dedup);
        }
        if depth == 0 {
            let key = (
                optag::ITE,
                u64::from(f.bits()),
                (u64::from(g.bits()) << 32) | u64::from(h.bits()),
            );
            return Self::intern_task(tasks, dedup, key, Task::Ite(f, g, h));
        }
        let mut best = self.inner.edge_pos(f);
        for e in [g, h] {
            best = best.min(self.inner.edge_pos(e));
        }
        let var = self.inner.var_at_pos[best] as u16;
        let (f1, f0) = self.inner.cofactors(f, var);
        let (g1, g0) = self.inner.cofactors(g, var);
        let (h1, h0) = self.inner.cofactors(h, var);
        let t = self.split_ite(f1, g1, h1, depth - 1, tasks, dedup);
        let e = self.split_ite(f0, g0, h0, depth - 1, tasks, dedup);
        Plan::Join {
            how: Combine::Node(var),
            t: Box::new(t),
            e: Box::new(e),
        }
    }

    fn split_quant(
        &mut self,
        f: Edge,
        q: &PQuant,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f.is_constant() || self.inner.edge_pos(f) > q.max_pos {
            return Plan::Done(f);
        }
        if depth == 0 {
            let key = (q.tag, u64::from(f.bits()), q.cube_bits);
            return Self::intern_task(tasks, dedup, key, Task::Quant(f));
        }
        let var = self.inner.node(f.node()).var();
        let (f1, f0) = self.inner.cofactors(f, var);
        let t = self.split_quant(f1, q, depth - 1, tasks, dedup);
        let e = self.split_quant(f0, q, depth - 1, tasks, dedup);
        let how = if q.in_cube[var as usize] {
            Combine::Op(q.combine)
        } else {
            Combine::Node(var)
        };
        Plan::Join {
            how,
            t: Box::new(t),
            e: Box::new(e),
        }
    }

    fn split_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        q: &PQuant,
        depth: u16,
        tasks: &mut Vec<Task>,
        dedup: &mut FxHashMap<(u32, u64, u64), usize>,
    ) -> Plan {
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Plan::Done(Edge::ZERO);
        }
        if f == Edge::ONE {
            return self.split_quant(g, q, depth, tasks, dedup);
        }
        if g == Edge::ONE || f == g {
            return self.split_quant(f, q, depth, tasks, dedup);
        }
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let (pf, pg) = (self.inner.edge_pos(f), self.inner.edge_pos(g));
        let pos = pf.min(pg);
        if pos > q.max_pos {
            return self.split_apply(BoolOp::AND, f, g, depth, tasks, dedup);
        }
        if depth == 0 {
            let key = (
                optag::AND_EXISTS,
                u64::from(f.bits()),
                (u64::from(g.bits()) << 32) ^ q.cube_bits,
            );
            return Self::intern_task(tasks, dedup, key, Task::AndExists(f, g));
        }
        let var = self.inner.var_at_pos[pos] as u16;
        let (f1, f0) = self.inner.cofactors(f, var);
        let (g1, g0) = self.inner.cofactors(g, var);
        let t = self.split_and_exists(f1, g1, q, depth - 1, tasks, dedup);
        let e = self.split_and_exists(f0, g0, q, depth - 1, tasks, dedup);
        let how = if q.in_cube[var as usize] {
            Combine::Op(BoolOp::OR)
        } else {
            Combine::Node(var)
        };
        Plan::Join {
            how,
            t: Box::new(t),
            e: Box::new(e),
        }
    }

    /// Phases 2 + 3: fork-join the leaf tasks over the frozen base, then
    /// commit deterministically (import + combine).
    fn execute(&mut self, plan: &Plan, tasks: &[Task], quant: Option<&PQuant>) -> Edge {
        // Catch any inner-manager collection this wrapper did not perform
        // itself before trusting id-keyed cache entries.
        self.sync_cache_epoch();
        if tasks.is_empty() {
            return self.resolve(plan, &[]);
        }
        self.stats.ops_parallel += 1;
        self.frame.recycle();
        self.frame.cache.bump_epoch();
        let base_len = u32::try_from(self.inner.nodes.len()).expect("arena fits u32");
        let results: Vec<AtomicU64> = tasks.iter().map(|_| AtomicU64::new(0)).collect();
        let recursions = AtomicU64::new(0);
        let fj = {
            let mut phase = ddcore::obs::span(ddcore::obs::Op::ParPhase);
            phase.set_arg("tasks", tasks.len() as u64);
            let ctx = PCtx {
                base: &self.inner,
                base_len,
                table: &self.frame.table,
                arena: &self.frame.arena,
                cache: &self.frame.cache,
                quant,
            };
            fork_join(self.cfg.threads, tasks.len(), |i| {
                let (r, calls) = ctx.run_task(&tasks[i]);
                results[i].store(u64::from(r.bits()), Ordering::Release);
                recursions.fetch_add(calls, Ordering::Relaxed);
            })
        };
        self.stats.tasks_executed += tasks.len() as u64;
        self.stats.tasks_stolen += fj.stolen;
        if self.stats.tasks_by_worker.len() < fj.executed.len() {
            self.stats.tasks_by_worker.resize(fj.executed.len(), 0);
        }
        for (slot, n) in self.stats.tasks_by_worker.iter_mut().zip(&fj.executed) {
            *slot += n;
        }
        self.stats.par_recursions += recursions.load(Ordering::Relaxed);
        self.stats.overlay_nodes += u64::from(self.frame.arena.len());
        self.stats.last_shard_occupancy = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|s| s.len)
            .collect();
        let mut commit = ddcore::obs::span(ddcore::obs::Op::ParCommit);
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        let leaf_edges: Vec<Edge> = results
            .iter()
            .map(|slot| {
                let e = Edge::from_bits(slot.load(Ordering::Acquire) as u32);
                Self::import(&mut self.inner, &self.frame.arena, base_len, &mut memo, e)
            })
            .collect();
        self.stats.nodes_imported += memo.len() as u64;
        commit.set_arg("imported", memo.len() as u64);
        self.resolve(plan, &leaf_edges)
    }

    /// Commit one overlay edge into the base manager (memoized depth-first
    /// rebuild through the canonicalizing `make_node`).
    fn import(
        inner: &mut Robdd,
        arena: &OverlayArena,
        base_len: u32,
        memo: &mut FxHashMap<u32, Edge>,
        e: Edge,
    ) -> Edge {
        if e.is_constant() || e.node() < base_len {
            return e;
        }
        let id = e.node();
        if let Some(&r) = memo.get(&id) {
            return r.complement_if(e.is_complemented());
        }
        let (a, b, meta) = arena.get(id - base_len);
        let then_ = Self::import(inner, arena, base_len, memo, Edge::from_bits(a));
        let else_ = Self::import(inner, arena, base_len, memo, Edge::from_bits(b));
        let r = inner.make_node(meta as u16, then_, else_);
        debug_assert!(
            !r.is_complemented(),
            "regular overlay nodes import to regular edges"
        );
        memo.insert(id, r);
        r.complement_if(e.is_complemented())
    }

    /// Resolve the combine tree bottom-up (then-branch first, mirroring
    /// the sequential recursion's evaluation order).
    fn resolve(&mut self, plan: &Plan, leaf_edges: &[Edge]) -> Edge {
        match plan {
            Plan::Done(e) => *e,
            Plan::Leaf(i) => leaf_edges[*i],
            Plan::Join { how, t, e } => {
                let tt = self.resolve(t, leaf_edges);
                let ee = self.resolve(e, leaf_edges);
                match how {
                    Combine::Node(var) => self.inner.make_node(*var, tt, ee),
                    Combine::Op(op) => self.apply(*op, tt, ee),
                }
            }
        }
    }

    /// Governed phases 2 + 3 — [`ParRobdd::execute`] under an
    /// [`OpBudget`]. See `bbdd::ParBbdd::try_execute` for the abort-safety
    /// argument: workers only write the overlay, the commit charges every
    /// imported node per leaf, and mid-commit orphans are unreferenced.
    fn try_execute(
        &mut self,
        plan: &Plan,
        tasks: &[Task],
        quant: Option<&PQuant>,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        self.sync_cache_epoch();
        let view = budget.stop_view();
        if let Some(reason) = view.should_stop(0) {
            return Err(reason);
        }
        if tasks.is_empty() {
            return self.try_resolve(plan, &[], budget);
        }
        self.stats.ops_parallel += 1;
        self.frame.recycle();
        self.frame.cache.bump_epoch();
        let base_len = u32::try_from(self.inner.nodes.len()).expect("arena fits u32");
        let results: Vec<AtomicU64> = tasks.iter().map(|_| AtomicU64::new(0)).collect();
        let recursions = AtomicU64::new(0);
        let (fj, stopped) = {
            let mut phase = ddcore::obs::span(ddcore::obs::Op::ParPhase);
            phase.set_arg("tasks", tasks.len() as u64);
            let ctx = PCtx {
                base: &self.inner,
                base_len,
                table: &self.frame.table,
                arena: &self.frame.arena,
                cache: &self.frame.cache,
                quant,
            };
            let arena = &self.frame.arena;
            match try_fork_join_governed(
                self.cfg.threads,
                tasks.len(),
                || view.should_stop(u64::from(arena.len())).is_some(),
                |i| {
                    let (r, calls) = ctx.run_task(&tasks[i]);
                    results[i].store(u64::from(r.bits()), Ordering::Release);
                    recursions.fetch_add(calls, Ordering::Relaxed);
                },
            ) {
                Ok(x) => x,
                Err(p) => panic!("{p}"),
            }
        };
        self.stats.tasks_executed += fj.executed.iter().sum::<u64>();
        self.stats.tasks_stolen += fj.stolen;
        if self.stats.tasks_by_worker.len() < fj.executed.len() {
            self.stats.tasks_by_worker.resize(fj.executed.len(), 0);
        }
        for (slot, n) in self.stats.tasks_by_worker.iter_mut().zip(&fj.executed) {
            *slot += n;
        }
        self.stats.par_recursions += recursions.load(Ordering::Relaxed);
        self.stats.overlay_nodes += u64::from(self.frame.arena.len());
        self.stats.last_shard_occupancy = self
            .frame
            .table
            .shard_stats()
            .iter()
            .map(|s| s.len)
            .collect();
        if stopped {
            // Unclaimed result slots hold garbage; nothing reads them.
            return Err(view
                .should_stop(u64::from(self.frame.arena.len()))
                .unwrap_or(OpAbort::Cancelled));
        }
        let mut commit = ddcore::obs::span(ddcore::obs::Op::ParCommit);
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        let mut leaf_edges: Vec<Edge> = Vec::with_capacity(results.len());
        let mut abort: Option<OpAbort> = None;
        for slot in &results {
            let e = Edge::from_bits(slot.load(Ordering::Acquire) as u32);
            let before = memo.len();
            leaf_edges.push(Self::import(
                &mut self.inner,
                &self.frame.arena,
                base_len,
                &mut memo,
                e,
            ));
            if let Err(reason) = budget.charge((memo.len() - before) as u64) {
                abort = Some(reason);
                break;
            }
        }
        self.stats.nodes_imported += memo.len() as u64;
        if let Some(reason) = abort {
            return Err(reason);
        }
        commit.set_arg("imported", memo.len() as u64);
        self.try_resolve(plan, &leaf_edges, budget)
    }

    /// Governed combine-tree resolution: structural joins poll the budget
    /// before each `make_node`, operator joins recurse through the
    /// governed apply.
    fn try_resolve(
        &mut self,
        plan: &Plan,
        leaf_edges: &[Edge],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match plan {
            Plan::Done(e) => Ok(*e),
            Plan::Leaf(i) => Ok(leaf_edges[*i]),
            Plan::Join { how, t, e } => {
                let tt = self.try_resolve(t, leaf_edges, budget)?;
                let ee = self.try_resolve(e, leaf_edges, budget)?;
                match how {
                    Combine::Node(var) => {
                        budget.checkpoint()?;
                        Ok(self.inner.make_node(*var, tt, ee))
                    }
                    Combine::Op(op) => self.try_apply(*op, tt, ee, budget),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced() -> ParConfig {
        ParConfig {
            threads: 4,
            cutoff: 0,
            split_depth: Some(3),
            cache_ways: 1 << 10,
            shards: 8,
        }
    }

    fn build_mixed(
        n: usize,
        seed: u64,
        apply: &mut impl FnMut(BoolOp, Edge, Edge) -> Edge,
        vars: &[Edge],
    ) -> Edge {
        let ops = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
        ];
        let mut state = seed | 1;
        let mut f = vars[0];
        for _ in 0..3 * n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = ops[(state >> 33) as usize % ops.len()];
            let v = vars[(state >> 18) as usize % n];
            f = apply(op, f, v);
        }
        f
    }

    #[test]
    fn parallel_ops_match_sequential_and_are_thread_count_invariant() {
        let n = 10;
        for seed in 0..4u64 {
            let mut reference: Option<(Edge, Edge, Edge, Edge, Edge)> = None;
            let mut seq = Robdd::new(n);
            let vs: Vec<Edge> = (0..n).map(|v| seq.var(v)).collect();
            let fs = build_mixed(n, seed, &mut |op, a, b| seq.apply(op, a, b), &vs);
            let gs = build_mixed(n, seed + 77, &mut |op, a, b| seq.apply(op, a, b), &vs);
            let seq_apply = seq.apply(BoolOp::AND, fs, gs);
            let seq_ite = seq.ite(fs, gs, seq_apply);
            let seq_ex = seq.exists(fs, &[1, 3, 4]);
            let seq_fa = seq.forall(fs, &[0, 2]);
            let seq_ae = seq.and_exists(fs, gs, &[2, 5, 6]);

            for threads in [1usize, 2, 4, 8] {
                let mut par = ParRobdd::with_config(
                    n,
                    ParConfig {
                        threads,
                        ..forced()
                    },
                );
                let vp: Vec<Edge> = (0..n).map(|v| par.var(v)).collect();
                let fp = build_mixed(n, seed, &mut |op, a, b| par.apply(op, a, b), &vp);
                let gp = build_mixed(n, seed + 77, &mut |op, a, b| par.apply(op, a, b), &vp);
                let p_apply = par.apply(BoolOp::AND, fp, gp);
                let p_ite = par.ite(fp, gp, p_apply);
                let p_ex = par.exists(fp, &[1, 3, 4]);
                let p_fa = par.forall(fp, &[0, 2]);
                let p_ae = par.and_exists(fp, gp, &[2, 5, 6]);
                let got = (p_apply, p_ite, p_ex, p_fa, p_ae);
                match reference {
                    None => reference = Some(got),
                    Some(expect) => assert_eq!(
                        got, expect,
                        "seed {seed}: thread count {threads} changed a root"
                    ),
                }
                par.inner().validate().unwrap();
                for (p, s, name) in [
                    (p_apply, seq_apply, "apply"),
                    (p_ite, seq_ite, "ite"),
                    (p_ex, seq_ex, "exists"),
                    (p_fa, seq_fa, "forall"),
                    (p_ae, seq_ae, "and_exists"),
                ] {
                    assert_eq!(
                        par.node_count(p),
                        seq.node_count(s),
                        "seed {seed} {name}: canonical sizes differ"
                    );
                    for m in 0..(1u32 << n) {
                        let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                        assert_eq!(
                            par.eval(p, &a),
                            seq.eval(s, &a),
                            "seed {seed} {name} assignment {a:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_fallback_below_cutoff() {
        let mut par = ParRobdd::new(6, 4);
        let (a, b) = (par.var(0), par.var(1));
        let f = par.apply(BoolOp::AND, a, b);
        assert!(!f.is_constant());
        let st = par.par_stats();
        assert_eq!(st.ops_parallel, 0);
        assert!(st.ops_sequential > 0);
    }

    #[test]
    fn collect_keeps_roots_and_recycles() {
        let mut par = ParRobdd::with_config(8, forced());
        let vs: Vec<Edge> = (0..8).map(|v| par.var(v)).collect();
        let f = build_mixed(8, 5, &mut |op, a, b| par.apply(op, a, b), &vs);
        let tf: Vec<bool> = (0..256u32)
            .map(|m| {
                let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
                par.eval(f, &a)
            })
            .collect();
        let _pins: Vec<_> = vs.iter().chain([&f]).map(|&e| par.pin(e)).collect();
        par.collect();
        par.inner().validate().unwrap();
        for (m, want) in tf.iter().enumerate() {
            let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(par.eval(f, &a), *want);
        }
        let g = par.apply(BoolOp::XOR, f, vs[0]);
        let g2 = par.apply(BoolOp::XOR, f, vs[0]);
        assert_eq!(g, g2);
    }
}

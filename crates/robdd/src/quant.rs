//! The verification ops layer for the ROBDD baseline: cube quantification,
//! fused and-exists, cached composition, the generic n-ary `apply` and
//! model enumeration.
//!
//! The API mirrors the BBDD package's (`bbdd::Bbdd` has the same methods),
//! so the same verification driver — e.g. `logicnet`'s combinational
//! equivalence checker — runs on either manager. All recursive operations
//! go through the shared computed table under the tags of
//! [`ddcore::optag`]. The recursions here are the classic
//! Shannon-expansion forms (CUDD-style); the BBDD package documents the
//! chain-specific differences.

use crate::edge::Edge;
use crate::manager::Robdd;
use ddcore::boolop::BoolOp;
use ddcore::fxhash::FxHashMap;
use ddcore::govern::{OpAbort, OpBudget};
use ddcore::nary::NaryOp;
use ddcore::optag;

/// Immutable context shared by one cube-quantification run.
struct QuantCtx {
    /// `in_cube[v]` — is variable `v` quantified?
    in_cube: Vec<bool>,
    /// Largest top-based order position among quantified variables; nodes
    /// strictly below (larger position means deeper) cannot change.
    max_pos: usize,
    /// Cache key word: packed edge of the cube's literal conjunction.
    cube_bits: u64,
    /// `OR` for `∃`, `AND` for `∀`.
    combine: BoolOp,
    /// [`optag::EXISTS`] or [`optag::FORALL`].
    tag: u32,
}

impl Robdd {
    /// Existential quantification `∃ vars . f` (cube-based, cached).
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let ab = mgr.and(a, b);
    /// let f = mgr.or(ab, c);
    /// assert_eq!(mgr.exists(f, &[0, 1]), mgr.one());
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn exists(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.try_exists(f, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::exists`] under a resource budget; see [`Robdd::try_apply`]
    /// for the polling and abort-safety contract.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_exists(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::OR, optag::EXISTS) {
            Some(ctx) => self.quant_rec(f, &ctx, budget),
            None => Ok(f),
        }
    }

    /// Universal quantification `∀ vars . f`.
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(2);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.or(a, b);
    /// assert_eq!(mgr.forall(f, &[0]), b);
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn forall(&mut self, f: Edge, vars: &[usize]) -> Edge {
        self.try_forall(f, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::forall`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_forall(
        &mut self,
        f: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::AND, optag::FORALL) {
            Some(ctx) => self.quant_rec(f, &ctx, budget),
            None => Ok(f),
        }
    }

    /// The fused relational product `∃ vars . (f ∧ g)`, computed without
    /// materializing the conjunction.
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let f = mgr.xnor(a, b);
    /// let g = mgr.xnor(b, c);
    /// let r = mgr.and_exists(f, g, &[1]);
    /// let ac = mgr.xnor(a, c);
    /// assert_eq!(r, ac);
    /// ```
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn and_exists(&mut self, f: Edge, g: Edge, vars: &[usize]) -> Edge {
        self.try_and_exists(f, g, vars, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::and_exists`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn try_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        vars: &[usize],
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        match self.quant_ctx(vars, BoolOp::OR, optag::EXISTS) {
            Some(ctx) => self.and_exists_rec(f, g, &ctx, budget),
            None => self.apply_rec(BoolOp::AND, f, g, budget),
        }
    }

    fn quant_ctx(&mut self, vars: &[usize], combine: BoolOp, tag: u32) -> Option<QuantCtx> {
        let n = self.num_vars();
        let mut in_cube = vec![false; n];
        let mut any = false;
        for &v in vars {
            assert!(v < n, "quantified variable {v} out of range");
            in_cube[v] = true;
            any = true;
        }
        if !any {
            return None;
        }
        let max_pos = (0..n)
            .filter(|&v| in_cube[v])
            .map(|v| self.pos_of_var[v] as usize)
            .max()
            .expect("cube is non-empty");
        let mut cube = Edge::ONE;
        for v in (0..n).filter(|&v| in_cube[v]) {
            let lit = self.var(v);
            cube = self.and(cube, lit);
        }
        Some(QuantCtx {
            in_cube,
            max_pos,
            cube_bits: cube.bits() as u64,
            combine,
            tag,
        })
    }

    fn quant_rec(
        &mut self,
        f: Edge,
        ctx: &QuantCtx,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if f.is_constant() || self.edge_pos(f) > ctx.max_pos {
            return Ok(f); // below every quantified variable
        }
        self.stats.quant_calls += 1;
        let (k1, k2) = (f.bits() as u64, ctx.cube_bits);
        if let Some(r) = self.cache.get(k1, k2, ctx.tag) {
            return Ok(Edge::from_bits(r as u32));
        }
        // Poll on the miss, before materializing (see apply_rec).
        budget.checkpoint()?;
        let var = self.node(f.node()).var();
        let (f1, f0) = self.cofactors(f, var);
        let r = if ctx.in_cube[var as usize] {
            let a = self.quant_rec(f1, ctx, budget)?;
            let absorbing = if ctx.tag == optag::EXISTS {
                Edge::ONE
            } else {
                Edge::ZERO
            };
            if a == absorbing {
                absorbing
            } else {
                let b = self.quant_rec(f0, ctx, budget)?;
                self.apply_rec(ctx.combine, a, b, budget)?
            }
        } else {
            let a = self.quant_rec(f1, ctx, budget)?;
            let b = self.quant_rec(f0, ctx, budget)?;
            self.make_node(var, a, b)
        };
        self.cache.insert(k1, k2, ctx.tag, r.bits() as u64);
        Ok(r)
    }

    fn and_exists_rec(
        &mut self,
        f: Edge,
        g: Edge,
        ctx: &QuantCtx,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        if f == Edge::ZERO || g == Edge::ZERO || f == !g {
            return Ok(Edge::ZERO);
        }
        if f == Edge::ONE {
            return self.quant_rec(g, ctx, budget);
        }
        if g == Edge::ONE || f == g {
            return self.quant_rec(f, ctx, budget);
        }
        let (f, g) = if f.bits() <= g.bits() { (f, g) } else { (g, f) };
        let (pf, pg) = (self.edge_pos(f), self.edge_pos(g));
        let pos = pf.min(pg);
        if pos > ctx.max_pos {
            return self.apply_rec(BoolOp::AND, f, g, budget);
        }
        self.stats.quant_calls += 1;
        let k1 = f.bits() as u64;
        let k2 = ((g.bits() as u64) << 32) | ctx.cube_bits;
        if let Some(r) = self.cache.get(k1, k2, optag::AND_EXISTS) {
            return Ok(Edge::from_bits(r as u32));
        }
        // Poll on the miss, before materializing (see apply_rec).
        budget.checkpoint()?;
        let var = self.var_at_pos[pos] as u16;
        let (f1, f0) = self.cofactors(f, var);
        let (g1, g0) = self.cofactors(g, var);
        let r = if ctx.in_cube[var as usize] {
            let a = self.and_exists_rec(f1, g1, ctx, budget)?;
            if a == Edge::ONE {
                Edge::ONE
            } else {
                let b = self.and_exists_rec(f0, g0, ctx, budget)?;
                self.apply_rec(BoolOp::OR, a, b, budget)?
            }
        } else {
            let a = self.and_exists_rec(f1, g1, ctx, budget)?;
            let b = self.and_exists_rec(f0, g0, ctx, budget)?;
            self.make_node(var, a, b)
        };
        self.cache
            .insert(k1, k2, optag::AND_EXISTS, r.bits() as u64);
        Ok(r)
    }

    /// Substitute `var := g` in `f` (Boolean composition), computed by the
    /// classic cached recursion (`ite` recombination keeps the order
    /// intact whatever variables `g` mentions).
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(3);
    /// let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
    /// let f = mgr.and(a, b);
    /// let g = mgr.or(b, c);
    /// assert_eq!(mgr.compose(f, 0, g), b); // (b∨c)∧b = b
    /// ```
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn compose(&mut self, f: Edge, var: usize, g: Edge) -> Edge {
        self.try_compose(f, var, g, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::compose`] under a resource budget.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn try_compose(
        &mut self,
        f: Edge,
        var: usize,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        assert!(var < self.num_vars(), "compose variable out of range");
        self.compose_rec(f, var as u16, g, budget)
    }

    fn compose_rec(
        &mut self,
        f: Edge,
        var: u16,
        g: Edge,
        budget: &mut OpBudget,
    ) -> Result<Edge, OpAbort> {
        // f independent of var once its top sits below var in the order.
        if f.is_constant() || self.edge_pos(f) > self.pos_of_var[var as usize] as usize {
            return Ok(f);
        }
        self.stats.compose_calls += 1;
        let k1 = f.bits() as u64;
        let k2 = ((g.bits() as u64) << 32) | u64::from(var);
        if let Some(r) = self.cache.get(k1, k2, optag::COMPOSE) {
            return Ok(Edge::from_bits(r as u32));
        }
        // Poll on the miss, before materializing (see apply_rec).
        budget.checkpoint()?;
        let n = *self.node(f.node());
        let c = f.is_complemented();
        let (f1, f0) = (n.then_().complement_if(c), n.else_().complement_if(c));
        let r = if n.var() == var {
            self.ite_rec(g, f1, f0, budget)?
        } else {
            let t = self.compose_rec(f1, var, g, budget)?;
            let e = self.compose_rec(f0, var, g, budget)?;
            let lit = self.var(n.var() as usize);
            self.ite_rec(lit, t, e, budget)?
        };
        self.cache.insert(k1, k2, optag::COMPOSE, r.bits() as u64);
        Ok(r)
    }

    /// Simultaneous composition: substitute `subs[v]` for every variable
    /// `v` with a `Some` entry, all at once (missing entries are the
    /// identity). See `bbdd::Bbdd::vector_compose` for why this is not the
    /// same as iterated [`Robdd::compose`].
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(2);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.and(a, !b);
    /// let swapped = mgr.vector_compose(f, &[Some(b), Some(a)]);
    /// let expect = mgr.and(b, !a);
    /// assert_eq!(swapped, expect);
    /// ```
    pub fn vector_compose(&mut self, f: Edge, subs: &[Option<Edge>]) -> Edge {
        let mut memo: FxHashMap<u32, Edge> = FxHashMap::default();
        self.vector_compose_rec(f, subs, &mut memo)
    }

    fn vector_compose_rec(
        &mut self,
        f: Edge,
        subs: &[Option<Edge>],
        memo: &mut FxHashMap<u32, Edge>,
    ) -> Edge {
        if f.is_constant() {
            return f;
        }
        let c = f.is_complemented();
        let fr = f.regular();
        if let Some(&r) = memo.get(&fr.bits()) {
            return r.complement_if(c);
        }
        self.stats.compose_calls += 1;
        let n = *self.node(fr.node());
        let t = self.vector_compose_rec(n.then_(), subs, memo);
        let e = self.vector_compose_rec(n.else_(), subs, memo);
        let v = n.var() as usize;
        let gv = match subs.get(v).copied().flatten() {
            Some(g) => g,
            None => self.var(v),
        };
        let r = self.ite(gv, t, e);
        memo.insert(fr.bits(), r);
        r.complement_if(c)
    }

    /// Generic n-ary `apply`: `op(f₀, …, f_{k-1})` over the simultaneous
    /// Shannon expansion of all operands, with constants restricting and
    /// complements permuting the operator table.
    ///
    /// ```
    /// use robdd::Robdd;
    /// use ddcore::NaryOp;
    /// let mut mgr = Robdd::new(3);
    /// let vs = [mgr.var(0), mgr.var(1), mgr.var(2)];
    /// let maj = mgr.apply_n(NaryOp::majority3(), &vs);
    /// assert_eq!(mgr.sat_count(maj), 4);
    /// ```
    ///
    /// # Panics
    /// Panics if `operands.len() != op.arity()`.
    pub fn apply_n(&mut self, op: NaryOp, operands: &[Edge]) -> Edge {
        assert_eq!(
            operands.len(),
            op.arity(),
            "operand count must match the operator arity"
        );
        let mut memo: FxHashMap<(u64, Vec<u32>), Edge> = FxHashMap::default();
        self.apply_n_rec(op, operands.to_vec(), &mut memo)
    }

    fn apply_n_rec(
        &mut self,
        mut op: NaryOp,
        mut fs: Vec<Edge>,
        memo: &mut FxHashMap<(u64, Vec<u32>), Edge>,
    ) -> Edge {
        self.stats.nary_calls += 1;
        let mut i = 0;
        while i < fs.len() {
            if fs[i].is_constant() && fs.len() > 1 {
                op = op.restrict(i, fs[i] == Edge::ONE);
                fs.remove(i);
            } else {
                if fs[i].is_complemented() {
                    op = op.complement_operand(i);
                    fs[i] = !fs[i];
                }
                i += 1;
            }
        }
        if let Some(b) = op.as_constant() {
            return if b { Edge::ONE } else { Edge::ZERO };
        }
        if fs.len() == 1 {
            if fs[0].is_constant() {
                return if op.eval(u32::from(fs[0] == Edge::ONE)) {
                    Edge::ONE
                } else {
                    Edge::ZERO
                };
            }
            return if op.eval(1) { fs[0] } else { !fs[0] };
        }
        let key = (op.table(), fs.iter().map(|e| e.bits()).collect::<Vec<_>>());
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let pos = fs
            .iter()
            .map(|&e| self.edge_pos(e))
            .min()
            .expect("at least two operands");
        let var = self.var_at_pos[pos] as u16;
        let cof: Vec<(Edge, Edge)> = fs.iter().map(|&e| self.cofactors(e, var)).collect();
        let hi: Vec<Edge> = cof.iter().map(|&(t, _)| t).collect();
        let lo: Vec<Edge> = cof.iter().map(|&(_, e)| e).collect();
        let t = self.apply_n_rec(op, hi, memo);
        let e = self.apply_n_rec(op, lo, memo);
        let r = self.make_node(var, t, e);
        memo.insert(key, r);
        r
    }

    /// One satisfying assignment of `f`, or `None` for the constant false.
    /// Unconstrained variables default to `false`.
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(3);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.xor(a, b);
    /// let m = mgr.any_sat(f).unwrap();
    /// assert!(mgr.eval(f, &m));
    /// assert_eq!(mgr.any_sat(mgr.zero()), None);
    /// ```
    #[must_use]
    pub fn any_sat(&self, f: Edge) -> Option<Vec<bool>> {
        if f == Edge::ZERO {
            return None;
        }
        let mut out = vec![false; self.num_vars()];
        let mut e = f;
        while !e.is_constant() {
            let n = self.node(e.node());
            let c = e.is_complemented();
            let t = n.then_().complement_if(c);
            let el = n.else_().complement_if(c);
            // At least one branch is satisfiable (reduction + canonicity).
            if t != Edge::ZERO {
                out[n.var() as usize] = true;
                e = t;
            } else {
                e = el;
            }
        }
        Some(out)
    }

    /// Enumerate up to `limit` satisfying assignments of `f` (model
    /// enumeration). Each model appears exactly once; order unspecified.
    ///
    /// With 127 or more *free* (unconstrained) variables on a path the
    /// completion count saturates to `u128::MAX` instead of overflowing;
    /// enumeration is still bounded by `limit`, only the internal total is
    /// clamped. See [`Robdd::sat_count_checked`] for the counting analogue.
    ///
    /// ```
    /// use robdd::Robdd;
    /// let mut mgr = Robdd::new(3);
    /// let (a, b) = (mgr.var(0), mgr.var(1));
    /// let f = mgr.and(a, b);
    /// assert_eq!(mgr.all_sat(f, 16).len(), 2); // c free: two completions
    /// ```
    #[must_use]
    pub fn all_sat(&self, f: Edge, limit: usize) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let mut partial: Vec<Option<bool>> = vec![None; self.num_vars()];
        self.all_sat_rec(f, &mut partial, limit, &mut out);
        out
    }

    fn all_sat_rec(
        &self,
        e: Edge,
        partial: &mut Vec<Option<bool>>,
        limit: usize,
        out: &mut Vec<Vec<bool>>,
    ) {
        if out.len() >= limit || e == Edge::ZERO {
            return;
        }
        if e == Edge::ONE {
            let free: Vec<usize> = (0..partial.len())
                .filter(|&v| partial[v].is_none())
                .collect();
            let total: u128 = if free.len() >= 127 {
                u128::MAX
            } else {
                1u128 << free.len()
            };
            let mut m: u128 = 0;
            while m < total && out.len() < limit {
                let mut a: Vec<bool> = partial.iter().map(|v| v.unwrap_or(false)).collect();
                for (k, &v) in free.iter().enumerate() {
                    a[v] = k < 128 && (m >> k) & 1 == 1;
                }
                out.push(a);
                m += 1;
            }
            return;
        }
        let n = *self.node(e.node());
        let c = e.is_complemented();
        let v = n.var() as usize;
        partial[v] = Some(true);
        self.all_sat_rec(n.then_().complement_if(c), partial, limit, out);
        partial[v] = Some(false);
        self.all_sat_rec(n.else_().complement_if(c), partial, limit, out);
        partial[v] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(mgr: &Robdd, f: Edge, n: usize, reference: impl Fn(&[bool]) -> bool) {
        for m in 0..(1u32 << n) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(f, &a), reference(&a), "assignment {a:?}");
        }
    }

    fn random_function(mgr: &mut Robdd, n: usize, seed: u64, ops: usize) -> Edge {
        let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
        let table = [
            BoolOp::XOR,
            BoolOp::AND,
            BoolOp::OR,
            BoolOp::XNOR,
            BoolOp::NAND,
        ];
        let mut state = seed | 1;
        let mut f = vs[0];
        for _ in 0..ops {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = table[(state >> 33) as usize % table.len()];
            let v = vs[(state >> 18) as usize % n];
            f = mgr.apply(op, f, v);
        }
        f
    }

    #[test]
    fn exists_cube_matches_iterated_restrict() {
        let n = 7;
        let mut mgr = Robdd::new(n);
        for seed in 1..6u64 {
            let f = random_function(&mut mgr, n, seed * 7919, 24);
            for cube in [vec![0], vec![2, 4], vec![0, 1, 5], vec![3, 2, 6, 0]] {
                let mut reference = f;
                for &v in &cube {
                    let r0 = mgr.restrict(reference, v, false);
                    let r1 = mgr.restrict(reference, v, true);
                    reference = mgr.or(r0, r1);
                }
                assert_eq!(mgr.exists(f, &cube), reference, "seed {seed} cube {cube:?}");
                let mut reference = f;
                for &v in &cube {
                    let r0 = mgr.restrict(reference, v, false);
                    let r1 = mgr.restrict(reference, v, true);
                    reference = mgr.and(r0, r1);
                }
                assert_eq!(mgr.forall(f, &cube), reference, "seed {seed} cube {cube:?}");
            }
        }
        assert!(mgr.validate().is_ok());
        assert!(mgr.stats().quant_calls > 0);
    }

    #[test]
    fn and_exists_matches_composition() {
        let n = 8;
        let mut mgr = Robdd::new(n);
        for seed in 1..8u64 {
            let f = random_function(&mut mgr, n, seed * 104729, 20);
            let g = random_function(&mut mgr, n, seed * 1299709, 20);
            for cube in [vec![0, 1], vec![2, 5, 7], vec![4]] {
                let conj = mgr.and(f, g);
                let reference = mgr.exists(conj, &cube);
                assert_eq!(
                    mgr.and_exists(f, g, &cube),
                    reference,
                    "seed {seed} cube {cube:?}"
                );
            }
        }
    }

    #[test]
    fn compose_is_cached_and_correct() {
        let n = 6;
        let mut mgr = Robdd::new(n);
        let f = random_function(&mut mgr, n, 0xABCD, 20);
        let g = random_function(&mut mgr, n, 0x1234, 20);
        for var in 0..n {
            let composed = mgr.compose(f, var, g);
            check(&mgr, composed, n, |v| {
                let mut v2 = v.to_vec();
                v2[var] = mgr.eval(g, v);
                mgr.eval(f, &v2)
            });
        }
        assert!(mgr.stats().compose_calls > 0);
    }

    #[test]
    fn vector_compose_swaps_variables() {
        let mut mgr = Robdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let g = mgr.vector_compose(f, &[Some(c), None, Some(a)]);
        check(&mgr, g, 3, |v| (v[2] && v[1]) || v[0]);
    }

    #[test]
    fn apply_n_matches_brute_force() {
        let n = 6;
        let mut mgr = Robdd::new(n);
        let f0 = random_function(&mut mgr, n, 11, 12);
        let f1 = random_function(&mut mgr, n, 22, 12);
        let f2 = random_function(&mut mgr, n, 33, 12);
        for op in [
            NaryOp::majority3(),
            NaryOp::conjunction(3),
            NaryOp::parity(3),
            NaryOp::from_fn(3, |m| m == 0b101 || m == 0b010),
        ] {
            let r = mgr.apply_n(op, &[f0, f1, f2]);
            check(&mgr, r, n, |v| {
                let m = u32::from(mgr.eval(f0, v))
                    | (u32::from(mgr.eval(f1, v)) << 1)
                    | (u32::from(mgr.eval(f2, v)) << 2);
                op.eval(m)
            });
        }
    }

    #[test]
    fn any_sat_and_all_sat() {
        let n = 6;
        let mut mgr = Robdd::new(n);
        for seed in 1..8u64 {
            let f = random_function(&mut mgr, n, seed * 31337, 24);
            match mgr.any_sat(f) {
                Some(m) => assert!(mgr.eval(f, &m)),
                None => assert_eq!(f, Edge::ZERO),
            }
            let models = mgr.all_sat(f, 128);
            assert_eq!(models.len() as u128, mgr.sat_count(f), "seed {seed}");
            let mut seen: std::collections::HashSet<Vec<bool>> = std::collections::HashSet::new();
            for m in &models {
                assert!(mgr.eval(f, m));
                assert!(seen.insert(m.clone()), "duplicate model");
            }
        }
    }

    #[test]
    fn quantification_after_reorder() {
        let n = 6;
        let mut mgr = Robdd::new(n);
        let f = random_function(&mut mgr, n, 0xDEC0DE, 24);
        let before = mgr.exists(f, &[1, 4]);
        let tt_before = mgr.truth_table(before);
        let _pins = [mgr.pin(f), mgr.pin(before)];
        mgr.sift();
        let after = mgr.exists(f, &[1, 4]);
        assert_eq!(mgr.truth_table(after), tt_before);
    }
}

//! Graphviz DOT export for ROBDDs (feature parity with the BBDD package's
//! exporter, so comparison figures can be drawn side by side).

use crate::edge::Edge;
use crate::manager::Robdd;
use std::collections::HashSet;
use std::fmt::Write as _;

impl Robdd {
    /// Render the diagrams rooted at `roots` as a DOT digraph. Solid
    /// arrows are then-edges, dashed arrows else-edges, red marks
    /// complement attributes.
    #[must_use]
    pub fn to_dot(&self, roots: &[Edge], names: &[&str]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph robdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        let _ = writeln!(out, "  one [shape=box, label=\"1\"];");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        for (i, r) in roots.iter().enumerate() {
            let name = names.get(i).copied().unwrap_or("");
            let label = if name.is_empty() {
                format!("f{i}")
            } else {
                name.to_string()
            };
            let _ = writeln!(out, "  root{i} [shape=plaintext, label=\"{label}\"];");
            let style = if r.is_complemented() {
                ", style=dotted, color=red"
            } else {
                ""
            };
            if r.is_constant() {
                let _ = writeln!(out, "  root{i} -> one [arrowhead=none{style}];");
            } else {
                let _ = writeln!(out, "  root{i} -> n{} [arrowhead=none{style}];", r.node());
                stack.push(r.node());
            }
        }
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            let _ = writeln!(out, "  n{id} [label=\"x{}\"];", n.var());
            for (child, dashed) in [(n.then_(), false), (n.else_(), true)] {
                let mut attrs = Vec::new();
                if dashed {
                    attrs.push("style=dashed");
                }
                if child.is_complemented() {
                    attrs.push("color=red");
                }
                let attr_s = if attrs.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", attrs.join(", "))
                };
                if child.is_constant() {
                    let _ = writeln!(out, "  n{id} -> one{attr_s};");
                } else {
                    let _ = writeln!(out, "  n{id} -> n{}{attr_s};", child.node());
                    stack.push(child.node());
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// One satisfying assignment of `f`, or `None` if unsatisfiable.
    pub fn pick_sat(&mut self, f: Edge) -> Option<Vec<bool>> {
        if f == Edge::ZERO {
            return None;
        }
        let n = self.num_vars();
        let mut assignment = vec![false; n];
        let mut g = f;
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let g1 = self.restrict(g, v, true);
            if g1 != Edge::ZERO {
                assignment[v] = true;
                g = g1;
            } else {
                g = self.restrict(g, v, false);
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_mentions_every_node() {
        let mut mgr = Robdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let t = mgr.xor(a, b);
        let f = mgr.and(t, c);
        let dot = mgr.to_dot(&[f], &["f"]);
        assert!(dot.starts_with("digraph"));
        let defs = dot.matches(" [label=\"x").count();
        assert_eq!(defs, mgr.node_count(f));
    }

    #[test]
    fn pick_sat_finds_witnesses() {
        let mut mgr = Robdd::new(4);
        let (a, b) = (mgr.var(0), mgr.var(3));
        let nb = !b;
        let f = mgr.and(a, nb);
        let sat = mgr.pick_sat(f).unwrap();
        assert!(mgr.eval(f, &sat));
        assert!(mgr.pick_sat(Edge::ZERO).is_none());
    }
}

//! Queries on ROBDD functions: evaluation, counting, restriction, support
//! and truth tables. The quantification / composition / model-enumeration
//! suite lives in `quant.rs` (the verification ops layer).

use crate::edge::Edge;
use crate::manager::Robdd;
use ddcore::govern::{OpAbort, OpBudget};
use std::collections::{HashMap, HashSet};

impl Robdd {
    /// Evaluate `f` under a complete assignment.
    ///
    /// # Panics
    /// Panics if `assignment.len() < num_vars()`.
    #[must_use]
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars(),
            "assignment must cover all {} variables",
            self.num_vars()
        );
        let mut e = f;
        loop {
            if e.is_constant() {
                return e == Edge::ONE;
            }
            let n = self.node(e.node());
            let child = if assignment[n.var() as usize] {
                n.then_()
            } else {
                n.else_()
            };
            e = child.complement_if(e.is_complemented());
        }
    }

    /// Internal nodes reachable from `f`.
    #[must_use]
    pub fn node_count(&self, f: Edge) -> usize {
        self.shared_node_count(&[f])
    }

    /// Distinct internal nodes reachable from any root (shared size).
    #[must_use]
    pub fn shared_node_count(&self, roots: &[Edge]) -> usize {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_constant())
            .map(|e| e.node())
            .collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            for child in [n.then_(), n.else_()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        seen.len()
    }

    /// Number of satisfying assignments over all variables.
    ///
    /// # Panics
    /// Panics if `num_vars() > 127`. For a non-panicking variant see
    /// [`Robdd::sat_count_checked`].
    #[must_use]
    pub fn sat_count(&self, f: Edge) -> u128 {
        let n = self.num_vars();
        assert!(n <= 127, "sat_count overflows u128 beyond 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::new();
        self.sat_edge(f, n as u32, &mut memo)
    }

    /// [`Robdd::sat_count`], or `None` when the manager has more than 127
    /// variables (the count could overflow `u128`; `Some` values are
    /// always exact).
    #[must_use]
    pub fn sat_count_checked(&self, f: Edge) -> Option<u128> {
        if self.num_vars() > 127 {
            None
        } else {
            Some(self.sat_count(f))
        }
    }

    /// [`Robdd::sat_count`] under a resource budget, polled at every
    /// memo-miss. Counting allocates no nodes; an abort leaves no trace.
    ///
    /// # Errors
    /// The budget's abort reason.
    ///
    /// # Panics
    /// Panics if `num_vars() > 127`, like [`Robdd::sat_count`].
    pub fn try_sat_count(&self, f: Edge, budget: &mut OpBudget) -> Result<u128, OpAbort> {
        let n = self.num_vars();
        assert!(n <= 127, "sat_count overflows u128 beyond 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::new();
        self.try_sat_edge(f, n as u32, &mut memo, budget)
    }

    /// Count of `e` over the `k` variables strictly below its reference
    /// point in the order.
    fn sat_edge(&self, e: Edge, k: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if e.is_constant() {
            return if e == Edge::ONE { 1u128 << k } else { 0 };
        }
        let id = e.node();
        let n = *self.node(id);
        // Universe of the node: its variable plus everything below it.
        let u = (self.num_vars() - self.pos_of_var[n.var() as usize] as usize) as u32;
        debug_assert!(u <= k);
        let raw = if let Some(&r) = memo.get(&id) {
            r
        } else {
            let r = self.sat_edge(n.then_(), u - 1, memo) + self.sat_edge(n.else_(), u - 1, memo);
            memo.insert(id, r);
            r
        };
        let adjusted = if e.is_complemented() {
            (1u128 << u) - raw
        } else {
            raw
        };
        adjusted << (k - u)
    }

    /// [`Robdd::sat_edge`] with a budget checkpoint at every memo miss.
    fn try_sat_edge(
        &self,
        e: Edge,
        k: u32,
        memo: &mut HashMap<u32, u128>,
        budget: &mut OpBudget,
    ) -> Result<u128, OpAbort> {
        if e.is_constant() {
            return Ok(if e == Edge::ONE { 1u128 << k } else { 0 });
        }
        let id = e.node();
        let n = *self.node(id);
        let u = (self.num_vars() - self.pos_of_var[n.var() as usize] as usize) as u32;
        debug_assert!(u <= k);
        let raw = if let Some(&r) = memo.get(&id) {
            r
        } else {
            budget.checkpoint()?;
            let r = self.try_sat_edge(n.then_(), u - 1, memo, budget)?
                + self.try_sat_edge(n.else_(), u - 1, memo, budget)?;
            memo.insert(id, r);
            r
        };
        let adjusted = if e.is_complemented() {
            (1u128 << u) - raw
        } else {
            raw
        };
        Ok(adjusted << (k - u))
    }

    /// The cofactor `f|_{var = value}`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn restrict(&mut self, f: Edge, var: usize, value: bool) -> Edge {
        let target_pos = self.pos_of_var[var] as usize;
        let mut memo: HashMap<u32, Edge> = HashMap::new();
        self.restrict_rec(f, var as u16, target_pos, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: Edge,
        var: u16,
        target_pos: usize,
        value: bool,
        memo: &mut HashMap<u32, Edge>,
    ) -> Edge {
        if f.is_constant() || self.edge_pos(f) > target_pos {
            return f;
        }
        let id = f.node();
        let c = f.is_complemented();
        if let Some(&r) = memo.get(&id) {
            return r.complement_if(c);
        }
        let n = *self.node(id);
        let r = if n.var() == var {
            if value {
                n.then_()
            } else {
                n.else_()
            }
        } else {
            let t = self.restrict_rec(n.then_(), var, target_pos, value, memo);
            let e = self.restrict_rec(n.else_(), var, target_pos, value, memo);
            self.make_node(n.var(), t, e)
        };
        memo.insert(id, r);
        r.complement_if(c)
    }

    /// Does `f` depend on `var`? (Structural test — exact for ROBDDs.)
    #[must_use]
    pub fn depends_on(&self, f: Edge, var: usize) -> bool {
        self.support(f).contains(&var)
    }

    /// The support of `f` (sorted variable indices). For ROBDDs the
    /// structural support is the semantic support.
    #[must_use]
    pub fn support(&self, f: Edge) -> Vec<usize> {
        let mut vars: HashSet<usize> = HashSet::new();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = if f.is_constant() {
            Vec::new()
        } else {
            vec![f.node()]
        };
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var() as usize);
            for child in [n.then_(), n.else_()] {
                if !child.is_constant() {
                    stack.push(child.node());
                }
            }
        }
        let mut out: Vec<usize> = vars.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Packed truth table (same convention as the BBDD package).
    ///
    /// # Panics
    /// Panics if `num_vars() > 24`.
    #[must_use]
    pub fn truth_table(&self, f: Edge) -> Vec<u64> {
        let n = self.num_vars();
        assert!(n <= 24, "truth tables limited to 24 variables");
        let bits = 1usize << n;
        let words = bits.div_ceil(64);
        let mut out = vec![0u64; words];
        let mut assignment = vec![false; n];
        for m in 0..bits {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (m >> i) & 1 == 1;
            }
            if self.eval(f, &assignment) {
                out[m / 64] |= 1 << (m % 64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3(mgr: &mut Robdd) -> Edge {
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let ab = mgr.and(a, b);
        let bc = mgr.and(b, c);
        let ac = mgr.and(a, c);
        let t = mgr.or(ab, bc);
        mgr.or(t, ac)
    }

    #[test]
    fn sat_count_majority() {
        let mut mgr = Robdd::new(3);
        let maj = majority3(&mut mgr);
        assert_eq!(mgr.sat_count(maj), 4);
        assert_eq!(mgr.sat_count(Edge::ONE), 8);
        let a = mgr.var(0);
        assert_eq!(mgr.sat_count(a), 4);
    }

    #[test]
    fn restrict_and_quantify() {
        let mut mgr = Robdd::new(3);
        let maj = majority3(&mut mgr);
        let (b, c) = (mgr.var(1), mgr.var(2));
        let r1 = mgr.restrict(maj, 0, true);
        let or = mgr.or(b, c);
        assert_eq!(r1, or);
        let ex = mgr.exists(maj, &[0]);
        assert_eq!(ex, or);
        let fa = mgr.forall(maj, &[0]);
        let and = mgr.and(b, c);
        assert_eq!(fa, and);
    }

    #[test]
    fn support_is_exact() {
        let mut mgr = Robdd::new(4);
        let (a, c) = (mgr.var(0), mgr.var(2));
        let f = mgr.xor(a, c);
        assert_eq!(mgr.support(f), vec![0, 2]);
        assert!(mgr.depends_on(f, 0));
        assert!(!mgr.depends_on(f, 1));
    }

    #[test]
    fn compose_substitutes() {
        let mut mgr = Robdd::new(3);
        let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
        let f = mgr.and(a, b);
        let g = mgr.or(b, c);
        let h = mgr.compose(f, 0, g);
        assert_eq!(h, b);
    }

    #[test]
    fn truth_table_of_majority() {
        let mut mgr = Robdd::new(3);
        let maj = majority3(&mut mgr);
        let tt = mgr.truth_table(maj);
        assert_eq!(tt[0] & 0xFF, 0b1110_1000);
    }
}

//! Dynamic variable ordering: the classic in-place adjacent swap and
//! Rudell's sifting algorithm (the `sift` of CUDD used in Table I).

use crate::edge::Edge;
use crate::manager::Robdd;
use crate::node::Node;
use ddcore::govern::{OpAbort, OpBudget};

/// Tuning knobs for [`Robdd::sift_with`].
#[derive(Debug, Clone, Copy)]
pub struct SiftConfig {
    /// Abort a direction when the diagram grows beyond
    /// `max_growth × best_size`.
    pub max_growth: f64,
    /// Complete passes over all variables.
    pub passes: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            passes: 1,
        }
    }
}

impl Robdd {
    /// Swap the variables at order positions `pos` and `pos + 1` in place.
    ///
    /// Nodes of the upper variable whose cofactors involve the lower
    /// variable are rewritten (keeping their pointers) to test the lower
    /// variable first; all other nodes are untouched. Every existing
    /// [`Edge`] keeps denoting the same function.
    ///
    /// # Panics
    /// Panics if `pos + 1 >= num_vars()`.
    pub fn swap_adjacent(&mut self, pos: usize) {
        let n = self.num_vars();
        assert!(pos + 1 < n, "swap position out of range");
        let x = self.var_at_pos[pos] as u16;
        let y = self.var_at_pos[pos + 1] as u16;

        let ids = self.subtables[x as usize].values();
        for id in ids {
            let nd = *self.node(id);
            let (t, e) = (nd.then_(), nd.else_());
            let t_dep = !t.is_constant() && self.node(t.node()).var() == y;
            let e_dep = !e.is_constant() && self.node(e.node()).var() == y;
            if !t_dep && !e_dep {
                // Does not involve y: stays a valid x-node (now below y).
                continue;
            }
            // Grand-cofactors with respect to y. The then-edge is regular,
            // so t1 is regular and the rebuilt node keeps its polarity.
            let (t1, t0) = if t_dep {
                let tn = self.node(t.node());
                let c = t.is_complemented();
                (tn.then_().complement_if(c), tn.else_().complement_if(c))
            } else {
                (t, t)
            };
            let (e1, e0) = if e_dep {
                let en = self.node(e.node());
                let c = e.is_complemented();
                (en.then_().complement_if(c), en.else_().complement_if(c))
            } else {
                (e, e)
            };
            let new_t = self.make_node(x, t1, e1); // f_{y=1}
            let new_e = self.make_node(x, t0, e0); // f_{y=0}
            debug_assert_ne!(new_t, new_e, "swap produced a redundant node");
            debug_assert!(!new_t.is_complemented(), "polarity flip in swap");
            let old_key = nd.key();
            let removed = self.subtables[x as usize].remove(&old_key);
            debug_assert_eq!(removed, Some(id));
            self.nodes[id as usize] = Node::new(y, new_t, new_e);
            let new_key = self.node(id).key();
            debug_assert!(self.subtables[y as usize].get(&new_key).is_none());
            self.subtables[y as usize].insert(new_key, id);
        }
        self.var_at_pos.swap(pos, pos + 1);
        self.pos_of_var[self.var_at_pos[pos] as usize] = pos as u32;
        self.pos_of_var[self.var_at_pos[pos + 1] as usize] = (pos + 1) as u32;
        self.stats.swaps += 1;
    }

    /// Sift all variables once with default settings; returns the live
    /// node count. Everything a live [`crate::RobddFn`] handle denotes
    /// survives — the handle registry is the root set.
    pub fn sift(&mut self) -> usize {
        self.sift_with(&SiftConfig::default())
    }

    /// Sift with an explicit [`SiftConfig`], tracing the handle registry.
    pub fn sift_with(&mut self, cfg: &SiftConfig) -> usize {
        self.sift_keeping(&[], cfg)
    }

    /// [`Robdd::sift`] under a resource budget, polled before every
    /// adjacent swap. On abort, the variable currently being sifted is
    /// first parked back at the best position seen (a bounded amount of
    /// un-budgeted work), so the order, tables and every registered handle
    /// stay consistent — the result is simply a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded(&mut self, budget: &mut OpBudget) -> Result<usize, OpAbort> {
        self.sift_bounded_with(&SiftConfig::default(), budget)
    }

    /// [`Robdd::sift_bounded`] with explicit [`SiftConfig`].
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded_with(
        &mut self,
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        self.sift_keeping_bounded(&[], cfg, budget)
            .map(|()| self.live_nodes())
    }

    pub(crate) fn sift_keeping(&mut self, extra: &[Edge], cfg: &SiftConfig) -> usize {
        self.sift_keeping_bounded(extra, cfg, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts");
        self.live_nodes()
    }

    fn sift_keeping_bounded(
        &mut self,
        extra: &[Edge],
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<(), OpAbort> {
        for _ in 0..cfg.passes.max(1) {
            self.gc_keeping(extra);
            let n = self.num_vars();
            if n < 2 {
                break;
            }
            let mut vars: Vec<usize> = (0..n).collect();
            vars.sort_by_key(|&v| std::cmp::Reverse(self.subtables[v].len()));
            for var in vars {
                self.sift_one(var, cfg, extra, budget)?;
            }
            self.gc_keeping(extra);
        }
        Ok(())
    }

    fn sift_one(
        &mut self,
        var: usize,
        cfg: &SiftConfig,
        extra: &[Edge],
        budget: &mut OpBudget,
    ) -> Result<(), OpAbort> {
        let n = self.num_vars();
        let start = self.position_of(var);
        self.gc_keeping(extra);
        let mut best_size = self.live_nodes();
        let mut best_pos = start;
        let limit = |best: usize| (best as f64 * cfg.max_growth) as usize + 2;
        // Swaps leave garbage behind, and garbage *compounds*: every swap
        // rebuilds all nodes of the affected levels, dead or alive. A
        // sweep per swap keeps the work proportional to the live size
        // (invalidating the computed table is O(1) via its epoch).
        const GC_STRIDE: usize = 1;
        let mut since_gc = 0usize;

        let down_first = start >= n / 2;
        let directions: [bool; 2] = if down_first {
            [true, false]
        } else {
            [false, true]
        };
        // On abort we fall through to the park-back loop below before
        // returning the error, so the order is always left consistent.
        let mut abort: Option<OpAbort> = None;
        'exploration: for &down in &directions {
            loop {
                let pos = self.position_of(var);
                if down && pos + 1 >= n {
                    break;
                }
                if !down && pos == 0 {
                    break;
                }
                if let Err(reason) = budget.checkpoint() {
                    abort = Some(reason);
                    break 'exploration;
                }
                if down {
                    self.swap_adjacent(pos);
                } else {
                    self.swap_adjacent(pos - 1);
                }
                since_gc += 1;
                if since_gc >= GC_STRIDE || self.live_nodes() > limit(best_size) {
                    self.gc_keeping(extra);
                    since_gc = 0;
                }
                let size = self.live_nodes();
                if size < best_size {
                    best_size = size;
                    best_pos = self.position_of(var);
                }
                if size > limit(best_size) {
                    break;
                }
            }
            self.gc_keeping(extra);
            since_gc = 0;
        }
        // Return to the best position (un-budgeted: at most one sweep).
        loop {
            let pos = self.position_of(var);
            match pos.cmp(&best_pos) {
                std::cmp::Ordering::Less => self.swap_adjacent(pos),
                std::cmp::Ordering::Greater => self.swap_adjacent(pos - 1),
                std::cmp::Ordering::Equal => break,
            }
        }
        self.gc_keeping(extra);
        match abort {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Re-order to the given permutation (top first) by adjacent swaps.
    ///
    /// # Panics
    /// Panics if `target` is not a permutation of `0..num_vars()`.
    pub fn reorder_to(&mut self, target: &[usize]) {
        let n = self.num_vars();
        assert_eq!(target.len(), n, "order must mention every variable once");
        let mut seen = vec![false; n];
        for &v in target {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }
        for (goal_pos, &v) in target.iter().enumerate() {
            let mut pos = self.position_of(v);
            while pos > goal_pos {
                self.swap_adjacent(pos - 1);
                pos -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_of(mgr: &Robdd, f: Edge, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    fn equality_bad_order(mgr: &mut Robdd, k: usize) -> Edge {
        let mut f = mgr.one();
        for i in 0..k {
            let (a, b) = (mgr.var(i), mgr.var(i + k));
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        f
    }

    #[test]
    fn swap_preserves_functions() {
        let n = 5;
        let mut mgr = Robdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let g = {
            let a = mgr.var(4);
            let b = mgr.var(0);
            mgr.xor(a, b)
        };
        let (tf, tg) = (truth_of(&mgr, f, n), truth_of(&mgr, g, n));
        for pos in 0..n - 1 {
            mgr.swap_adjacent(pos);
            assert_eq!(truth_of(&mgr, f, n), tf, "pos {pos}");
            assert_eq!(truth_of(&mgr, g, n), tg, "pos {pos}");
            mgr.validate().unwrap();
        }
    }

    #[test]
    fn random_swap_walks() {
        let n = 7;
        for seed in 0..6u64 {
            let mut mgr = Robdd::new(n);
            let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
            let mut f = vs[0];
            let mut state = seed | 1;
            for _ in 0..2 * n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = vs[(state >> 33) as usize % n];
                f = match (state >> 20) % 4 {
                    0 => mgr.and(f, v),
                    1 => mgr.or(f, v),
                    2 => mgr.xor(f, v),
                    _ => mgr.nand(f, v),
                };
            }
            let tf = truth_of(&mgr, f, n);
            for step in 0..40 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pos = (state >> 33) as usize % (n - 1);
                mgr.swap_adjacent(pos);
                assert_eq!(truth_of(&mgr, f, n), tf, "seed {seed} step {step}");
                mgr.validate().unwrap();
            }
        }
    }

    #[test]
    fn sifting_shrinks_equality() {
        let k = 5;
        let mut mgr = Robdd::new(2 * k);
        let f = equality_bad_order(&mut mgr, k);
        let tf = truth_of(&mgr, f, 2 * k);
        let before = mgr.node_count(f);
        let _fh = mgr.pin(f);
        mgr.sift();
        let after = mgr.node_count(f);
        assert!(after < before, "sift must shrink: {before} -> {after}");
        assert!(after <= 3 * k + 1, "near-linear size expected, got {after}");
        assert_eq!(truth_of(&mgr, f, 2 * k), tf);
        mgr.validate().unwrap();
    }

    #[test]
    fn reorder_to_target() {
        let n = 5;
        let mut mgr = Robdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let tf = truth_of(&mgr, f, n);
        mgr.reorder_to(&[3, 1, 4, 0, 2]);
        assert_eq!(mgr.order(), vec![3, 1, 4, 0, 2]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
    }
}

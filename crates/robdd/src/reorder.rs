//! Dynamic variable ordering: the classic in-place adjacent swap, plus the
//! [`ddcore::dvo`] engine instantiated for the ROBDD manager (the `sift`
//! of CUDD used in Table I).
//!
//! The sifting algorithms live in [`ddcore::dvo`], generic over
//! [`ReorderBackend`]; this module supplies the backend contract (adjacent
//! swaps, registry-tracing sweeps, per-variable widths and a structural
//! pair-affinity analogue) and keeps the historical `sift*` entry points
//! as thin wrappers.

use crate::manager::Robdd;
use crate::node::Node;
use ddcore::dvo::{DvoStrategy, FullSift, ReorderBackend, ReorderStrategy};
use ddcore::govern::{OpAbort, OpBudget};

/// Tuning knobs for [`Robdd::sift_with`] (the shared engine's parameter
/// block; re-exported under its historical name).
pub use ddcore::dvo::SiftParams as SiftConfig;

impl ReorderBackend for Robdd {
    fn num_vars(&self) -> usize {
        Robdd::num_vars(self)
    }

    fn position_of(&self, var: usize) -> usize {
        Robdd::position_of(self, var)
    }

    fn var_at_position(&self, pos: usize) -> usize {
        self.var_at_pos[pos] as usize
    }

    fn swap_positions(&mut self, pos: usize) {
        self.swap_adjacent(pos);
    }

    fn sweep(&mut self) -> usize {
        self.gc_keeping(&[]);
        self.live_nodes()
    }

    fn var_width(&self, var: usize) -> usize {
        self.subtables[var].len()
    }

    /// Structural analogue of the BBDD chain affinity: the fraction of the
    /// upper variable's nodes with a cofactor testing the next variable in
    /// the order directly. Those are exactly the nodes an adjacent swap
    /// must rewrite, so a high fraction means the two levels are tightly
    /// coupled.
    fn pair_affinity(&self, pos: usize) -> f64 {
        let x = self.var_at_pos[pos] as usize;
        let y = self.var_at_pos[pos + 1] as u16;
        let table = &self.subtables[x];
        let total = table.len();
        if total == 0 {
            return 0.0;
        }
        let coupled = table
            .values()
            .into_iter()
            .filter(|&id| {
                let nd = self.node(id);
                let (t, e) = (nd.then_(), nd.else_());
                (!t.is_constant() && self.node(t.node()).var() == y)
                    || (!e.is_constant() && self.node(e.node()).var() == y)
            })
            .count();
        coupled as f64 / total as f64
    }
}

impl Robdd {
    /// Swap the variables at order positions `pos` and `pos + 1` in place.
    ///
    /// Nodes of the upper variable whose cofactors involve the lower
    /// variable are rewritten (keeping their pointers) to test the lower
    /// variable first; all other nodes are untouched. Every existing
    /// [`Edge`](crate::Edge) keeps denoting the same function.
    ///
    /// # Panics
    /// Panics if `pos + 1 >= num_vars()`.
    pub fn swap_adjacent(&mut self, pos: usize) {
        let timer = ddcore::obs::prof_timer();
        let n = self.num_vars();
        assert!(pos + 1 < n, "swap position out of range");
        let x = self.var_at_pos[pos] as u16;
        let y = self.var_at_pos[pos + 1] as u16;

        let ids = self.subtables[x as usize].values();
        for id in ids {
            let nd = *self.node(id);
            let (t, e) = (nd.then_(), nd.else_());
            let t_dep = !t.is_constant() && self.node(t.node()).var() == y;
            let e_dep = !e.is_constant() && self.node(e.node()).var() == y;
            if !t_dep && !e_dep {
                // Does not involve y: stays a valid x-node (now below y).
                continue;
            }
            // Grand-cofactors with respect to y. The then-edge is regular,
            // so t1 is regular and the rebuilt node keeps its polarity.
            let (t1, t0) = if t_dep {
                let tn = self.node(t.node());
                let c = t.is_complemented();
                (tn.then_().complement_if(c), tn.else_().complement_if(c))
            } else {
                (t, t)
            };
            let (e1, e0) = if e_dep {
                let en = self.node(e.node());
                let c = e.is_complemented();
                (en.then_().complement_if(c), en.else_().complement_if(c))
            } else {
                (e, e)
            };
            let new_t = self.make_node(x, t1, e1); // f_{y=1}
            let new_e = self.make_node(x, t0, e0); // f_{y=0}
            debug_assert_ne!(new_t, new_e, "swap produced a redundant node");
            debug_assert!(!new_t.is_complemented(), "polarity flip in swap");
            let old_key = nd.key();
            let removed = self.subtables[x as usize].remove(&old_key);
            debug_assert_eq!(removed, Some(id));
            self.nodes[id as usize] = Node::new(y, new_t, new_e);
            let new_key = self.node(id).key();
            debug_assert!(self.subtables[y as usize].get(&new_key).is_none());
            self.subtables[y as usize].insert(new_key, id);
        }
        self.var_at_pos.swap(pos, pos + 1);
        self.pos_of_var[self.var_at_pos[pos] as usize] = pos as u32;
        self.pos_of_var[self.var_at_pos[pos + 1] as usize] = (pos + 1) as u32;
        self.stats.swaps += 1;
        ddcore::obs::prof_record(ddcore::obs::Op::Swap, timer);
    }

    /// Sift all variables once with default settings; returns the live
    /// node count. Everything a live [`crate::RobddFn`] handle denotes
    /// survives — the handle registry is the root set.
    pub fn sift(&mut self) -> usize {
        self.sift_with(&SiftConfig::default())
    }

    /// Sift with an explicit [`SiftConfig`], tracing the handle registry.
    pub fn sift_with(&mut self, cfg: &SiftConfig) -> usize {
        FullSift { params: *cfg }
            .reorder(self, &mut OpBudget::unlimited())
            .expect("unlimited budget never aborts")
    }

    /// [`Robdd::sift`] under a resource budget, polled before every
    /// adjacent swap. On abort, the variable currently being sifted is
    /// first parked back at the best position seen (a bounded amount of
    /// un-budgeted work), so the order, tables and every registered handle
    /// stay consistent — the result is simply a partially improved order.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded(&mut self, budget: &mut OpBudget) -> Result<usize, OpAbort> {
        self.sift_bounded_with(&SiftConfig::default(), budget)
    }

    /// [`Robdd::sift_bounded`] with explicit [`SiftConfig`].
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_bounded_with(
        &mut self,
        cfg: &SiftConfig,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        FullSift { params: *cfg }.reorder(self, budget)
    }

    /// Run a specific [`DvoStrategy`] (full, window or pair-aware sift)
    /// under a resource budget, with the [`Robdd::sift_bounded`] abort
    /// contract.
    ///
    /// # Errors
    /// The budget's abort reason.
    pub fn sift_strategy(
        &mut self,
        strategy: DvoStrategy,
        budget: &mut OpBudget,
    ) -> Result<usize, OpAbort> {
        strategy.run(self, budget)
    }

    /// Re-order to the given permutation (top first) by adjacent swaps.
    ///
    /// # Panics
    /// Panics if `target` is not a permutation of `0..num_vars()`.
    pub fn reorder_to(&mut self, target: &[usize]) {
        let n = self.num_vars();
        assert_eq!(target.len(), n, "order must mention every variable once");
        let mut seen = vec![false; n];
        for &v in target {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }
        for (goal_pos, &v) in target.iter().enumerate() {
            let mut pos = self.position_of(v);
            while pos > goal_pos {
                self.swap_adjacent(pos - 1);
                pos -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn truth_of(mgr: &Robdd, f: Edge, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    fn equality_bad_order(mgr: &mut Robdd, k: usize) -> Edge {
        let mut f = mgr.one();
        for i in 0..k {
            let (a, b) = (mgr.var(i), mgr.var(i + k));
            let eq = mgr.xnor(a, b);
            f = mgr.and(f, eq);
        }
        f
    }

    #[test]
    fn swap_preserves_functions() {
        let n = 5;
        let mut mgr = Robdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let g = {
            let a = mgr.var(4);
            let b = mgr.var(0);
            mgr.xor(a, b)
        };
        let (tf, tg) = (truth_of(&mgr, f, n), truth_of(&mgr, g, n));
        for pos in 0..n - 1 {
            mgr.swap_adjacent(pos);
            assert_eq!(truth_of(&mgr, f, n), tf, "pos {pos}");
            assert_eq!(truth_of(&mgr, g, n), tg, "pos {pos}");
            mgr.validate().unwrap();
        }
    }

    #[test]
    fn random_swap_walks() {
        let n = 7;
        for seed in 0..6u64 {
            let mut mgr = Robdd::new(n);
            let vs: Vec<Edge> = (0..n).map(|v| mgr.var(v)).collect();
            let mut f = vs[0];
            let mut state = seed | 1;
            for _ in 0..2 * n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = vs[(state >> 33) as usize % n];
                f = match (state >> 20) % 4 {
                    0 => mgr.and(f, v),
                    1 => mgr.or(f, v),
                    2 => mgr.xor(f, v),
                    _ => mgr.nand(f, v),
                };
            }
            let tf = truth_of(&mgr, f, n);
            for step in 0..40 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pos = (state >> 33) as usize % (n - 1);
                mgr.swap_adjacent(pos);
                assert_eq!(truth_of(&mgr, f, n), tf, "seed {seed} step {step}");
                mgr.validate().unwrap();
            }
        }
    }

    #[test]
    fn sifting_shrinks_equality() {
        let k = 5;
        let mut mgr = Robdd::new(2 * k);
        let f = equality_bad_order(&mut mgr, k);
        let tf = truth_of(&mgr, f, 2 * k);
        let before = mgr.node_count(f);
        let _fh = mgr.pin(f);
        mgr.sift();
        let after = mgr.node_count(f);
        assert!(after < before, "sift must shrink: {before} -> {after}");
        assert!(after <= 3 * k + 1, "near-linear size expected, got {after}");
        assert_eq!(truth_of(&mgr, f, 2 * k), tf);
        mgr.validate().unwrap();
    }

    #[test]
    fn reorder_to_target() {
        let n = 5;
        let mut mgr = Robdd::new(n);
        let f = equality_bad_order(&mut mgr, 2);
        let tf = truth_of(&mgr, f, n);
        mgr.reorder_to(&[3, 1, 4, 0, 2]);
        assert_eq!(mgr.order(), vec![3, 1, 4, 0, 2]);
        assert_eq!(truth_of(&mgr, f, n), tf);
        mgr.validate().unwrap();
    }
}

//! ROBDD node storage and unique-table keys.
//!
//! Mirrors the packed layout of the BBDD package: a [`Node`] is three `u32`
//! words (two child edge words with the complement attribute folded into
//! bit 0, plus a meta word carrying the 16-bit variable index and the
//! mark/free flags), and a [`BddKey`] is one `u64` — the *then*-edge word
//! in the high half and the *else*-edge word in the low half — stored
//! inline in the open-addressed unique table.

use crate::edge::Edge;
use ddcore::cantor::CantorHasher;
use ddcore::table::TableKey;

pub(crate) const TERMINAL_VAR: u16 = u16::MAX;

const META_MARK: u32 = 1 << 16;
const META_FREE: u32 = 1 << 17;

/// One arena slot: a Shannon node `ite(var, then, else)`, 12 bytes. The
/// *then*-edge is kept regular (canonical complement-attribute convention).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    then_bits: u32,
    else_bits: u32,
    /// `var` in bits 0..16, flags above.
    meta: u32,
}

impl Node {
    pub(crate) fn terminal() -> Self {
        Node {
            then_bits: Edge::ONE.bits(),
            else_bits: Edge::ONE.bits(),
            meta: TERMINAL_VAR as u32,
        }
    }

    pub(crate) fn new(var: u16, then_: Edge, else_: Edge) -> Self {
        Node {
            then_bits: then_.bits(),
            else_bits: else_.bits(),
            meta: var as u32,
        }
    }

    /// The high (`var = 1`) child — always a regular edge.
    #[inline]
    pub(crate) fn then_(&self) -> Edge {
        Edge::from_bits(self.then_bits)
    }

    /// The low (`var = 0`) child.
    #[inline]
    pub(crate) fn else_(&self) -> Edge {
        Edge::from_bits(self.else_bits)
    }

    /// Variable index tested by this node.
    #[inline]
    pub(crate) fn var(&self) -> u16 {
        self.meta as u16
    }

    #[inline]
    pub(crate) fn is_marked(&self) -> bool {
        self.meta & META_MARK != 0
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, on: bool) {
        if on {
            self.meta |= META_MARK;
        } else {
            self.meta &= !META_MARK;
        }
    }

    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.meta & META_FREE != 0
    }

    #[inline]
    pub(crate) fn set_free(&mut self, on: bool) {
        if on {
            self.meta |= META_FREE;
        } else {
            self.meta &= !META_FREE;
        }
    }

    #[inline]
    pub(crate) fn key(&self) -> BddKey {
        BddKey::new(self.then_(), self.else_())
    }
}

/// Unique-table key within one variable's subtable, packed into one `u64`:
/// *then*-edge word high, *else*-edge word low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub(crate) struct BddKey(u64);

impl BddKey {
    #[inline]
    pub(crate) fn new(then_: Edge, else_: Edge) -> Self {
        debug_assert!(!then_.is_complemented(), "canonical then-edges are regular");
        BddKey(((then_.bits() as u64) << 32) | else_.bits() as u64)
    }
}

impl TableKey for BddKey {
    #[inline]
    fn table_hash(&self, hasher: &CantorHasher) -> u64 {
        hasher.hash2(self.0 >> 32, self.0 & 0xFFFF_FFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }

    #[test]
    fn bdd_key_is_8_bytes() {
        assert_eq!(std::mem::size_of::<BddKey>(), 8);
    }

    #[test]
    fn mark_and_free_flags() {
        let mut n = Node::new(2, Edge::ONE, Edge::ZERO);
        n.set_mark(true);
        n.set_free(true);
        assert!(n.is_marked() && n.is_free());
        n.set_mark(false);
        assert!(!n.is_marked() && n.is_free());
        assert_eq!(n.var(), 2);
        assert_eq!(n.then_(), Edge::ONE);
        assert_eq!(n.else_(), Edge::ZERO);
    }
}

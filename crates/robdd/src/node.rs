//! ROBDD node storage and unique-table keys.

use crate::edge::Edge;
use ddcore::cantor::CantorHasher;
use ddcore::table::TableKey;

pub(crate) const TERMINAL_VAR: u16 = u16::MAX;

const FLAG_MARK: u8 = 1;
const FLAG_FREE: u8 = 2;

/// One arena slot: a Shannon node `ite(var, then, else)`. The *then*-edge
/// is kept regular (canonical complement-attribute convention).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub then_: Edge,
    pub else_: Edge,
    pub var: u16,
    flags: u8,
    _pad: u8,
}

impl Node {
    pub(crate) fn terminal() -> Self {
        Node {
            then_: Edge::ONE,
            else_: Edge::ONE,
            var: TERMINAL_VAR,
            flags: 0,
            _pad: 0,
        }
    }

    pub(crate) fn new(var: u16, then_: Edge, else_: Edge) -> Self {
        Node {
            then_,
            else_,
            var,
            flags: 0,
            _pad: 0,
        }
    }

    #[inline]
    pub(crate) fn is_marked(&self) -> bool {
        self.flags & FLAG_MARK != 0
    }

    #[inline]
    pub(crate) fn set_mark(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_MARK;
        } else {
            self.flags &= !FLAG_MARK;
        }
    }

    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.flags & FLAG_FREE != 0
    }

    #[inline]
    pub(crate) fn set_free(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_FREE;
        } else {
            self.flags &= !FLAG_FREE;
        }
    }

    #[inline]
    pub(crate) fn key(&self) -> BddKey {
        BddKey {
            then_: self.then_,
            else_: self.else_,
        }
    }
}

/// Unique-table key within one variable's subtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BddKey {
    pub then_: Edge,
    pub else_: Edge,
}

impl TableKey for BddKey {
    #[inline]
    fn table_hash(&self, hasher: &CantorHasher) -> u64 {
        hasher.hash2(self.then_.bits() as u64, self.else_.bits() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }

    #[test]
    fn mark_and_free_flags() {
        let mut n = Node::new(2, Edge::ONE, Edge::ZERO);
        n.set_mark(true);
        n.set_free(true);
        assert!(n.is_marked() && n.is_free());
        n.set_mark(false);
        assert!(!n.is_marked() && n.is_free());
    }
}
